"""Multi-subscription streaming engine (selective dissemination of information).

The paper's headline use case is SDI: match streaming XML documents against
standing user subscriptions, rewriting reverse axes away so that each
document needs only a single pass.  Running one
:class:`~repro.streaming.matcher.StreamingMatcher` per subscription costs N
full passes of per-event work for N subscribers.  This module shares that
work in the tradition of shared-index filtering engines (XFilter/YFilter):

* :class:`SubscriptionIndex` compiles every subscription once — parsing and
  reverse-axis removal are memoized through
  :mod:`repro.xpath.cache` — and merges the leading steps of all
  subscriptions into a prefix *trie*.  Two subscriptions whose paths start
  with the same steps (same axis, node test and qualifiers) are represented
  by the same trie nodes.
* :class:`MultiMatcher` advances the whole trie over one event stream in a
  single pass.  One expectation per (trie node, anchor) replaces one
  expectation per (subscription, step, anchor); qualifier conditions of a
  shared step are built once per matched node and reused by every
  subscription downstream.  Absolute sub-paths mentioned in qualifiers and
  joins are matched once, shared across *all* subscriptions.  Live
  expectations sit in the core's tag-indexed dispatch structure, so a node
  event touches only the trie branches whose next step could match it; in
  verdict-only mode a branch is retired — its expectations unlinked, its
  spawning stopped — the moment the last subscription below it is
  satisfied.

The per-subscription semantics are exactly those of
:func:`repro.streaming.stream_evaluate` — the property tests assert result
equality query by query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union as TypingUnion

from repro.errors import StreamingError
from repro.streaming.automaton import (
    AutomatonRun,
    DEFAULT_TRANSITION_CAP,
    SubscriptionAutomaton,
    compile_subscription_automaton,
    resolve_backend,
)
from repro.streaming.delivery import (
    Delivery,
    SubtreeTee,
    resolve_delivery,
)
from repro.streaming.matcher import (
    Continuation,
    MatcherCore,
    _Sink,
)
from repro.streaming.stats import StreamStats
from repro.xmlmodel.events import Event
from repro.xpath import analysis
from repro.xpath.ast import (
    Bottom,
    LocationPath,
    PathExpr,
    Step,
    iter_union_members,
)
from repro.xpath.cache import QueryCache, default_cache
from repro.xpath.serializer import to_string


# ---------------------------------------------------------------------------
# The subscription trie
# ---------------------------------------------------------------------------

class _TrieNode:
    """One shared step of the subscription trie.

    ``children`` is keyed on the full :class:`~repro.xpath.ast.Step` — axis,
    node test *and* qualifiers must agree for two subscriptions to share
    matching state (steps are frozen dataclasses, so structural equality is
    exactly the sharing criterion).  ``terminals`` lists the ordinals of the
    subscriptions whose path ends at this node; ``sub_ids`` the ordinals of
    every subscription reachable at or below it, used to prune expectations
    once all of them are already satisfied.
    """

    __slots__ = ("step", "children", "terminals", "sub_ids", "cont",
                 "nodes_by_ordinal")

    def __init__(self, step: Optional[Step] = None):
        self.step = step
        self.children: Dict[Step, "_TrieNode"] = {}
        self.terminals: List[int] = []
        self.sub_ids: frozenset = frozenset()
        self.cont = _TrieContinuation(self)
        #: Only populated on the root by :meth:`seal`: ordinal -> every trie
        #: node whose subtree serves that subscription.  This is the reverse
        #: index the matcher walks when a subscription settles, to retire
        #: exactly the branches that no longer serve anyone.
        self.nodes_by_ordinal: Dict[int, List["_TrieNode"]] = {}

    def child(self, step: Step) -> "_TrieNode":
        node = self.children.get(step)
        if node is None:
            node = _TrieNode(step)
            self.children[step] = node
        return node

    def seal(self) -> frozenset:
        """Compute ``sub_ids`` bottom-up once the trie is fully built, plus
        the reverse ``nodes_by_ordinal`` index of the sealed (sub-)trie."""
        self._seal_ids()
        reverse: Dict[int, List["_TrieNode"]] = {}
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            for ordinal in node.sub_ids:
                reverse.setdefault(ordinal, []).append(node)
            stack.extend(node.children.values())
        self.nodes_by_ordinal = reverse
        return self.sub_ids

    def _seal_ids(self) -> frozenset:
        ids = set(self.terminals)
        for node in self.children.values():
            ids.update(node._seal_ids())
        self.sub_ids = frozenset(ids)
        return self.sub_ids

    def node_count(self) -> int:
        """Number of step nodes in the (sub-)trie, excluding the root."""
        return sum(1 + node.node_count() for node in self.children.values())


def _build_trie(members_by_ordinal) -> _TrieNode:
    """Build and seal a subscription trie from ``(ordinal, member)`` pairs.

    Shared by the full trie (expectation backend) and the fallback trie
    (the members the DFA backend cannot serve) so the two can never drift.
    """
    root = _TrieNode()
    for ordinal, member in members_by_ordinal:
        node = root
        for step in member.steps:
            node = node.child(step)
        node.terminals.append(ordinal)
    root.seal()
    return root


class _TrieContinuation(Continuation):
    """Advance every subscription hanging off a trie node at once."""

    __slots__ = ("node",)

    def __init__(self, node: _TrieNode):
        self.node = node

    def dead(self, core: "MultiMatcher") -> bool:
        return core.trie_node_dead(self.node)

    def register(self, core: "MultiMatcher", expectation) -> None:
        core.watch_trie_node(self.node, expectation)

    def proceed(self, core: "MultiMatcher", node_id: int, depth: int,
                is_element: bool, tag, value,
                conditions, is_attribute: bool = False) -> None:
        node = self.node
        for ordinal in node.terminals:
            core._deliver(ordinal, node_id, depth, is_element, value,
                          conditions)
        for child in node.children.values():
            # spawn_step itself skips children whose branch is already
            # retired (their continuation reports dead).
            core.spawn_step(child.step, child.cont, anchor_id=node_id,
                            anchor_depth=depth, anchor_is_element=is_element,
                            anchor_tag=tag, anchor_value=value,
                            conditions=conditions,
                            anchor_is_attribute=is_attribute)


# ---------------------------------------------------------------------------
# Subscriptions and results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Subscription:
    """One compiled subscription of the index."""

    key: Hashable
    #: The subscription as given (query text, or serialized AST).
    source: str
    #: The compiled, reverse-axis-free path the engine matches.
    path: PathExpr
    #: Position in the index (the engine's internal identifier).
    ordinal: int


@dataclass
class SubscriptionResult:
    """Per-subscription verdict of one document pass."""

    key: Hashable
    query: str
    matched: bool
    node_ids: List[int] = field(default_factory=list)
    #: Substream delivery, buffered routing: the serialized XML of every
    #: matched subtree, concatenated in document order.  ``None`` outside
    #: substream mode and when payloads streamed out through an
    #: ``on_payload`` callback instead.
    payload: Optional[bytes] = None


@dataclass
class MultiMatchResult:
    """Outcome of matching one document against a whole subscription index."""

    results: List[SubscriptionResult]
    stats: StreamStats

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, key: Hashable) -> SubscriptionResult:
        try:
            return self.by_key[key]
        except KeyError:
            raise KeyError(f"no subscription with key {key!r}") from None

    @cached_property
    def by_key(self) -> Dict[Hashable, SubscriptionResult]:
        return {result.key: result for result in self.results}

    @property
    def matching_keys(self) -> List[Hashable]:
        """Keys of the subscriptions the document matched (routing table row)."""
        return [result.key for result in self.results if result.matched]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class MultiMatcher(MatcherCore):
    """Single-pass matcher for a whole subscription index.

    Built by :meth:`SubscriptionIndex.matcher`; one instance matches one
    document (the expectations are stream state).  With ``matches_only`` the
    per-subscription result sinks resolve eagerly: as soon as a subscription
    is known to match, its verdict is fixed, its buffered entries are
    dropped, and trie branches that only serve already-satisfied
    subscriptions stop spawning expectations — the SDI fast path.
    """

    def __init__(self, subscriptions: Sequence[Subscription], trie: _TrieNode,
                 matches_only: bool = False, indexed: bool = True,
                 automaton: Optional[SubscriptionAutomaton] = None,
                 delivery: Optional[Delivery] = None):
        super().__init__(indexed=indexed)
        # The emission layer (see repro.streaming.delivery): what a decided
        # match delivers.  ``matches_only`` is the legacy spelling of the
        # verdict mode; ``resolve_delivery`` reconciles the two.
        delivery = resolve_delivery(delivery, matches_only)
        matches_only = delivery.matches_only
        self._delivery = delivery
        self._subscriptions = tuple(subscriptions)
        self._trie = trie
        self._matches_only = matches_only
        self._automaton = automaton
        if delivery.captures:
            # Substream mode: engage the shared single-pass tee.  The core's
            # add_candidate records a capture claim for every final match
            # (DFA-accepted structural members included — they too converge
            # on add_candidate), and _emit_capture below routes the bytes.
            self._tee = SubtreeTee()
        #: Buffered payload chunks: ordinal -> {node_id: bytes}.
        self._payloads: Dict[int, Dict[int, bytes]] = {}
        #: Emission dedup — several retained entries may claim the same
        #: (subscription, node); the payload is emitted once.
        self._emitted_captures: set = set()
        if automaton is not None:
            # Lazy-DFA backend: the trie passed in covers only the fallback
            # members; everything else dispatches through the automaton.
            self._automaton_run = AutomatonRun(automaton,
                                               self._structural_sink)
        self._sinks = [_Sink(exists_only=matches_only)
                       for _ in self._subscriptions]
        #: Reverse map for verdict bookkeeping: a result sink can satisfy
        #: outside :meth:`_deliver` too (the end-of-event settlement pass
        #: that decides ``[@a]``-style qualifiers at StartElement), so the
        #: subscription lookup happens in :meth:`_sink_satisfied`.
        self._ordinal_by_sink: Dict[int, int] = {
            id(sink): ordinal for ordinal, sink in enumerate(self._sinks)}
        self._satisfied: set = set()
        #: Trie branches that no longer serve any unsatisfied subscription.
        self._dead_trie_nodes: set = set()
        if matches_only:
            # Per-node countdown of unsatisfied subscriptions; a branch is
            # retired (and its live expectations unlinked) the moment its
            # count reaches zero.  Only the verdict-only mode ever satisfies
            # a result sink mid-stream, so the full-result mode skips the
            # bookkeeping entirely.
            self._trie_unsatisfied: Dict[_TrieNode, int] = {}
            self._trie_watchers: Dict[_TrieNode, Dict[int, object]] = {}
            stack = list(trie.children.values())
            while stack:
                node = stack.pop()
                self._trie_unsatisfied[node] = len(node.sub_ids)
                stack.extend(node.children.values())
        for subscription in self._subscriptions:
            self._register_absolute_subpaths(subscription.path)

    @property
    def backend(self) -> str:
        """Which structural dispatch engine this matcher runs on."""
        return "dfa" if self._automaton is not None else "expectations"

    def _structural_sink(self, ordinal: int) -> _Sink:
        return self._sinks[ordinal]

    def dfa_state_count(self) -> int:
        """DFA states materialized in the shared automaton (0 for the
        expectation backend).  Stable across :meth:`reset` — the warmed
        transition table is the point of session reuse."""
        return (self._automaton.state_count()
                if self._automaton is not None else 0)

    # -- session reuse -----------------------------------------------------
    def reset(self) -> None:
        """Make the matcher ready for the next document of a session.

        Construction is the expensive part at scale — it walks every
        subscription's AST to register absolute sub-paths and (in
        verdict-only mode) the whole trie to seed the per-branch countdowns.
        ``reset`` keeps all of that and only clears the per-document state:
        sinks, satisfied verdicts, retired branches and the core's
        expectation registries.  This is what lets one
        :class:`~repro.streaming.broker.DocumentBroker` session amortize the
        compiled index over a continuous feed of documents.
        """
        super().reset()
        for sink in self._sinks:
            sink.entries.clear()
            sink.satisfied = False
        self._satisfied.clear()
        self._dead_trie_nodes.clear()
        self._payloads = {}
        self._emitted_captures = set()
        if self._matches_only:
            for node in self._trie_unsatisfied:
                self._trie_unsatisfied[node] = len(node.sub_ids)
            self._trie_watchers.clear()

    def _should_halt(self) -> bool:
        """Early termination: in verdict-only mode, once every subscription
        is satisfied no later event can change a verdict."""
        return (self._matches_only
                and len(self._satisfied) == len(self._subscriptions))

    # -- spawning ----------------------------------------------------------
    def _spawn_roots(self, root_id: int) -> None:
        root = self._trie
        for ordinal in root.terminals:
            # The path "/" selects the document root itself.
            self._deliver(ordinal, root_id, 0, False, None, ())
        for child in root.children.values():
            self.spawn_step(child.step, child.cont, anchor_id=root_id,
                            anchor_depth=0, anchor_is_element=False,
                            anchor_tag=None, anchor_value=None,
                            conditions=())

    def _deliver(self, ordinal: int, node_id: int, depth: int,
                 is_element: bool, value, conditions) -> None:
        """A subscription's final step matched ``node_id``.

        Verdict bookkeeping happens in :meth:`_sink_satisfied`, which fires
        on *every* satisfaction path — immediate (unconditioned match) or
        deferred to the end-of-event settlement pass (attribute-qualified
        match decided by the same StartElement).
        """
        self.add_candidate(self._sinks[ordinal], node_id, depth, is_element,
                           value, conditions, collect_values=False)

    # -- substream capture -------------------------------------------------
    def _capture_ordinal(self, sink: _Sink) -> Optional[int]:
        """Result sinks capture; engine-internal sinks (qualifier sub-paths,
        absolute operands) do not."""
        return self._ordinal_by_sink.get(id(sink))

    def _emit_capture(self, capture) -> None:
        """Route one decided capture's payload bytes to its subscriber."""
        dedup = (capture.ordinal, capture.node_id)
        if dedup in self._emitted_captures:
            return
        self._emitted_captures.add(dedup)
        data = capture.render()
        self.stats.subtrees_emitted += 1
        self.stats.bytes_emitted += len(data)
        on_payload = self._delivery.on_payload
        if on_payload is not None:
            on_payload(self._subscriptions[capture.ordinal].key,
                       capture.node_id, data)
        else:
            self._payloads.setdefault(capture.ordinal, {})[
                capture.node_id] = data

    def _sink_satisfied(self, sink) -> None:
        super()._sink_satisfied(sink)
        ordinal = self._ordinal_by_sink.get(id(sink))
        if (ordinal is not None and self._matches_only
                and ordinal not in self._satisfied):
            self._satisfied.add(ordinal)
            self._retire_subscription(ordinal)

    # -- incremental trie pruning ------------------------------------------
    def trie_node_dead(self, node: _TrieNode) -> bool:
        """O(1): does ``node``'s subtree still serve anyone unsatisfied?"""
        return node in self._dead_trie_nodes

    def watch_trie_node(self, node: _TrieNode, expectation) -> None:
        """Track a live expectation of ``node`` for unlink-on-satisfaction."""
        if not self._matches_only:
            # Result sinks never satisfy mid-stream in full-result mode, so
            # the branch can never die: nothing to watch.
            return
        table = self._trie_watchers.setdefault(node, {})
        table[expectation.serial] = expectation
        expectation.watch = table

    def _retire_subscription(self, ordinal: int) -> None:
        """``ordinal`` just settled: retire branches it was the last user of."""
        for node in self._trie.nodes_by_ordinal.get(ordinal, ()):
            remaining = self._trie_unsatisfied[node] - 1
            self._trie_unsatisfied[node] = remaining
            if remaining == 0:
                self._dead_trie_nodes.add(node)
                watchers = self._trie_watchers.pop(node, None)
                if watchers:
                    for expectation in list(watchers.values()):
                        self._expire(expectation)

    # -- results -----------------------------------------------------------
    def results(self) -> MultiMatchResult:
        """Per-subscription verdicts (requires the stream to be finished)."""
        if not self._finished:
            raise StreamingError("results() called before the end of the stream")
        captures = self._delivery.captures
        if captures:
            # Captures whose conditions were undecided at window close are
            # settled now, with the same entry.holds() the id readout uses.
            self._drain_deferred_captures()
        buffered_payloads = captures and self._delivery.on_payload is None
        results: List[SubscriptionResult] = []
        total = 0
        for subscription, sink in zip(self._subscriptions, self._sinks):
            if self._matches_only:
                # Verdict-only mode: ids of candidates that happened to be
                # buffered before the verdict settled are not a full answer,
                # so none are reported.
                node_ids: List[int] = []
                matched = sink.nonempty()
            else:
                node_ids = sorted({entry.node_id for entry in sink.entries
                                   if entry.holds()})
                matched = bool(node_ids)
            payload: Optional[bytes] = None
            if buffered_payloads:
                chunks = self._payloads.get(subscription.ordinal)
                payload = (b"".join(chunks[node_id]
                                    for node_id in sorted(chunks))
                           if chunks else b"")
            results.append(SubscriptionResult(key=subscription.key,
                                              query=subscription.source,
                                              matched=matched,
                                              node_ids=node_ids,
                                              payload=payload))
            total += len(node_ids)
        self.stats.results = total
        return MultiMatchResult(results=results, stats=self.stats)


class SubscriptionIndex:
    """Compiles subscriptions and shares their leading steps in a trie.

    Subscriptions are added with :meth:`add` (or in bulk through the
    constructor / :meth:`add_many`) as xPath text or ASTs; reverse axes are
    rewritten away automatically (RuleSet2 by default) through the
    compiled-query cache, so a subscription text that thousands of users
    share is parsed and rewritten exactly once.

    One index serves any number of documents: :meth:`matcher` hands out a
    fresh single-pass :class:`MultiMatcher` over the shared, immutable trie.
    """

    def __init__(self,
                 subscriptions: TypingUnion[None, Mapping[Hashable, TypingUnion[str, PathExpr]],
                                            Iterable[TypingUnion[str, PathExpr]]] = None,
                 ruleset: str = "ruleset2",
                 cache: Optional[QueryCache] = None,
                 dfa_transition_cap: int = DEFAULT_TRANSITION_CAP):
        self._ruleset = ruleset
        self._cache = cache if cache is not None else default_cache()
        self._subscriptions: List[Subscription] = []
        self._keys: set = set()
        self._trie: Optional[_TrieNode] = None
        self._dfa_transition_cap = dfa_transition_cap
        #: Lazily compiled DFA-backend parts: the shared automaton plus the
        #: trie over the members it cannot serve (see :meth:`matcher`).
        self._automaton_parts: Optional[
            Tuple[SubscriptionAutomaton, _TrieNode]] = None
        if subscriptions is not None:
            self.add_many(subscriptions)

    # -- building ----------------------------------------------------------
    def add(self, query: TypingUnion[str, PathExpr],
            key: Optional[Hashable] = None) -> Subscription:
        """Compile and register one subscription; returns its record.

        ``key`` identifies the subscription in results (a subscriber name,
        for instance); it defaults to the first unused integer ordinal.
        Duplicate keys are rejected; duplicate *queries* are fine and share
        all matching state.
        """
        path = self._cache.compile(query, ruleset=self._ruleset)
        for member in iter_union_members(path):
            if isinstance(member, Bottom):
                continue
            if not isinstance(member, LocationPath) or not member.absolute:
                raise StreamingError(
                    "subscriptions must be absolute paths "
                    f"(got {to_string(member)})")
        ordinal = len(self._subscriptions)
        if key is None:
            # Default to the ordinal, skipping over any integers the caller
            # already used as explicit keys.
            key = ordinal
            while key in self._keys:
                key += 1
        elif key in self._keys:
            raise ValueError(f"duplicate subscription key {key!r}")
        source = query if isinstance(query, str) else to_string(query)
        subscription = Subscription(key=key, source=source, path=path,
                                    ordinal=ordinal)
        self._subscriptions.append(subscription)
        self._keys.add(key)
        self._trie = None  # rebuilt lazily
        self._automaton_parts = None
        return subscription

    def add_many(self, subscriptions) -> List[Subscription]:
        """Register a mapping ``{key: query}`` or an iterable of queries."""
        added = []
        if isinstance(subscriptions, Mapping):
            for key, query in subscriptions.items():
                added.append(self.add(query, key=key))
        else:
            for query in subscriptions:
                added.append(self.add(query))
        return added

    @property
    def subscriptions(self) -> Tuple[Subscription, ...]:
        return tuple(self._subscriptions)

    def __len__(self) -> int:
        return len(self._subscriptions)

    def _built_trie(self) -> _TrieNode:
        if self._trie is None:
            self._trie = _build_trie(
                (subscription.ordinal, member)
                for subscription in self._subscriptions
                for member in iter_union_members(subscription.path)
                if not isinstance(member, Bottom))
        return self._trie

    def _built_automaton(self) -> Tuple[SubscriptionAutomaton, _TrieNode]:
        """The shared lazy automaton plus the fallback trie (DFA backend).

        Compiled once per subscription set: the automaton covers every
        union member whose spine it can serve, the trie the rest.  The
        automaton instance — and with it the warmed DFA transition table —
        is shared by every matcher this index hands out.
        """
        if self._automaton_parts is None:
            automaton, fallback = compile_subscription_automaton(
                [(subscription.ordinal, subscription.path)
                 for subscription in self._subscriptions],
                transition_cap=self._dfa_transition_cap)
            fallback_trie = _build_trie(
                (ordinal, member)
                for ordinal, members in fallback.items()
                for member in members)
            self._automaton_parts = (automaton, fallback_trie)
        return self._automaton_parts

    # -- sharing report ----------------------------------------------------
    def sharing_summary(self) -> dict:
        """Trie compression figures (see ``analysis.prefix_sharing_summary``).

        ``trie_nodes`` is the number of shared step expectations the engine
        walks instead of ``spine_steps`` independent ones.
        """
        summary = analysis.prefix_sharing_summary(
            subscription.path for subscription in self._subscriptions)
        summary["trie_nodes_built"] = self._built_trie().node_count()
        return summary

    # -- matching ----------------------------------------------------------
    def matcher(self, matches_only: bool = False,
                indexed: bool = True,
                backend: Optional[str] = None,
                delivery: Optional[Delivery] = None) -> MultiMatcher:
        """A fresh single-pass matcher over the shared trie.

        ``backend="dfa"`` (the default) selects lazy-DFA structural dispatch
        (shared automaton, expectation engine only past qualifier gates —
        see :mod:`repro.streaming.automaton`); ``"expectations"`` the pure
        expectation engine, kept as the differential semantics reference;
        ``None`` defers to ``REPRO_STREAMING_BACKEND``, then to ``"dfa"``.
        ``indexed=False`` selects the linear-scan reference engine (every
        live expectation examined on every event) — same results, kept for
        benchmarking the dispatch index against.

        ``delivery`` picks the emission layer (verdict / node ids /
        substream — see :mod:`repro.streaming.delivery`); ``None`` keeps the
        legacy behaviour of ``matches_only``.
        """
        if resolve_backend(backend) == "dfa":
            automaton, fallback_trie = self._built_automaton()
            return MultiMatcher(self._subscriptions, fallback_trie,
                                matches_only=matches_only, indexed=indexed,
                                automaton=automaton, delivery=delivery)
        return MultiMatcher(self._subscriptions, self._built_trie(),
                            matches_only=matches_only, indexed=indexed,
                            delivery=delivery)

    def evaluate(self, events: Iterable[Event],
                 matches_only: bool = False,
                 indexed: bool = True,
                 backend: Optional[str] = None,
                 delivery: Optional[Delivery] = None) -> MultiMatchResult:
        """Match one document stream against every subscription at once."""
        return self.matcher(matches_only=matches_only,
                            indexed=indexed, backend=backend,
                            delivery=delivery).process(events)

    def matching(self, events: Iterable[Event],
                 backend: Optional[str] = None) -> List[Hashable]:
        """Keys of the subscriptions the document matches (SDI routing)."""
        return self.evaluate(events, matches_only=True,
                             backend=backend).matching_keys
