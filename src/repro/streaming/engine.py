"""Multi-subscription streaming engine (selective dissemination of information).

The paper's headline use case is SDI: match streaming XML documents against
standing user subscriptions, rewriting reverse axes away so that each
document needs only a single pass.  Running one
:class:`~repro.streaming.matcher.StreamingMatcher` per subscription costs N
full passes of per-event work for N subscribers.  This module shares that
work in the tradition of shared-index filtering engines (XFilter/YFilter):

* :class:`SubscriptionIndex` compiles every subscription once — parsing and
  reverse-axis removal are memoized through
  :mod:`repro.xpath.cache` — and merges the leading steps of all
  subscriptions into a prefix *trie*.  Two subscriptions whose paths start
  with the same steps (same axis, node test and qualifiers) are represented
  by the same trie nodes.
* :class:`MultiMatcher` advances the whole trie over one event stream in a
  single pass.  One expectation per (trie node, anchor) replaces one
  expectation per (subscription, step, anchor); qualifier conditions of a
  shared step are built once per matched node and reused by every
  subscription downstream.  Absolute sub-paths mentioned in qualifiers and
  joins are matched once, shared across *all* subscriptions.  Live
  expectations sit in the core's tag-indexed dispatch structure, so a node
  event touches only the trie branches whose next step could match it; in
  verdict-only mode a branch is retired — its expectations unlinked, its
  spawning stopped — the moment the last subscription below it is
  satisfied.

The per-subscription semantics are exactly those of
:func:`repro.streaming.stream_evaluate` — the property tests assert result
equality query by query.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union as TypingUnion

from repro.errors import StreamingError
from repro.streaming.automaton import (
    AutomatonRun,
    DEFAULT_TRANSITION_CAP,
    SubscriptionAutomaton,
    compile_subscription_automaton,
    resolve_backend,
)
from repro.streaming.delivery import (
    Delivery,
    SubtreeTee,
    resolve_delivery,
)
from repro.streaming.matcher import (
    Continuation,
    MatcherCore,
    _DROPPED_SINK,
    _Sink,
)
from repro.streaming.stats import ChurnStats, StreamStats
from repro.xmlmodel.events import Event
from repro.xpath import analysis
from repro.xpath.ast import (
    Bottom,
    LocationPath,
    PathExpr,
    Step,
    iter_union_members,
)
from repro.xpath.cache import QueryCache, default_cache
from repro.xpath.serializer import to_string


# ---------------------------------------------------------------------------
# The subscription trie
# ---------------------------------------------------------------------------

class _TrieNode:
    """One shared step of the subscription trie.

    ``children`` is keyed on the full :class:`~repro.xpath.ast.Step` — axis,
    node test *and* qualifiers must agree for two subscriptions to share
    matching state (steps are frozen dataclasses, so structural equality is
    exactly the sharing criterion).  ``terminals`` lists the ordinals of the
    subscriptions whose path ends at this node; ``sub_ids`` the ordinals of
    every subscription reachable at or below it, used to prune expectations
    once all of them are already satisfied.
    """

    __slots__ = ("step", "children", "terminals", "sub_ids", "cont",
                 "nodes_by_ordinal")

    def __init__(self, step: Optional[Step] = None):
        self.step = step
        self.children: Dict[Step, "_TrieNode"] = {}
        self.terminals: List[int] = []
        self.sub_ids: frozenset = frozenset()
        self.cont = _TrieContinuation(self)
        #: Only populated on the root by :meth:`seal`: ordinal -> every trie
        #: node whose subtree serves that subscription.  This is the reverse
        #: index the matcher walks when a subscription settles, to retire
        #: exactly the branches that no longer serve anyone.
        self.nodes_by_ordinal: Dict[int, List["_TrieNode"]] = {}

    def child(self, step: Step) -> "_TrieNode":
        node = self.children.get(step)
        if node is None:
            node = _TrieNode(step)
            self.children[step] = node
        return node

    def seal(self) -> frozenset:
        """Compute ``sub_ids`` bottom-up once the trie is fully built, plus
        the reverse ``nodes_by_ordinal`` index of the sealed (sub-)trie."""
        self._seal_ids()
        reverse: Dict[int, List["_TrieNode"]] = {}
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            for ordinal in node.sub_ids:
                reverse.setdefault(ordinal, []).append(node)
            stack.extend(node.children.values())
        self.nodes_by_ordinal = reverse
        return self.sub_ids

    def _seal_ids(self) -> frozenset:
        ids = set(self.terminals)
        for node in self.children.values():
            ids.update(node._seal_ids())
        self.sub_ids = frozenset(ids)
        return self.sub_ids

    def node_count(self) -> int:
        """Number of step nodes in the (sub-)trie, excluding the root."""
        return sum(1 + node.node_count() for node in self.children.values())


def _build_trie(members_by_ordinal) -> _TrieNode:
    """Build and seal a subscription trie from ``(ordinal, member)`` pairs.

    Shared by the full trie (expectation backend) and the fallback trie
    (the members the DFA backend cannot serve) so the two can never drift.
    """
    root = _TrieNode()
    for ordinal, member in members_by_ordinal:
        node = root
        for step in member.steps:
            node = node.child(step)
        node.terminals.append(ordinal)
    root.seal()
    return root


def _trie_insert(root: _TrieNode, ordinal: int, member: LocationPath) -> None:
    """Thread one union member into a live (already sealed) trie.

    The incremental mirror of :func:`_build_trie` + :meth:`_TrieNode.seal`:
    the ``sub_ids`` sets along the branch and the root's reverse
    ``nodes_by_ordinal`` index are updated in place, each node listed once
    per ordinal exactly as ``seal`` would have it — the matcher's
    branch-retirement countdowns depend on that invariant.
    """
    nodes = root.nodes_by_ordinal.setdefault(ordinal, [])
    root.sub_ids = root.sub_ids | {ordinal}
    node = root
    for step in member.steps:
        node = node.child(step)
        if ordinal not in node.sub_ids:
            node.sub_ids = node.sub_ids | {ordinal}
            nodes.append(node)
    node.terminals.append(ordinal)


def _trie_remove(root: _TrieNode, ordinal: int,
                 members: Sequence[LocationPath]) -> None:
    """Unlink one subscription from a live trie, pruning emptied branches.

    ``members`` are the union members the subscription may have threaded in
    (members never inserted — e.g. automaton-served ones, for a fallback
    trie — walk to a missing child and are skipped).  Pruning walks each
    member's branch bottom-up and drops nodes that serve nobody, so a
    churning index does not accrete dead steps between vacuums.
    """
    for node in root.nodes_by_ordinal.pop(ordinal, ()):
        node.sub_ids = node.sub_ids - {ordinal}
        while ordinal in node.terminals:
            node.terminals.remove(ordinal)
    root.sub_ids = root.sub_ids - {ordinal}
    while ordinal in root.terminals:
        # The path "/" terminates on the root itself (outside the reverse
        # index, which only covers step nodes).
        root.terminals.remove(ordinal)
    for member in members:
        chain = [root]
        node = root
        for step in member.steps:
            node = node.children.get(step)
            if node is None:
                break
            chain.append(node)
        else:
            for child, parent in zip(reversed(chain[1:]),
                                     reversed(chain[:-1])):
                if child.sub_ids or child.children:
                    break
                parent.children.pop(child.step, None)


class _TrieContinuation(Continuation):
    """Advance every subscription hanging off a trie node at once."""

    __slots__ = ("node",)

    def __init__(self, node: _TrieNode):
        self.node = node

    def dead(self, core: "MultiMatcher") -> bool:
        return core.trie_node_dead(self.node)

    def register(self, core: "MultiMatcher", expectation) -> None:
        core.watch_trie_node(self.node, expectation)

    def proceed(self, core: "MultiMatcher", node_id: int, depth: int,
                is_element: bool, tag, value,
                conditions, is_attribute: bool = False) -> None:
        node = self.node
        for ordinal in node.terminals:
            core._deliver(ordinal, node_id, depth, is_element, value,
                          conditions)
        for child in node.children.values():
            # spawn_step itself skips children whose branch is already
            # retired (their continuation reports dead).
            core.spawn_step(child.step, child.cont, anchor_id=node_id,
                            anchor_depth=depth, anchor_is_element=is_element,
                            anchor_tag=tag, anchor_value=value,
                            conditions=conditions,
                            anchor_is_attribute=is_attribute)


# ---------------------------------------------------------------------------
# Subscriptions and results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Subscription:
    """One compiled subscription of the index."""

    key: Hashable
    #: The subscription as given (query text, or serialized AST).
    source: str
    #: The compiled, reverse-axis-free path the engine matches.
    path: PathExpr
    #: Position in the index (the engine's internal identifier).
    ordinal: int


@dataclass
class SubscriptionResult:
    """Per-subscription verdict of one document pass."""

    key: Hashable
    query: str
    matched: bool
    node_ids: List[int] = field(default_factory=list)
    #: Substream delivery, buffered routing: the serialized XML of every
    #: matched subtree, concatenated in document order.  ``None`` outside
    #: substream mode and when payloads streamed out through an
    #: ``on_payload`` callback instead.
    payload: Optional[bytes] = None


@dataclass
class MultiMatchResult:
    """Outcome of matching one document against a whole subscription index."""

    results: List[SubscriptionResult]
    stats: StreamStats

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, key: Hashable) -> SubscriptionResult:
        try:
            return self.by_key[key]
        except KeyError:
            raise KeyError(f"no subscription with key {key!r}") from None

    @cached_property
    def by_key(self) -> Dict[Hashable, SubscriptionResult]:
        return {result.key: result for result in self.results}

    @property
    def matching_keys(self) -> List[Hashable]:
        """Keys of the subscriptions the document matched (routing table row)."""
        return [result.key for result in self.results if result.matched]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class MultiMatcher(MatcherCore):
    """Single-pass matcher for a whole subscription index.

    Built by :meth:`SubscriptionIndex.matcher`; one instance matches one
    document (the expectations are stream state).  With ``matches_only`` the
    per-subscription result sinks resolve eagerly: as soon as a subscription
    is known to match, its verdict is fixed, its buffered entries are
    dropped, and trie branches that only serve already-satisfied
    subscriptions stop spawning expectations — the SDI fast path.
    """

    def __init__(self, subscriptions: Sequence[Subscription], trie: _TrieNode,
                 matches_only: bool = False, indexed: bool = True,
                 automaton: Optional[SubscriptionAutomaton] = None,
                 delivery: Optional[Delivery] = None,
                 index: Optional["SubscriptionIndex"] = None):
        super().__init__(indexed=indexed)
        #: Live churn (see :meth:`sync`): the index this session serves, the
        #: retired-ordinal set shared with it *by reference* (removals take
        #: effect immediately, mid-document included), and the version /
        #: generation snapshot the session was last synced to.
        self._index = index
        self._retired: set = index._retired if index is not None else set()
        self._synced_version = index.version if index is not None else 0
        self._generation = index.generation if index is not None else 0
        # The emission layer (see repro.streaming.delivery): what a decided
        # match delivers.  ``matches_only`` is the legacy spelling of the
        # verdict mode; ``resolve_delivery`` reconciles the two.
        delivery = resolve_delivery(delivery, matches_only)
        matches_only = delivery.matches_only
        self._delivery = delivery
        self._subscriptions = tuple(subscriptions)
        self._trie = trie
        self._matches_only = matches_only
        self._automaton = automaton
        if delivery.captures:
            # Substream mode: engage the shared single-pass tee.  The core's
            # add_candidate records a capture claim for every final match
            # (DFA-accepted structural members included — they too converge
            # on add_candidate), and _emit_capture below routes the bytes.
            self._tee = SubtreeTee()
        #: Buffered payload chunks: ordinal -> {node_id: bytes}.
        self._payloads: Dict[int, Dict[int, bytes]] = {}
        #: Emission dedup — several retained entries may claim the same
        #: (subscription, node); the payload is emitted once.
        self._emitted_captures: set = set()
        if automaton is not None:
            # Lazy-DFA backend: the trie passed in covers only the fallback
            # members; everything else dispatches through the automaton.
            self._automaton_run = AutomatonRun(automaton,
                                               self._structural_sink)
        self._sinks = [_Sink(exists_only=matches_only)
                       for _ in self._subscriptions]
        #: Reverse map for verdict bookkeeping: a result sink can satisfy
        #: outside :meth:`_deliver` too (the end-of-event settlement pass
        #: that decides ``[@a]``-style qualifiers at StartElement), so the
        #: subscription lookup happens in :meth:`_sink_satisfied`.
        self._ordinal_by_sink: Dict[int, int] = {
            id(sink): ordinal for ordinal, sink in enumerate(self._sinks)}
        self._satisfied: set = set()
        #: Trie branches that no longer serve any unsatisfied subscription.
        self._dead_trie_nodes: set = set()
        if matches_only:
            # Per-node countdown of unsatisfied subscriptions; a branch is
            # retired (and its live expectations unlinked) the moment its
            # count reaches zero.  Only the verdict-only mode ever satisfies
            # a result sink mid-stream, so the full-result mode skips the
            # bookkeeping entirely.
            self._trie_watchers: Dict[_TrieNode, Dict[int, object]] = {}
            self._seed_trie_counts()
            self._seed_retired_verdicts()
        for subscription in self._subscriptions:
            self._register_absolute_subpaths(subscription.path)

    @property
    def backend(self) -> str:
        """Which structural dispatch engine this matcher runs on."""
        return "dfa" if self._automaton is not None else "expectations"

    def _structural_sink(self, ordinal: int) -> _Sink:
        # Live churn: the shared automaton may fire for ordinals this
        # session retired (removals take effect immediately) or does not
        # carry yet (adds take effect at the next document, after sync).
        if ordinal in self._retired or ordinal >= len(self._sinks):
            return _DROPPED_SINK
        return self._sinks[ordinal]

    def _seed_trie_counts(self) -> None:
        """(Re)build the verdict-mode branch countdowns from the live trie.

        Runs at construction, on :meth:`reset` and on :meth:`sync` — the
        trie is mutated in place by live churn, so the node set and each
        node's ``sub_ids`` may have changed since the last seeding."""
        counts: Dict[_TrieNode, int] = {}
        stack = list(self._trie.children.values())
        while stack:
            node = stack.pop()
            counts[node] = len(node.sub_ids)
            stack.extend(node.children.values())
        self._trie_unsatisfied = counts

    def _seed_retired_verdicts(self) -> None:
        """Count retired ordinals as settled so early termination still
        fires: their sinks can never satisfy (every delivery is dropped),
        and their trie branches are already unlinked, so no
        :meth:`_retire_subscription` bookkeeping applies."""
        self._satisfied.update(
            ordinal for ordinal in self._retired
            if ordinal < len(self._subscriptions))

    def dfa_state_count(self) -> int:
        """DFA states materialized in the shared automaton (0 for the
        expectation backend).  Stable across :meth:`reset` — the warmed
        transition table is the point of session reuse."""
        return (self._automaton.state_count()
                if self._automaton is not None else 0)

    # -- session reuse -----------------------------------------------------
    def reset(self) -> None:
        """Make the matcher ready for the next document of a session.

        Construction is the expensive part at scale — it walks every
        subscription's AST to register absolute sub-paths and (in
        verdict-only mode) the whole trie to seed the per-branch countdowns.
        ``reset`` keeps all of that and only clears the per-document state:
        sinks, satisfied verdicts, retired branches and the core's
        expectation registries.  This is what lets one
        :class:`~repro.streaming.broker.DocumentBroker` session amortize the
        compiled index over a continuous feed of documents.
        """
        if (self._index is not None
                and self._index.generation != self._generation):
            raise StreamingError(
                "the subscription index was vacuumed (ordinals remapped); "
                "build a fresh matcher")
        super().reset()
        for sink in self._sinks:
            sink.entries.clear()
            sink.satisfied = False
        self._satisfied.clear()
        self._dead_trie_nodes.clear()
        self._payloads = {}
        self._emitted_captures = set()
        if self._matches_only:
            self._seed_trie_counts()
            self._trie_watchers.clear()
            self._seed_retired_verdicts()

    def sync(self) -> None:
        """Bring a live session up to its index's current subscription set.

        The churn counterpart of :meth:`reset`, called *between* documents
        (the broker's checkout does it whenever the index version moved):
        appends sinks and per-subscription registries for every ordinal
        added since the last sync and reseeds the verdict-mode branch
        countdowns from the mutated trie.  Removals need no per-matcher
        work — the retired set is shared by reference and consulted at
        delivery time.  A vacuumed index (generation bump) cannot be synced
        to: ordinals were remapped, build a fresh matcher.
        """
        index = self._index
        if index is None:
            raise StreamingError(
                "this matcher was built without a SubscriptionIndex; "
                "nothing to sync from")
        if index.generation != self._generation:
            raise StreamingError(
                "the subscription index was vacuumed (ordinals remapped); "
                "build a fresh matcher")
        if index.version == self._synced_version:
            return
        subscriptions = index._subscriptions
        sinks = self._sinks
        for ordinal in range(len(sinks), len(subscriptions)):
            sink = _Sink(exists_only=self._matches_only)
            sinks.append(sink)
            self._ordinal_by_sink[id(sink)] = ordinal
            self._register_absolute_subpaths(subscriptions[ordinal].path)
        self._subscriptions = tuple(subscriptions)
        if self._matches_only:
            self._seed_trie_counts()
            self._seed_retired_verdicts()
        self._synced_version = index.version

    def _should_halt(self) -> bool:
        """Early termination: in verdict-only mode, once every subscription
        is satisfied no later event can change a verdict."""
        return (self._matches_only
                and len(self._satisfied) == len(self._subscriptions))

    # -- spawning ----------------------------------------------------------
    def _spawn_roots(self, root_id: int) -> None:
        root = self._trie
        for ordinal in root.terminals:
            # The path "/" selects the document root itself.
            self._deliver(ordinal, root_id, 0, False, None, ())
        for child in root.children.values():
            self.spawn_step(child.step, child.cont, anchor_id=root_id,
                            anchor_depth=0, anchor_is_element=False,
                            anchor_tag=None, anchor_value=None,
                            conditions=())

    def _deliver(self, ordinal: int, node_id: int, depth: int,
                 is_element: bool, value, conditions) -> None:
        """A subscription's final step matched ``node_id``.

        Verdict bookkeeping happens in :meth:`_sink_satisfied`, which fires
        on *every* satisfaction path — immediate (unconditioned match) or
        deferred to the end-of-event settlement pass (attribute-qualified
        match decided by the same StartElement).
        """
        if ordinal in self._retired or ordinal >= len(self._sinks):
            # Live churn: unsubscribed mid-feed (drop immediately), or a
            # trie branch added mid-document for a subscription this
            # session will only carry after its next sync.
            return
        self.add_candidate(self._sinks[ordinal], node_id, depth, is_element,
                           value, conditions, collect_values=False)

    # -- substream capture -------------------------------------------------
    def _capture_ordinal(self, sink: _Sink) -> Optional[int]:
        """Result sinks capture; engine-internal sinks (qualifier sub-paths,
        absolute operands) do not."""
        return self._ordinal_by_sink.get(id(sink))

    def _emit_capture(self, capture) -> None:
        """Route one decided capture's payload bytes to its subscriber."""
        if capture.ordinal in self._retired:
            # Unsubscribed while the capture window was open (or before the
            # deferred-capture drain): the payload is no longer owed.
            return
        dedup = (capture.ordinal, capture.node_id)
        if dedup in self._emitted_captures:
            return
        self._emitted_captures.add(dedup)
        data = capture.render()
        self.stats.subtrees_emitted += 1
        self.stats.bytes_emitted += len(data)
        on_payload = self._delivery.on_payload
        if on_payload is not None:
            on_payload(self._subscriptions[capture.ordinal].key,
                       capture.node_id, data)
        else:
            self._payloads.setdefault(capture.ordinal, {})[
                capture.node_id] = data

    def _sink_satisfied(self, sink) -> None:
        super()._sink_satisfied(sink)
        ordinal = self._ordinal_by_sink.get(id(sink))
        if (ordinal is not None and self._matches_only
                and ordinal not in self._satisfied
                and ordinal not in self._retired):
            self._satisfied.add(ordinal)
            self._retire_subscription(ordinal)

    # -- incremental trie pruning ------------------------------------------
    def trie_node_dead(self, node: _TrieNode) -> bool:
        """O(1): does ``node``'s subtree still serve anyone unsatisfied?"""
        return node in self._dead_trie_nodes

    def watch_trie_node(self, node: _TrieNode, expectation) -> None:
        """Track a live expectation of ``node`` for unlink-on-satisfaction."""
        if not self._matches_only:
            # Result sinks never satisfy mid-stream in full-result mode, so
            # the branch can never die: nothing to watch.
            return
        table = self._trie_watchers.setdefault(node, {})
        table[expectation.serial] = expectation
        expectation.watch = table

    def _retire_subscription(self, ordinal: int) -> None:
        """``ordinal`` just settled: retire branches it was the last user of."""
        for node in self._trie.nodes_by_ordinal.get(ordinal, ()):
            count = self._trie_unsatisfied.get(node)
            if count is None:
                # Branch threaded in by live churn after the last seeding:
                # it only serves next-document subscriptions, and retiring
                # it on a stale countdown could silence survivors.
                continue
            remaining = count - 1
            self._trie_unsatisfied[node] = remaining
            if remaining == 0:
                self._dead_trie_nodes.add(node)
                watchers = self._trie_watchers.pop(node, None)
                if watchers:
                    for expectation in list(watchers.values()):
                        self._expire(expectation)

    # -- results -----------------------------------------------------------
    def results(self) -> MultiMatchResult:
        """Per-subscription verdicts (requires the stream to be finished)."""
        if not self._finished:
            raise StreamingError("results() called before the end of the stream")
        captures = self._delivery.captures
        if captures:
            # Captures whose conditions were undecided at window close are
            # settled now, with the same entry.holds() the id readout uses.
            self._drain_deferred_captures()
        buffered_payloads = captures and self._delivery.on_payload is None
        results: List[SubscriptionResult] = []
        total = 0
        for subscription, sink in zip(self._subscriptions, self._sinks):
            if subscription.ordinal in self._retired:
                # Unsubscribed (possibly mid-document): no longer reported.
                continue
            if self._matches_only:
                # Verdict-only mode: ids of candidates that happened to be
                # buffered before the verdict settled are not a full answer,
                # so none are reported.
                node_ids: List[int] = []
                matched = sink.nonempty()
            else:
                node_ids = sorted({entry.node_id for entry in sink.entries
                                   if entry.holds()})
                matched = bool(node_ids)
            payload: Optional[bytes] = None
            if buffered_payloads:
                chunks = self._payloads.get(subscription.ordinal)
                payload = (b"".join(chunks[node_id]
                                    for node_id in sorted(chunks))
                           if chunks else b"")
            results.append(SubscriptionResult(key=subscription.key,
                                              query=subscription.source,
                                              matched=matched,
                                              node_ids=node_ids,
                                              payload=payload))
            total += len(node_ids)
        self.stats.results = total
        return MultiMatchResult(results=results, stats=self.stats)


class SubscriptionIndex:
    """Compiles subscriptions and shares their leading steps in a trie.

    Subscriptions are added with :meth:`add` (or in bulk through the
    constructor / :meth:`add_many`) as xPath text or ASTs; reverse axes are
    rewritten away automatically (RuleSet2 by default) through the
    compiled-query cache, so a subscription text that thousands of users
    share is parsed and rewritten exactly once.

    One index serves any number of documents: :meth:`matcher` hands out a
    fresh single-pass :class:`MultiMatcher` over the shared trie.

    **Live churn.**  A production router cannot recompile the world when
    one user subscribes or unsubscribes, so the shared structures are
    mutated *incrementally* on a running index:

    * :meth:`add_subscription` threads the new branches into the built
      prefix/fallback tries in place and inserts the new NFA fragments into
      the shared automaton with a *targeted* DFA invalidation (epoch bump
      plus patching only the materialized states the fragments touch — see
      :meth:`~repro.streaming.automaton.SubscriptionAutomaton.add_member`);
    * :meth:`remove_subscription` is ordinal retirement: trie branches are
      unlinked and pruned immediately, deliveries for the ordinal are
      dropped at the sink boundary (live sessions included — the retired
      set is shared by reference), and the automaton keeps the dead
      fragments until :meth:`vacuum` compacts them away — automatically
      once retired ordinals exceed ``vacuum_ratio`` of the index;
    * running :class:`MultiMatcher` sessions resync between documents
      (:meth:`MultiMatcher.sync`, driven by the :attr:`version` counter):
      adds take effect at the session's next document, removals at once.

    ``index.churn`` (:class:`~repro.streaming.stats.ChurnStats`) accounts
    for all of it.
    """

    def __init__(self,
                 subscriptions: TypingUnion[None, Mapping[Hashable, TypingUnion[str, PathExpr]],
                                            Iterable[TypingUnion[str, PathExpr]]] = None,
                 ruleset: str = "ruleset2",
                 cache: Optional[QueryCache] = None,
                 dfa_transition_cap: int = DEFAULT_TRANSITION_CAP,
                 vacuum_ratio: float = 0.25):
        self._ruleset = ruleset
        self._cache = cache if cache is not None else default_cache()
        self._subscriptions: List[Subscription] = []
        self._by_key: Dict[Hashable, Subscription] = {}
        self._trie: Optional[_TrieNode] = None
        self._dfa_transition_cap = dfa_transition_cap
        #: Lazily compiled DFA-backend parts: the shared automaton plus the
        #: trie over the members it cannot serve (see :meth:`matcher`).
        self._automaton_parts: Optional[
            Tuple[SubscriptionAutomaton, _TrieNode]] = None
        #: Retired ordinals (removed subscriptions awaiting compaction).
        #: Shared by reference with every matcher this index hands out, so
        #: removal takes effect on live sessions immediately.
        self._retired: set = set()
        #: Retired fraction beyond which :meth:`remove_subscription` runs
        #: the deferred compaction automatically.
        self._vacuum_ratio = float(vacuum_ratio)
        #: Bumped on every add/remove; sessions sync on mismatch.
        self._version = 0
        #: Bumped on every vacuum (ordinals remapped; sessions rebuild).
        self._generation = 0
        #: Lifetime churn accounting (see :class:`ChurnStats`).
        self.churn = ChurnStats()
        if subscriptions is not None:
            self.add_many(subscriptions)

    # -- building ----------------------------------------------------------
    def add(self, query: TypingUnion[str, PathExpr],
            key: Optional[Hashable] = None) -> Subscription:
        """Compile and register one subscription; returns its record.

        ``key`` identifies the subscription in results (a subscriber name,
        for instance); it defaults to the first unused integer ordinal.
        Duplicate keys are rejected; duplicate *queries* are fine and share
        all matching state.
        """
        path = self._cache.compile(query, ruleset=self._ruleset)
        for member in iter_union_members(path):
            if isinstance(member, Bottom):
                continue
            if not isinstance(member, LocationPath) or not member.absolute:
                raise StreamingError(
                    "subscriptions must be absolute paths "
                    f"(got {to_string(member)})")
        ordinal = len(self._subscriptions)
        if key is None:
            # Default to the ordinal, skipping over any integers the caller
            # already used as explicit keys.
            key = ordinal
            while key in self._by_key:
                key += 1
        elif key in self._by_key:
            raise ValueError(f"duplicate subscription key {key!r}")
        source = query if isinstance(query, str) else to_string(query)
        subscription = Subscription(key=key, source=source, path=path,
                                    ordinal=ordinal)
        self._subscriptions.append(subscription)
        self._by_key[key] = subscription
        self._version += 1
        # Structures not built yet stay lazy; built ones are updated
        # *incrementally* — live churn never recompiles the world.
        if self._trie is not None:
            for member in iter_union_members(path):
                if not isinstance(member, Bottom):
                    _trie_insert(self._trie, ordinal, member)
        if self._automaton_parts is not None:
            automaton, fallback_trie = self._automaton_parts
            for member in automaton.add_member(ordinal, path,
                                               churn=self.churn):
                _trie_insert(fallback_trie, ordinal, member)
        return subscription

    def add_many(self, subscriptions) -> List[Subscription]:
        """Register a mapping ``{key: query}`` or an iterable of queries."""
        added = []
        if isinstance(subscriptions, Mapping):
            for key, query in subscriptions.items():
                added.append(self.add(query, key=key))
        else:
            for query in subscriptions:
                added.append(self.add(query))
        return added

    # -- live churn --------------------------------------------------------
    def add_subscription(self, key: Hashable,
                         query: TypingUnion[str, PathExpr]) -> Subscription:
        """Live churn: register one subscription on a *running* index.

        Exactly :meth:`add` with the key required up front (a pub/sub
        server always has a subscriber identity), counted in :attr:`churn`.
        Built structures are updated incrementally — prefix/fallback trie
        branches threaded in place, NFA fragments inserted with a targeted
        DFA invalidation — and live sessions pick the addition up at their
        next document (:meth:`MultiMatcher.sync`, which the broker's
        checkout drives off the :attr:`version` counter).
        """
        subscription = self.add(query, key=key)
        self.churn.subscriptions_added += 1
        return subscription

    def remove_subscription(self, key: Hashable) -> Subscription:
        """Live churn: drop one subscription from a running index.

        Removal is *ordinal retirement*: the slot stays (ordinals of the
        survivors are untouched, so no session rebuild), its trie branches
        are unlinked and pruned in place, and every delivery for the
        ordinal is dropped at the sink boundary — including by live
        sessions mid-document, which share the retired set by reference.
        The shared automaton keeps the now-dead NFA fragments; once retired
        ordinals exceed ``vacuum_ratio`` of the index, :meth:`vacuum`
        compacts them away automatically.  The key is freed for
        re-registration immediately (the re-add gets a fresh ordinal).
        Raises :class:`KeyError` for an unknown key.
        """
        try:
            subscription = self._by_key.pop(key)
        except KeyError:
            raise KeyError(f"no subscription with key {key!r}") from None
        ordinal = subscription.ordinal
        self._retired.add(ordinal)
        self._version += 1
        members = [member
                   for member in iter_union_members(subscription.path)
                   if not isinstance(member, Bottom)]
        if self._trie is not None:
            _trie_remove(self._trie, ordinal, members)
        if self._automaton_parts is not None:
            # Only the fallback members ever reached this trie; the others
            # walk to a missing child and are skipped.
            _trie_remove(self._automaton_parts[1], ordinal, members)
        self.churn.subscriptions_removed += 1
        if len(self._retired) > self._vacuum_ratio * len(self._subscriptions):
            self.vacuum()
        return subscription

    def vacuum(self) -> int:
        """Deferred compaction: rebuild without the retired ordinals.

        Survivor ordinals are remapped to close the gaps and the trie /
        automaton are dropped for lazy recompilation, so the shared NFA
        sheds the dead fragments removal left behind.  Runs automatically
        from :meth:`remove_subscription` past ``vacuum_ratio``; callable
        explicitly (e.g. in a maintenance window).  Existing sessions are
        invalidated by the generation bump — the broker builds a fresh one
        at its next checkout — but keep their own pre-vacuum view (retired
        set included: it is re-bound here, never cleared in place) for any
        document in flight.  Returns the number of ordinals reclaimed.
        """
        if not self._retired:
            return 0
        retired = self._retired
        reclaimed = len(retired)
        self._subscriptions = [
            replace(subscription, ordinal=position)
            for position, subscription in enumerate(
                subscription for subscription in self._subscriptions
                if subscription.ordinal not in retired)]
        self._by_key = {subscription.key: subscription
                        for subscription in self._subscriptions}
        self._retired = set()
        self._trie = None
        self._automaton_parts = None
        self._generation += 1
        self._version += 1
        self.churn.vacuum_runs += 1
        return reclaimed

    @property
    def version(self) -> int:
        """Bumped on every add/remove; sessions sync on mismatch."""
        return self._version

    @property
    def generation(self) -> int:
        """Bumped on every vacuum; stale sessions must be rebuilt."""
        return self._generation

    @property
    def retired_count(self) -> int:
        """Removed subscriptions awaiting compaction (see :meth:`vacuum`)."""
        return len(self._retired)

    @property
    def subscriptions(self) -> Tuple[Subscription, ...]:
        """The live subscriptions (retired ordinals are not listed)."""
        if not self._retired:
            return tuple(self._subscriptions)
        return tuple(subscription for subscription in self._subscriptions
                     if subscription.ordinal not in self._retired)

    def __len__(self) -> int:
        return len(self._subscriptions) - len(self._retired)

    def _built_trie(self) -> _TrieNode:
        if self._trie is None:
            retired = self._retired
            self._trie = _build_trie(
                (subscription.ordinal, member)
                for subscription in self._subscriptions
                if subscription.ordinal not in retired
                for member in iter_union_members(subscription.path)
                if not isinstance(member, Bottom))
        return self._trie

    def _built_automaton(self) -> Tuple[SubscriptionAutomaton, _TrieNode]:
        """The shared lazy automaton plus the fallback trie (DFA backend).

        Compiled once per subscription set: the automaton covers every
        union member whose spine it can serve, the trie the rest.  The
        automaton instance — and with it the warmed DFA transition table —
        is shared by every matcher this index hands out.
        """
        if self._automaton_parts is None:
            retired = self._retired
            automaton, fallback = compile_subscription_automaton(
                [(subscription.ordinal, subscription.path)
                 for subscription in self._subscriptions
                 if subscription.ordinal not in retired],
                transition_cap=self._dfa_transition_cap)
            fallback_trie = _build_trie(
                (ordinal, member)
                for ordinal, members in fallback.items()
                for member in members)
            self._automaton_parts = (automaton, fallback_trie)
        return self._automaton_parts

    # -- sharing report ----------------------------------------------------
    def sharing_summary(self) -> dict:
        """Trie compression figures (see ``analysis.prefix_sharing_summary``).

        ``trie_nodes`` is the number of shared step expectations the engine
        walks instead of ``spine_steps`` independent ones.
        """
        summary = analysis.prefix_sharing_summary(
            subscription.path for subscription in self.subscriptions)
        summary["trie_nodes_built"] = self._built_trie().node_count()
        return summary

    # -- matching ----------------------------------------------------------
    def matcher(self, matches_only: bool = False,
                indexed: bool = True,
                backend: Optional[str] = None,
                delivery: Optional[Delivery] = None) -> MultiMatcher:
        """A fresh single-pass matcher over the shared trie.

        ``backend="dfa"`` (the default) selects lazy-DFA structural dispatch
        (shared automaton, expectation engine only past qualifier gates —
        see :mod:`repro.streaming.automaton`); ``"expectations"`` the pure
        expectation engine, kept as the differential semantics reference;
        ``None`` defers to ``REPRO_STREAMING_BACKEND``, then to ``"dfa"``.
        ``indexed=False`` selects the linear-scan reference engine (every
        live expectation examined on every event) — same results, kept for
        benchmarking the dispatch index against.

        ``delivery`` picks the emission layer (verdict / node ids /
        substream — see :mod:`repro.streaming.delivery`); ``None`` keeps the
        legacy behaviour of ``matches_only``.
        """
        if resolve_backend(backend) == "dfa":
            automaton, fallback_trie = self._built_automaton()
            return MultiMatcher(self._subscriptions, fallback_trie,
                                matches_only=matches_only, indexed=indexed,
                                automaton=automaton, delivery=delivery,
                                index=self)
        return MultiMatcher(self._subscriptions, self._built_trie(),
                            matches_only=matches_only, indexed=indexed,
                            delivery=delivery, index=self)

    def evaluate(self, events: Iterable[Event],
                 matches_only: bool = False,
                 indexed: bool = True,
                 backend: Optional[str] = None,
                 delivery: Optional[Delivery] = None) -> MultiMatchResult:
        """Match one document stream against every subscription at once."""
        return self.matcher(matches_only=matches_only,
                            indexed=indexed, backend=backend,
                            delivery=delivery).process(events)

    def matching(self, events: Iterable[Event],
                 backend: Optional[str] = None) -> List[Hashable]:
        """Keys of the subscriptions the document matches (SDI routing)."""
        return self.evaluate(events, matches_only=True,
                             backend=backend).matching_keys
