"""Accounting of streaming-evaluation resource usage.

The benchmarks of experiment E9 compare the streaming evaluator against the
DOM baseline in terms of *what has to be kept in memory*, which is the
quantity the paper's introduction cares about ("documents too large to be
processed in memory").  :class:`StreamStats` records the relevant counters in
an engine-independent way so the three evaluators (streaming, DOM,
buffering) can be reported side by side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StreamStats:
    """Resource counters of one evaluation run."""

    #: Number of SAX-like events processed.
    events: int = 0
    #: Events the engine did *not* process because every verdict was already
    #: decided (verdict-only sessions terminate early; see
    #: :meth:`repro.streaming.matcher.MatcherCore.halt`).  Exact when the
    #: event source has a known length; otherwise it counts the events that
    #: were still offered to a halted matcher.
    events_skipped: int = 0
    #: Number of document nodes seen on the stream (elements + attributes +
    #: texts + root).
    nodes_seen: int = 0
    #: Attribute nodes visited (they ride on StartElement events; the
    #: per-element attribute sweep counts them here).
    attributes_seen: int = 0
    #: Maximum element nesting depth observed.
    max_depth: int = 0
    #: Document nodes materialized in memory (the whole document for DOM,
    #: zero for the pure streaming engine).
    nodes_stored: int = 0
    #: Pending-match expectations created / maximum simultaneously alive.
    expectations_created: int = 0
    max_live_expectations: int = 0
    #: Expectations actually examined against node events.  With the
    #: tag-indexed dispatch of :class:`repro.streaming.matcher.MatcherCore`
    #: only the buckets a node can match are consulted; this counter is the
    #: per-event cost the index is built to shrink.
    expectations_checked: int = 0
    #: Expectations a per-event linear scan would have examined instead
    #: (live expectations summed over node start events) — the counterfactual
    #: cost of the pre-index engine, kept for the benchmark trajectory.
    linear_scan_checks: int = 0
    #: Lazy-DFA backend: distinct automaton states materialized *during this
    #: run* (a warm transition table materializes none; see
    #: :mod:`repro.streaming.automaton`).
    dfa_states_materialized: int = 0
    #: Lazy-DFA backend: transition-table lookups performed / answered from
    #: the cache.  A fully warm run has ``hits == lookups``; the difference
    #: is the number of on-the-fly subset constructions.
    transition_cache_lookups: int = 0
    transition_cache_hits: int = 0
    #: Lazy-DFA backend: cached transitions dropped one at a time (FIFO)
    #: because the bounded table was full (the automaton falls back to
    #: on-the-fly subset construction for evicted entries).
    transition_cache_evictions: int = 0
    #: Lazy-DFA backend: cached transitions dropped wholesale because the
    #: materialized *state set* outgrew its bound and the automaton flushed
    #: (epoch bump; live runs resync).  Kept separate from the per-entry
    #: FIFO evictions above so the two overflow regimes stay
    #: distinguishable in reports.
    transition_cache_flushed: int = 0
    #: Qualifier/join conditions created during the run.
    conditions_created: int = 0
    #: Candidate matches buffered awaiting qualifier/join resolution.
    candidates_buffered: int = 0
    #: Characters of text buffered for value (``=``) joins.
    buffered_value_chars: int = 0
    #: Number of result nodes reported.
    results: int = 0
    #: Substream delivery: matched subtrees re-emitted as payload, and the
    #: serialized payload bytes that crossed the boundary — the honest unit
    #: of serving work (zero outside substream mode).
    subtrees_emitted: int = 0
    bytes_emitted: int = 0

    @property
    def memory_units(self) -> int:
        """A single machine-independent "things held in memory" figure.

        Counts stored nodes, buffered candidates and live expectations —
        the quantities that grow with the document for a DOM evaluator but
        stay bounded by query selectivity for the streaming evaluator.
        """
        return (self.nodes_stored + self.candidates_buffered
                + self.max_live_expectations)

    def as_row(self) -> dict:
        """Flat dictionary used by the benchmark reports."""
        return {
            "events": self.events,
            "events_skipped": self.events_skipped,
            "nodes_seen": self.nodes_seen,
            "attributes_seen": self.attributes_seen,
            "nodes_stored": self.nodes_stored,
            "candidates_buffered": self.candidates_buffered,
            "max_live_expectations": self.max_live_expectations,
            "expectations_checked": self.expectations_checked,
            "linear_scan_checks": self.linear_scan_checks,
            "dfa_states_materialized": self.dfa_states_materialized,
            "transition_cache_lookups": self.transition_cache_lookups,
            "transition_cache_hits": self.transition_cache_hits,
            "transition_cache_evictions": self.transition_cache_evictions,
            "transition_cache_flushed": self.transition_cache_flushed,
            "buffered_value_chars": self.buffered_value_chars,
            "memory_units": self.memory_units,
            "results": self.results,
            "subtrees_emitted": self.subtrees_emitted,
            "bytes_emitted": self.bytes_emitted,
        }


@dataclass
class ChurnStats:
    """Accounting of live subscription churn on a
    :class:`~repro.streaming.engine.SubscriptionIndex`.

    One instance lives on the index (``index.churn``) for the index's whole
    lifetime — unlike the per-run :class:`StreamStats`, these counters
    accumulate across documents and matchers.  The acceptance contract of
    live churn is asserted against them: below the documented thresholds an
    add costs one *targeted* invalidation (never a full flush) and a remove
    costs no recompilation at all (``vacuum_runs`` stays flat until the
    retired ratio is crossed).
    """

    #: Subscriptions added to / removed from a live index through the churn
    #: API (:meth:`~repro.streaming.engine.SubscriptionIndex.add_subscription`
    #: / ``remove_subscription``).  Bulk registration before the first
    #: matcher is built is not churn and is not counted.
    subscriptions_added: int = 0
    subscriptions_removed: int = 0
    #: Targeted DFA invalidations: an incremental NFA insertion bumped the
    #: epoch and dropped only the cached transitions whose NFA-state sets
    #: intersect the touched fragments, keeping every materialized DFA state
    #: (and the ids live runs hold) intact.
    targeted_flushes: int = 0
    #: Incremental insertions that fell back to the wholesale flush because
    #: the touched fragments reached too many materialized states (see
    #: ``TARGETED_FLUSH_RATIO`` in :mod:`repro.streaming.automaton`).
    full_flushes: int = 0
    #: Deferred compactions: the index rebuilt its structures to reclaim
    #: retired ordinals once they exceeded the ``vacuum_ratio``.
    vacuum_runs: int = 0

    def as_row(self) -> dict:
        """Flat dictionary used by the benchmark reports."""
        return {
            "subscriptions_added": self.subscriptions_added,
            "subscriptions_removed": self.subscriptions_removed,
            "targeted_flushes": self.targeted_flushes,
            "full_flushes": self.full_flushes,
            "vacuum_runs": self.vacuum_runs,
        }
