"""The DOM baseline: materialize the document, then evaluate.

This is the processing model the paper's introduction starts from ("the
widespread use of the W3C document object model (DOM), where an in-memory
representation of the entire XML data is used") and whose memory behaviour
the streaming evaluator is meant to avoid.  The baseline accepts *any* path
— including reverse axes — because once the whole tree is in memory every
axis is cheap; its cost is that ``nodes_stored`` equals the document size.
"""

from __future__ import annotations

from typing import Iterable, List, Union as TypingUnion

from repro.semantics.evaluator import evaluate
from repro.streaming.evaluator import StreamResult
from repro.streaming.stats import StreamStats
from repro.xmlmodel.builder import build_document
from repro.xmlmodel.events import EndDocument, EndElement, Event, StartDocument
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_xpath


def dom_evaluate(path: TypingUnion[str, PathExpr],
                 events: Iterable[Event]) -> StreamResult:
    """Evaluate ``path`` by building the full document first.

    Returns the same :class:`StreamResult` shape as the streaming evaluator
    so benchmark reports can put the two side by side; ``nodes_stored``
    reflects the in-memory tree.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    stats = StreamStats()
    buffered = []
    depth = 0
    for event in events:
        stats.events += 1
        if isinstance(event, EndElement):
            depth -= 1
        elif not isinstance(event, (StartDocument, EndDocument)):
            depth += 1
            stats.max_depth = max(stats.max_depth, depth)
            if not hasattr(event, "tag"):
                depth -= 1  # text events are leaves, they do not nest
        buffered.append(event)
    document = build_document(buffered)
    stats.nodes_seen = len(document)
    stats.nodes_stored = len(document)
    nodes = evaluate(path, document)
    node_ids: List[int] = [node.position for node in nodes]
    stats.results = len(node_ids)
    return StreamResult(node_ids=node_ids, stats=stats)
