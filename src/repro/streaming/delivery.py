"""The emission layer: what a decided match *delivers* to its subscriber.

Historically :class:`~repro.streaming.engine.MultiMatcher` hard-coded one
answer shape — append the matched node id to the subscription's sink, with
``matches_only=True`` degrading that to a boolean verdict.  This module
makes the shape pluggable.  A :class:`Delivery` names one of three modes:

``verdict``
    Per-subscription booleans only.  Cheapest; admits early termination.
``ids``
    Sorted matched node ids per subscription (the legacy default).
``substream``
    The matched *content*: each match re-emits its subtree's events,
    re-serialized to XML bytes by
    :mod:`repro.xmlmodel.stream_serialize` — what a content-based router
    actually forwards to the subscriber.

Substream mode is implemented as a **shared single-pass tee**
(:class:`SubtreeTee`).  While at least one capture window is open the
matcher tees every stream event into one shared buffer (a :class:`_Region`);
every subscription whose match overlaps that stretch of the document holds
a ``(start, end)`` *slice* of the same region — matches never get
per-subscriber event copies, no matter how many subscribers capture the
same subtree.  When the last open window closes, the region is dropped and
teeing stops, so the tee costs nothing on stretches of the document nobody
matched.  Serialization of a slice is cached on the region, so ten
subscribers matching the same element pay for one rendering.

Payload routing is the broker's choice: with an ``on_payload`` callback the
bytes stream out as each window closes; without one they are buffered and
returned on :class:`~repro.streaming.engine.SubscriptionResult` as
``payload``.

**Churn safety.**  The tee is *matcher* state, not automaton state: a DFA
transition-cache flush mid-document — whether from the cache cap or from a
live ``add_subscription`` invalidating touched transitions — rebuilds only
the automaton's lookup tables and leaves every open capture window, its
shared region, and its buffered events untouched; the payload delivered at
window close is byte-identical to an unflushed run.  Live *removals* never
reach this layer at all: a retired subscription's matches are suppressed at
emission time by the matcher's dropped sink, so no window is opened for
them in the first place, and windows already open for surviving
subscriptions keep their slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.xmlmodel.events import EndElement, Event, StartElement, Text
from repro.xmlmodel.stream_serialize import serialize_events

#: The three delivery modes, in increasing order of what crosses the wire.
VERDICT = "verdict"
NODE_IDS = "ids"
SUBSTREAM = "substream"
DELIVERY_MODES = (VERDICT, NODE_IDS, SUBSTREAM)

#: Signature of a substream payload callback:
#: ``on_payload(subscription_key, node_id, data)``.
PayloadCallback = Callable[[Hashable, int, bytes], None]


class Delivery:
    """What a decided match delivers.  Base of the three concrete modes.

    ``mode``
        One of :data:`DELIVERY_MODES`.
    ``matches_only``
        Whether sinks may collapse to booleans (enables early termination).
    ``captures``
        Whether the matcher must run the :class:`SubtreeTee` and open a
        capture window per match.
    ``on_payload``
        Optional streaming callback for substream mode; ``None`` buffers.
    """

    mode: str = NODE_IDS
    matches_only: bool = False
    captures: bool = False
    on_payload: Optional[PayloadCallback] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(mode={self.mode!r})"


class VerdictDelivery(Delivery):
    """Booleans only — the ``matches_only=True`` SDI mode as a Delivery."""

    mode = VERDICT
    matches_only = True


class NodeIdDelivery(Delivery):
    """Sorted matched node ids per subscription (the legacy default)."""

    mode = NODE_IDS


class SubstreamDelivery(Delivery):
    """Matched subtrees re-emitted as serialized XML payload bytes.

    With ``on_payload`` the payload streams out per match as its capture
    window closes (``on_payload(key, node_id, data)``); without it each
    subscription's payloads are concatenated in document order and returned
    as ``SubscriptionResult.payload``.
    """

    mode = SUBSTREAM
    captures = True

    def __init__(self, on_payload: Optional[PayloadCallback] = None) -> None:
        self.on_payload = on_payload


def resolve_delivery(delivery: Optional[Delivery] = None,
                     matches_only: bool = False) -> Delivery:
    """Resolve the ``delivery`` / legacy ``matches_only`` pair to a Delivery.

    ``matches_only=True`` is the pre-emission-layer spelling of
    :class:`VerdictDelivery`; both remain supported, but asking for a
    verdict *and* a non-verdict delivery at once is a contradiction and
    raises ``ValueError``.
    """
    if delivery is None:
        return VerdictDelivery() if matches_only else NodeIdDelivery()
    if not isinstance(delivery, Delivery):
        raise TypeError(f"not a Delivery: {delivery!r}")
    if matches_only and not delivery.matches_only:
        raise ValueError(
            f"matches_only=True contradicts delivery mode {delivery.mode!r}; "
            "pass one or the other")
    return delivery


# ---------------------------------------------------------------------------
# The shared single-pass tee.
# ---------------------------------------------------------------------------

class _Region:
    """One shared capture buffer for a maximal overlapping stretch.

    All capture windows open at the same time share one region *by
    reference*; each window is a ``(start, end)`` slice into
    ``events``.  ``render`` memoizes serialization per slice, so N
    subscribers matching the same subtree share one rendering.
    """

    __slots__ = ("events", "_rendered")

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._rendered: Dict[Tuple[int, int], bytes] = {}

    def render(self, start: int, end: int) -> bytes:
        key = (start, end)
        data = self._rendered.get(key)
        if data is None:
            data = serialize_events(self.events[start:end])
            self._rendered[key] = data
        return data


@dataclass
class _Capture:
    """One subscription's open (then closed) window into a shared region.

    ``entry`` is the :class:`~repro.streaming.matcher._Entry` the match
    buffered in its sink — emission is gated on ``entry.holds()`` when the
    match carried conditions that were still undecided at window close.
    """

    ordinal: int
    node_id: int
    entry: object
    region: _Region
    start: int
    end: int = -1

    def render(self) -> bytes:
        return self.region.render(self.start, self.end)


@dataclass
class _LeafCapture:
    """A text- or attribute-node match: the payload is just the escaped
    value, rendered immediately (no window — leaves span no events)."""

    ordinal: int
    node_id: int
    entry: object
    data: bytes

    def render(self) -> bytes:
        return self.data


#: A pending claim: ``(ordinal, entry)`` recorded by ``add_candidate``
#: during an element's StartElement processing, turned into a window by
#: ``SubtreeTee.element_start`` before the event is appended.
Claim = Tuple[int, object]


class SubtreeTee:
    """Share one pass of the event stream among all open capture windows.

    The matcher calls :meth:`element_start` / :meth:`text` /
    :meth:`element_end` from its feed loop.  Every call is a no-op unless a
    window is open (``region is not None``), which is what keeps substream
    mode zero-cost on unmatched stretches of the document — and is why
    node-id mode, which never opens a window, pays nothing at all.

    A timing invariant of the engine makes the single pass possible: every
    element match — trie terminal, DFA accept, gate remainder, self-axis —
    fires *during that element's StartElement processing*, so the window's
    ``start`` index can be taken before the StartElement is appended and
    the slice always begins at the matched element's own start tag.
    """

    __slots__ = ("region", "open_windows", "_windows_by_node",
                 "_document_windows")

    def __init__(self) -> None:
        #: The shared buffer of the current overlapping stretch, or ``None``
        #: when no window is open (the common case: tee disengaged).
        self.region: Optional[_Region] = None
        self.open_windows = 0
        #: Element windows keyed by matched node id, closed by the matching
        #: EndElement.  A node id maps to the captures of *every*
        #: subscription that matched that element.
        self._windows_by_node: Dict[int, List[_Capture]] = {}
        #: Root ("/") matches span the whole document; closed by finish().
        self._document_windows: List[_Capture] = []

    # -- opening windows ---------------------------------------------------
    def _open(self, node_id: int, claims: List[Claim]) -> List[_Capture]:
        region = self.region
        if region is None:
            region = self.region = _Region()
        start = len(region.events)
        captures = [_Capture(ordinal=ordinal, node_id=node_id, entry=entry,
                             region=region, start=start)
                    for ordinal, entry in claims]
        self.open_windows += len(captures)
        return captures

    def element_start(self, event: StartElement,
                      claims: List[Claim]) -> None:
        """Tee one StartElement; open a window per claim on this element."""
        if claims:
            self._windows_by_node.setdefault(event.node_id, []).extend(
                self._open(event.node_id, claims))
        if self.region is not None:
            self.region.events.append(event)

    def open_document(self, root_id: int, claims: List[Claim]) -> None:
        """Open whole-document windows for root ("/") matches."""
        if claims:
            self._document_windows.extend(self._open(root_id, claims))

    # -- teeing ------------------------------------------------------------
    def text(self, event: Text) -> None:
        if self.region is not None:
            self.region.events.append(event)

    # -- closing windows ---------------------------------------------------
    def element_end(self, event: EndElement) -> List[_Capture]:
        """Tee one EndElement; close and return the windows it ends."""
        region = self.region
        if region is None:
            return ()
        region.events.append(event)
        closed = self._windows_by_node.pop(event.node_id, None)
        if not closed:
            return ()
        end = len(region.events)
        for capture in closed:
            capture.end = end
        self.open_windows -= len(closed)
        if self.open_windows == 0:
            # Last window gone: drop the shared buffer (closed captures
            # keep their region alive by reference) and disengage the tee.
            self.region = None
        return closed

    def finish(self) -> List[_Capture]:
        """Close the document windows at EndDocument."""
        closed = self._document_windows
        if not closed:
            return closed
        self._document_windows = []
        end = len(self.region.events) if self.region is not None else 0
        for capture in closed:
            capture.end = end
        self.open_windows -= len(closed)
        if self.open_windows == 0:
            self.region = None
        return closed

    def rewind(self) -> None:
        """Forget all per-document state (session reuse across documents)."""
        self.region = None
        self.open_windows = 0
        self._windows_by_node.clear()
        self._document_windows = []
