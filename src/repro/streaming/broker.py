"""Push-mode document broker: a continuous feed of documents through one
compiled subscription index.

This is the serving layer of the paper's SDI scenario.  A long-lived service
receives *documents* — as raw XML text arriving in arbitrary network-sized
chunks — and must route each one to the standing subscriptions it matches.
:class:`DocumentBroker` ties the push-mode pieces together:

* the subscriptions are compiled **once** into a
  :class:`~repro.streaming.engine.SubscriptionIndex` (parse, reverse-axis
  rewriting, prefix-trie merge);
* one resumable :class:`~repro.streaming.engine.MultiMatcher` session is
  created lazily and *reused* across documents via
  :meth:`~repro.streaming.matcher.MatcherCore.reset`, so the per-document
  cost is matching alone — not the per-subscription setup a fresh matcher
  pays (``benchmarks/bench_document_broker.py`` measures the amortization);
* each submitted document is tokenized incrementally with
  :class:`~repro.xmlmodel.parser.PushTokenizer`, so callers hand over chunks
  exactly as they arrive;
* in verdict-only mode (``matches_only=True``) a document's session halts —
  and the broker stops tokenizing its remaining chunks — the moment every
  subscription's verdict is decided.

:meth:`DocumentBroker.submit` returns the per-document
:class:`~repro.streaming.engine.MultiMatchResult`; the broker additionally
keeps aggregate counters (:class:`BrokerStats`) and a bounded per-document
history for monitoring a long-running feed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union as TypingUnion,
)

from repro.streaming.automaton import resolve_backend
from repro.streaming.delivery import (
    Delivery,
    PayloadCallback,
    SubstreamDelivery,
    resolve_delivery,
)
from repro.streaming.engine import (
    MultiMatcher,
    MultiMatchResult,
    Subscription,
    SubscriptionIndex,
)
from repro.xmlmodel.events import Event
from repro.xmlmodel.parser import Chunk, PushTokenizer
from repro.xpath.ast import PathExpr
from repro.xpath.cache import QueryCache


@dataclass
class BrokerStats:
    """Aggregate counters over every document a broker has served."""

    #: Documents fully processed (errored submissions are not counted).
    documents: int = 0
    #: Documents that matched at least one subscription.
    documents_matched: int = 0
    #: Total (document, subscription) routing decisions delivered.
    deliveries: int = 0
    #: Chunks tokenized / skipped because the document's verdicts were
    #: already decided (verdict-only sessions terminate early).
    chunks: int = 0
    chunks_skipped: int = 0
    #: Events processed / events tokenized but dropped by early termination,
    #: summed over documents.  Events of whole skipped chunks are never
    #: tokenized and therefore appear only in ``chunks_skipped``.
    events: int = 0
    events_skipped: int = 0
    #: Substream delivery: matched subtrees served as payload and the
    #: serialized bytes that crossed the boundary, summed over documents
    #: (zero outside substream mode).
    subtrees_emitted: int = 0
    bytes_emitted: int = 0

    def as_row(self) -> dict:
        """Flat dictionary used by the benchmark reports."""
        return {
            "documents": self.documents,
            "documents_matched": self.documents_matched,
            "deliveries": self.deliveries,
            "chunks": self.chunks,
            "chunks_skipped": self.chunks_skipped,
            "events": self.events,
            "events_skipped": self.events_skipped,
            "subtrees_emitted": self.subtrees_emitted,
            "bytes_emitted": self.bytes_emitted,
        }


@dataclass(frozen=True)
class DocumentRecord:
    """One line of the broker's per-document history."""

    document_id: Hashable
    matched_keys: Tuple[Hashable, ...]
    events: int
    events_skipped: int


class DocumentBroker:
    """Serve many documents through one compiled subscription index.

    ``subscriptions`` takes the same forms as
    :class:`~repro.streaming.engine.SubscriptionIndex` (a ``{key: query}``
    mapping, an iterable of queries, or ``None``) — or an already-built
    ``SubscriptionIndex`` to share with other consumers.

    ``matches_only`` selects the verdict-only SDI mode: per-subscription
    booleans instead of node ids, with early termination both in the matcher
    (events) and in the broker (chunks left untokenized).  Routing services
    want this; leave it ``False`` to get full per-subscription node ids, as
    :meth:`SubscriptionIndex.evaluate` would return them.

    ``delivery`` generalizes that pair into the emission layer
    (:mod:`repro.streaming.delivery`): pass a
    :class:`~repro.streaming.delivery.SubstreamDelivery` to serve the
    matched *content* — each match's subtree re-serialized to XML bytes —
    instead of verdicts or ids.  ``on_payload`` is shorthand for substream
    mode with a streaming callback: ``on_payload(subscription_key, node_id,
    data)`` fires per match as its subtree closes; without a callback the
    bytes are buffered per subscription on ``SubscriptionResult.payload``.
    Passing both ``delivery`` and ``on_payload`` is rejected unless they
    agree (the delivery has no callback of its own).

    ``backend`` picks the structural dispatch engine: ``"dfa"`` (the
    default) compiles the index into one shared lazy automaton whose warmed
    transition table persists across the whole feed — the broker's sweet
    spot; ``"expectations"`` is the uncompiled semantics reference
    (``REPRO_STREAMING_BACKEND=expectations`` is the environment opt-out);
    ``None`` defers to that variable, then to ``"dfa"``.  Resolved once at
    construction, so a long-lived broker is immune to later environment
    changes.

    ``history_limit`` bounds the per-document :attr:`history` the broker
    retains for monitoring: the most recent ``history_limit`` submissions
    are kept (default 256), older records are evicted oldest-first.
    ``history_limit=0`` disables retention entirely — aggregate
    :class:`BrokerStats` keep accumulating either way — and ``None`` means
    unbounded (every document of the feed is recorded; only for short
    feeds).

    **Live churn.**  :meth:`subscribe` / :meth:`unsubscribe` change the
    subscription set *between* submits without recompiling the index (see
    the live-churn section of :class:`SubscriptionIndex`).  The broker's
    session follows along at the next checkout: additions are picked up by
    an incremental :meth:`~repro.streaming.engine.MultiMatcher.sync` (the
    index ``version`` counter), removals take effect immediately through
    the shared retired set, and only a :meth:`SubscriptionIndex.vacuum`
    (the ``generation`` counter) forces a fresh session.  Churn on a shared
    index is equally safe — every broker on it syncs at its own next
    submit.

    A broker is not thread-safe: it reuses one matcher session.  Run one
    broker per worker and share the ``SubscriptionIndex`` between them
    (churn it from one thread at a time, between submits).
    """

    def __init__(self,
                 subscriptions: TypingUnion[None, SubscriptionIndex,
                                            Mapping[Hashable, TypingUnion[str, PathExpr]],
                                            Iterable[TypingUnion[str, PathExpr]]] = None,
                 matches_only: bool = False,
                 indexed: bool = True,
                 backend: Optional[str] = None,
                 keep_whitespace: bool = False,
                 ruleset: str = "ruleset2",
                 cache: Optional[QueryCache] = None,
                 history_limit: Optional[int] = 256,
                 delivery: Optional[Delivery] = None,
                 on_payload: Optional[PayloadCallback] = None):
        if isinstance(subscriptions, SubscriptionIndex):
            self._index = subscriptions
            self._owns_index = False
        else:
            self._index = SubscriptionIndex(subscriptions, ruleset=ruleset,
                                            cache=cache)
            self._owns_index = True
        if on_payload is not None:
            # A payload callback implies substream mode; a caller-supplied
            # delivery may carry the callback itself, but not a different one.
            if delivery is None:
                delivery = SubstreamDelivery(on_payload=on_payload)
            elif delivery.on_payload is None and delivery.captures:
                delivery = SubstreamDelivery(on_payload=on_payload)
            else:
                raise ValueError(
                    "on_payload conflicts with the supplied delivery; pass "
                    "SubstreamDelivery(on_payload=...) or on_payload alone")
        self._delivery = resolve_delivery(delivery, matches_only)
        self._matches_only = self._delivery.matches_only
        self._indexed = indexed
        # Resolved once at construction so a long-lived broker is immune to
        # later environment changes.
        self._backend = resolve_backend(backend)
        self._keep_whitespace = keep_whitespace
        self._matcher: Optional[MultiMatcher] = None
        self._session_used = False
        self.stats = BrokerStats()
        self._history: Deque[DocumentRecord] = deque(maxlen=history_limit)

    # -- subscription management -------------------------------------------
    @property
    def index(self) -> SubscriptionIndex:
        """The shared compiled index this broker matches against."""
        return self._index

    @property
    def subscriptions(self) -> Tuple[Subscription, ...]:
        return self._index.subscriptions

    def __len__(self) -> int:
        return len(self._index)

    def add(self, query, key: Optional[Hashable] = None) -> Subscription:
        """Register one more subscription; the session is rebuilt lazily.

        Only available when the broker built its own index.  A
        ``SubscriptionIndex`` handed in by the caller may be shared with
        other brokers, which rely on it staying immutable — register every
        subscription on it *before* constructing the brokers instead.
        """
        self._check_owns_index()
        subscription = self._index.add(query, key=key)
        self._matcher = None
        return subscription

    def add_many(self, subscriptions) -> List[Subscription]:
        self._check_owns_index()
        added = self._index.add_many(subscriptions)
        self._matcher = None
        return added

    def _check_owns_index(self) -> None:
        if not self._owns_index:
            raise ValueError(
                "cannot add subscriptions through a broker built on an "
                "externally supplied SubscriptionIndex (it may be shared); "
                "add them on the index before constructing the broker")

    def subscribe(self, key: Hashable,
                  query: TypingUnion[str, PathExpr]) -> Subscription:
        """Live churn: add one subscription to the running broker.

        Delegates to :meth:`SubscriptionIndex.add_subscription`; the
        session picks the addition up incrementally at the next submit.
        Unlike :meth:`add` this is allowed on a shared index — churn is
        what the version counters exist for, and other brokers on the same
        index sync at their own next submit.
        """
        return self._index.add_subscription(key, query)

    def unsubscribe(self, key: Hashable) -> Subscription:
        """Live churn: drop one subscription from the running broker.

        Delegates to :meth:`SubscriptionIndex.remove_subscription`
        (ordinal retirement + deferred vacuum); no delivery for the key
        happens after this returns.  Raises :class:`KeyError` for an
        unknown key.
        """
        return self._index.remove_subscription(key)

    # -- the session -------------------------------------------------------
    @property
    def session(self) -> Optional[MultiMatcher]:
        """The resumable matcher serving this broker (``None`` before the
        first submit).  Exposed for diagnostics — see
        :meth:`~repro.streaming.matcher.MatcherCore.registry_sizes`."""
        return self._matcher

    def _checkout(self) -> MultiMatcher:
        matcher = self._matcher
        index = self._index
        if matcher is None or matcher._generation != index.generation:
            # First document, the index was vacuumed (ordinals remapped),
            # or a previous submission left an unsalvageable session:
            # build a fresh one.
            matcher = index.matcher(matches_only=self._matches_only,
                                    indexed=self._indexed,
                                    backend=self._backend,
                                    delivery=self._delivery)
            self._matcher = matcher
            self._session_used = False
        elif matcher._synced_version != index.version:
            # Subscription churn since the last submit: extend the session
            # incrementally instead of rebuilding it (removals need no sync
            # at all — the retired set is shared by reference).
            matcher.sync()
        if self._session_used:
            matcher.reset()
        self._session_used = True
        return matcher

    # -- submitting documents ----------------------------------------------
    def submit(self, document_id: Hashable,
               chunks: TypingUnion[Chunk, Iterable[Chunk]]) -> MultiMatchResult:
        """Match one document, given as XML text in one or more chunks.

        ``chunks`` is a single ``str``/``bytes`` or any iterable of them,
        split at arbitrary byte boundaries.  Returns the per-document
        :class:`MultiMatchResult`; raises
        :class:`~repro.errors.XMLSyntaxError` if the document is not well
        formed (in verdict-only mode only the prefix consumed before every
        verdict was decided is checked).
        """
        matcher = self._checkout()
        tokenizer = PushTokenizer(keep_whitespace=self._keep_whitespace)
        if isinstance(chunks, (str, bytes, bytearray, memoryview)):
            chunks = (chunks,)
        # Counted locally and folded into the aggregates only on success:
        # a failed document must leave ``BrokerStats`` untouched, chunk
        # counters included (its partial work was never served to anyone).
        chunks_fed = 0
        chunks_skipped = 0
        try:
            for chunk in chunks:
                if matcher.halted:
                    chunks_skipped += 1
                    continue
                chunks_fed += 1
                batch = tokenizer.feed(chunk)
                for index, event in enumerate(batch):
                    matcher.feed(event)
                    if matcher.halted:
                        # The rest of this batch was tokenized but is never
                        # consumed; later chunks are skipped whole (counted
                        # in ``chunks_skipped``, their events untokenized).
                        matcher.stats.events_skipped += len(batch) - index - 1
                        break
            if not matcher.halted:
                for event in tokenizer.close():
                    matcher.feed(event)
            result = matcher.results()
        except Exception:
            self._salvage_session()
            raise
        self.stats.chunks += chunks_fed
        self.stats.chunks_skipped += chunks_skipped
        return self._deliver(document_id, result)

    def submit_events(self, document_id: Hashable,
                      events: Iterable[Event]) -> MultiMatchResult:
        """Match one document given as an already-tokenized event stream
        (e.g. :func:`repro.xmlmodel.builder.document_events`)."""
        matcher = self._checkout()
        try:
            result = matcher.process(events)
        except Exception:
            self._salvage_session()
            raise
        return self._deliver(document_id, result)

    def _salvage_session(self) -> None:
        """Recover the session after a submission died mid-document.

        The stream state is poisoned but the expensive per-subscription
        setup (and, for the DFA backend, the warmed automaton) is not:
        :meth:`~repro.streaming.matcher.MatcherCore.reset` clears exactly
        the per-document state, so the *next* submit reuses the session
        instead of paying for a fresh matcher.  If even the reset fails the
        session is discarded and the next submit builds a clean one.
        """
        matcher = self._matcher
        if matcher is None:
            return
        try:
            matcher.reset()
        except Exception:
            self._matcher = None
        else:
            # Fresh state: the next checkout must not reset a second time.
            self._session_used = False

    # -- accounting ----------------------------------------------------------
    def _deliver(self, document_id: Hashable,
                 result: MultiMatchResult) -> MultiMatchResult:
        stats = self.stats
        stats.documents += 1
        stats.events += result.stats.events
        stats.events_skipped += result.stats.events_skipped
        stats.subtrees_emitted += result.stats.subtrees_emitted
        stats.bytes_emitted += result.stats.bytes_emitted
        matching = result.matching_keys
        stats.deliveries += len(matching)
        if matching:
            stats.documents_matched += 1
        self._history.append(DocumentRecord(
            document_id=document_id, matched_keys=tuple(matching),
            events=result.stats.events,
            events_skipped=result.stats.events_skipped))
        return result

    @property
    def history(self) -> List[DocumentRecord]:
        """The most recent per-document records (bounded by
        ``history_limit``)."""
        return list(self._history)
