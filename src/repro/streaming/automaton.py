"""Lazy-DFA structural dispatch for the subscription engine (the default
``backend="dfa"``).

The expectation engine of :mod:`repro.streaming.matcher` pays per event for
every *live* expectation a node could match; at thousands of subscriptions
that is dozens of admissibility checks per StartElement even with tag-indexed
dispatch.  This module compiles the *structural spine* of every subscription
— the qualifier-free chain of ``self``/``child``/``descendant``/
``descendant-or-self``/``attribute``/``following-sibling``/``following``
steps over name, ``*``, ``text()``, ``node()`` and ``@name``/``@*`` tests —
into NFA fragments merged trie-style into one shared automaton, then
materializes DFA states *lazily* at match time (XMLTK/YFilter-style).  Once
the transition table is warm, structural dispatch costs one dictionary
lookup plus a stack push per StartElement, independent of the number of
subscriptions.

How it relates to the expectation engine
----------------------------------------

The ancestor-chain axes relate a node to its root-to-node tag sequence
(exactly the open-element stack a SAX consumer has for free); the sibling
axes additionally consume EndElement — a *sibling window* NFA state arms
when the anchor's subtree closes and (for ``following-sibling``) expires
when the anchor's parent closes, because the window lives only in the
parent's stack entry.  Together they make a deterministic run over the
event stream:

* each **DFA state** is a frozenset of NFA states, interned on first use and
  cached in a bounded transition table keyed by ``(state_id, tag)``; when
  the table is full the automaton falls back to on-the-fly subset
  construction for the evicted entries (``StreamStats`` counts
  materializations, lookups, hits, FIFO evictions and bulk flushes);
* NFA fragments are shared **trie-style**: alternatives and union members
  with a common spine prefix thread through one fragment (the builder memoizes
  ``(state, item)`` pairs) and carry per-member accept/gate tags at their
  end states, so overlapping subscription pools stop multiplying states;
* **structurally decided** subscriptions (no qualifiers anywhere — see
  :func:`repro.xpath.analysis.is_structurally_decided`) are answered by DFA
  *accept sets* alone: an accepting state delivers the current node id
  straight into the subscription's result sink;
* **qualifier-carrying** subscriptions are *gated*: the automaton compiles
  the qualifier-free spine prefix and attaches a gate at the first step
  with qualifiers (or at an axis outside the supported set, e.g. a reverse
  axis the rewriter left in a qualifier-carrying spine).  Only when a node
  structurally reaches the gate does the engine build the qualifier
  conditions and spawn expectations for the remaining steps — the
  :class:`~repro.streaming.matcher.MatcherCore` machinery runs exclusively
  on structurally-viable elements;
* members whose *first* step is already unsupported fall back to the
  expectation engine wholesale (the caller keeps a fallback trie for them).
  With sibling windows compiled and ``//`` descents folded instead of
  forked, that is now a rare corner (adversarial named
  ``descendant-or-self`` chains past the alternative cap), which is why
  ``dfa`` is the default backend and the expectation engine serves as the
  differential-testing semantics reference.

The automaton is shared — one compiled instance serves every matcher a
:class:`SubscriptionIndex` hands out, and a reused broker session keeps the
warmed transition table across documents (``reset()`` rewinds only the
per-document state stack) — but no longer immutable: live subscription
churn threads new NFA fragments into the retained builder
(:meth:`SubscriptionAutomaton.add_member`) and repairs the materialized DFA
view with a *targeted* invalidation (only states intersecting the touched
fragments are patched; see :data:`TARGETED_FLUSH_RATIO`), so one user
subscribing never recompiles the world.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import StreamingError
from repro.xpath import analysis
from repro.xpath.ast import (
    Bottom,
    LocationPath,
    PathExpr,
    Qualifier,
    Step,
    iter_union_members,
)
from repro.xpath.serializer import to_string

#: Environment variable consulted when no explicit backend is passed; lets
#: CI run the whole tier-1 suite once per backend without editing tests.
BACKEND_ENV_VAR = "REPRO_STREAMING_BACKEND"

#: The two engine backends: the lazy DFA of this module (default) and the
#: expectation engine (the differential-testing semantics reference).
BACKENDS = ("expectations", "dfa")

#: Default bound of the shared transition table (element + attribute
#: entries).  Generous for real vocabularies; small enough that a pathological
#: tag stream cannot grow the table without limit.
DEFAULT_TRANSITION_CAP = 65536

#: Live churn: an incremental insertion (:meth:`SubscriptionAutomaton
#: .add_member`) invalidates *only* the materialized DFA states whose
#: NFA-state sets intersect the touched fragments — unless those reach more
#: than this fraction of the materialized set, where walking and patching
#: them one by one costs more than the existing wholesale flush.  Below the
#: ratio an add is guaranteed never to trigger a full recompilation
#: (``ChurnStats.full_flushes`` stays 0).
TARGETED_FLUSH_RATIO = 0.5


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a backend selector, consulting ``REPRO_STREAMING_BACKEND``.

    ``None`` means "whatever the environment says", defaulting to the lazy
    DFA; anything outside :data:`BACKENDS` is rejected with the same error
    whether it came from the caller or from the environment — the message
    names the variable when the environment is the source.
    """
    from_environment = False
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR)
        from_environment = bool(backend)
        if not backend:
            backend = "dfa"
    if backend not in BACKENDS:
        origin = f" (from {BACKEND_ENV_VAR})" if from_environment else ""
        raise StreamingError(
            f"unknown streaming backend {backend!r}{origin}; expected one "
            f"of {', '.join(BACKENDS)}")
    return backend


# ---------------------------------------------------------------------------
# Spine splitting (the compilation kernel lives in repro.xpath.analysis so
# the exported classifiers can never drift from compiler behavior)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Gate:
    """Hand-off point from the automaton to the expectation engine.

    Fires on every node that structurally matches the compiled spine prefix
    of subscription ``ordinal``: the engine then builds ``qualifiers`` into
    conditions and spawns expectations for ``remaining`` anchored at that
    node.  Both tuples may be empty — an empty gate ( ``()``, ``()`` ) never
    exists; a gate with no qualifiers hands over at an unsupported axis, one
    with no remaining steps re-checks only the final step's qualifiers.
    """

    ordinal: int
    qualifiers: Tuple[Qualifier, ...]
    remaining: Tuple[Step, ...]


# ---------------------------------------------------------------------------
# The shared NFA
# ---------------------------------------------------------------------------

class _NfaState:
    """One NFA state: outgoing consuming edges bucketed by test category,
    plus the sibling windows its close event arms."""

    __slots__ = ("elem_by_tag", "elem_any", "text", "attr_by_name",
                 "attr_any", "arm_sib", "arm_fol", "deliver", "gates")

    def __init__(self):
        self.elem_by_tag: Dict[str, List[int]] = {}
        self.elem_any: List[int] = []
        self.text: List[int] = []
        self.attr_by_name: Dict[str, List[int]] = {}
        self.attr_any: List[int] = []
        #: Window states armed when a node in this state closes:
        #: ``following-sibling`` windows join the parent's stack entry (and
        #: expire with it); ``following`` windows join the run's armed set
        #: for the rest of the document.
        self.arm_sib: List[int] = []
        self.arm_fol: List[int] = []
        #: Ordinals of structurally decided members accepting here.
        self.deliver: List[int] = []
        #: Gates firing here (qualifier hand-offs to the expectation engine).
        self.gates: List[_Gate] = []


class _NfaBuilder:
    """Builds the shared NFA trie-style: each ``(state, item)`` pair is
    memoized, so alternatives and union members with a common spine prefix
    thread through one shared fragment (and a thousand ``/descendant::x``
    subscriptions reuse one skip state)."""

    def __init__(self):
        self.states: List[_NfaState] = [_NfaState()]
        self._skip_of: Dict[int, int] = {}
        self._chain_of: Dict[tuple, int] = {}
        #: States whose rule sets changed since the last
        #: :meth:`SubscriptionAutomaton.add_member` harvest — the touched
        #: fragments a targeted DFA invalidation intersects against.  States
        #: created *during* the same insertion land here too; they cannot
        #: appear in any previously materialized DFA set, so the
        #: intersection ignores them naturally.
        self.touched: set = set()

    def _new(self) -> int:
        self.states.append(_NfaState())
        return len(self.states) - 1

    def _skip(self, source: int) -> int:
        skip = self._skip_of.get(source)
        if skip is None:
            skip = self._new()
            self.states[source].elem_any.append(skip)
            self.states[skip].elem_any.append(skip)
            self._skip_of[source] = skip
            self.touched.add(source)
        return skip

    def _edge(self, source: int, test: _Test, target: int) -> None:
        kind, name = test
        state = self.states[source]
        self.touched.add(source)
        if kind == analysis.K_NAME:
            state.elem_by_tag.setdefault(name, []).append(target)
        elif kind == analysis.K_WILD:
            state.elem_any.append(target)
        elif kind == analysis.K_NODE:
            state.elem_any.append(target)
            state.text.append(target)
        elif kind == analysis.K_TEXT:
            state.text.append(target)
        elif kind == analysis.K_ATTR:
            state.attr_by_name.setdefault(name, []).append(target)
        else:
            state.attr_any.append(target)

    def _window(self, source: int, mode: int, test: _Test) -> int:
        """A sibling-window fragment anchored at ``source``.

        The window state consumes nothing until armed by a close event;
        ``following`` windows self-loop on elements (they stay live for the
        rest of the document), ``following-sibling`` windows do not (they
        live only in the arming node's parent entry, so the parent's close
        expires them).  Deep variants (after a pending ``//``) anchor at
        ``source``, at every element descendant (the shared skip state) and
        — via an armer state — at text descendants, whose windows arm at
        the text event itself because text nodes have no close event.
        """
        window = self._new()
        target = self._new()
        self._edge(window, test, target)
        sibling = mode in (analysis.M_SIB, analysis.M_SIB_DEEP)
        if not sibling:
            self.states[window].elem_any.append(window)
        anchors = [source]
        if mode in (analysis.M_SIB_DEEP, analysis.M_FOL_DEEP):
            skip = self._skip(source)
            anchors.append(skip)
            armer = self._new()
            self.states[source].text.append(armer)
            self.states[skip].text.append(armer)
            self.touched.add(skip)
            anchors.append(armer)
        for anchor in anchors:
            state = self.states[anchor]
            (state.arm_sib if sibling else state.arm_fol).append(window)
            self.touched.add(anchor)
        return target

    def chain(self, items) -> int:
        """Thread one consuming alternative from the start state; returns
        the accepting state.  Shared prefixes resolve to the same state."""
        current = 0
        for item in items:
            key = (current, item)
            target = self._chain_of.get(key)
            if target is None:
                mode, test = item
                if mode in analysis.WINDOW_MODES:
                    target = self._window(current, mode, test)
                else:
                    target = self._new()
                    self._edge(current, test, target)
                    if mode == analysis.M_DESC:
                        self._edge(self._skip(current), test, target)
                self._chain_of[key] = target
            current = target
        return current


def _compile_path(builder: _NfaBuilder, ordinal: int,
                  path: PathExpr) -> List[LocationPath]:
    """Compile one subscription's union members into the shared builder.

    Returns the members the automaton cannot serve (first spine step
    unsupported, or alternative explosion); the caller routes exactly those
    through the expectation engine.  Shared by the bulk compilation below
    and the live :meth:`SubscriptionAutomaton.add_member` — the ``(state,
    item)`` chain memoization makes re-inserting an already-known member a
    structural no-op either way.
    """
    unsupported: List[LocationPath] = []
    for member in iter_union_members(path):
        if isinstance(member, Bottom):
            continue
        if not isinstance(member, LocationPath) or not member.absolute:
            # Same contract as the expectation engine's root spawning.
            raise StreamingError(
                "the streaming evaluator expects absolute paths "
                f"(got {to_string(member)})")
        split = analysis.automaton_split_member(member)
        alternatives = (None if split is None
                        else analysis.automaton_spine_alternatives(split[0]))
        if alternatives is None:
            unsupported.append(member)
            continue
        _prefix, gate_qualifiers, remaining = split
        for items in alternatives:
            end_index = builder.chain(items)
            end = builder.states[end_index]
            if gate_qualifiers is None:
                if ordinal not in end.deliver:
                    end.deliver.append(ordinal)
                    builder.touched.add(end_index)
            else:
                gate = _Gate(ordinal, tuple(gate_qualifiers),
                             tuple(remaining))
                if gate not in end.gates:
                    end.gates.append(gate)
                    builder.touched.add(end_index)
    return unsupported


def compile_subscription_automaton(
        subscriptions: Sequence[Tuple[int, PathExpr]],
        transition_cap: int = DEFAULT_TRANSITION_CAP):
    """Compile ``(ordinal, path)`` pairs into one shared lazy automaton.

    Returns ``(automaton, fallback)`` where ``fallback`` maps ordinals to
    the union members the automaton cannot serve; the caller routes exactly
    those through the expectation engine.
    """
    builder = _NfaBuilder()
    fallback: Dict[int, List[LocationPath]] = {}
    for ordinal, path in subscriptions:
        unsupported = _compile_path(builder, ordinal, path)
        if unsupported:
            fallback.setdefault(ordinal, []).extend(unsupported)
    builder.touched.clear()
    return SubscriptionAutomaton(builder, transition_cap), fallback


# ---------------------------------------------------------------------------
# The lazy DFA
# ---------------------------------------------------------------------------

class SubscriptionAutomaton:
    """Lazily determinized view of the shared NFA.

    DFA states (frozensets of NFA states) are interned on first use;
    transitions are cached in a bounded table keyed by ``(state_id, tag)``.
    The instance is shared by every matcher of one subscription set: the
    warmed table survives ``reset()`` between documents, which is where the
    O(1)-per-event steady state comes from.

    *Both* caches are bounded.  The transition tables evict FIFO past
    ``transition_cap``; the interned state set itself is **flushed** — and
    lazily rebuilt — when it outgrows its own bound (``state_cap``,
    derived from ``transition_cap``), so a long-lived session serving
    documents with ever-new ancestor-chain tag combinations cannot grow
    memory without limit.  A flush bumps :attr:`epoch`; live
    :class:`AutomatonRun`\\ s notice and resync their state stack from the
    engine's open-element stack (O(depth), and only between events).
    """

    def __init__(self, builder: _NfaBuilder,
                 transition_cap: int = DEFAULT_TRANSITION_CAP):
        #: The builder is retained (not frozen into a tuple) so live churn
        #: can thread new NFA fragments into the shared trie-style structure
        #: (:meth:`add_member`); ``_nfa`` aliases its live state list.
        self._builder = builder
        self._nfa = builder.states
        self._cap = max(16, int(transition_cap))
        #: Materialized-state bound: generous enough that flushes are rare
        #: for real vocabularies, small enough to actually bound memory.
        self._state_cap = max(64, self._cap)
        self._evictions = 0
        self._flushes = 0
        self._targeted_invalidations = 0
        self._full_invalidations = 0
        #: Bumped on every flush; runs holding state ids resync on mismatch.
        self.epoch = 0
        self.has_attribute_rules = any(
            state.attr_by_name or state.attr_any for state in self._nfa)
        self.has_window_rules = any(
            state.arm_sib or state.arm_fol for state in self._nfa)
        self._reset_caches()

    def _reset_caches(self) -> None:
        self._set_ids: Dict[FrozenSet[int], int] = {}
        self._sets: List[FrozenSet[int]] = []
        #: Per DFA state: (deliver ordinals, gates), merged and deduped.
        self._deliver: List[Tuple[int, ...]] = []
        self._gates: List[Tuple[_Gate, ...]] = []
        #: Per DFA state: windows armed when a node in this state closes.
        self._arm_sib: List[FrozenSet[int]] = []
        self._arm_fol: List[FrozenSet[int]] = []
        self._elem: Dict[Tuple[int, str], int] = {}
        self._text: Dict[int, int] = {}
        self._attr: Dict[Tuple[int, str], int] = {}
        # Interning order is deterministic, so these ids survive flushes.
        self.dead_state = self._intern(frozenset(), None)
        self.start_state = self._intern(frozenset((0,)), None)

    def maybe_flush(self, stats) -> bool:
        """Flush every materialized state and cached transition when the
        state set outgrew its bound.  Called by runs *between* events, so
        no state id handed out within an event is ever invalidated."""
        if len(self._sets) <= self._state_cap:
            return False
        if stats is not None:
            stats.transition_cache_flushed += (len(self._elem)
                                               + len(self._attr)
                                               + len(self._text))
        self._flushes += 1
        self.epoch += 1
        self._reset_caches()
        return True

    # -- live churn --------------------------------------------------------
    def add_member(self, ordinal: int, path: PathExpr,
                   churn=None) -> List[LocationPath]:
        """Thread one more subscription's fragments into the live automaton.

        The incremental mirror of :func:`compile_subscription_automaton`:
        the retained builder inserts the path's union members trie-style
        (shared prefixes resolve to the already-existing chain states), then
        the materialized DFA view is repaired by a *targeted* invalidation —
        only states whose NFA sets intersect the touched fragments are
        patched, everything else (including the state ids live runs hold on
        their stacks) survives.  Above :data:`TARGETED_FLUSH_RATIO` the
        repair degenerates to the wholesale flush live runs already resync
        from.  Returns the union members the automaton cannot serve; the
        caller routes those through its fallback trie.  ``churn`` is the
        index's :class:`~repro.streaming.stats.ChurnStats`.
        """
        builder = self._builder
        builder.touched.clear()
        before = len(builder.states)
        unsupported = _compile_path(builder, ordinal, path)
        touched = frozenset(builder.touched)
        builder.touched.clear()
        fresh = range(before, len(builder.states))
        if not self.has_attribute_rules:
            self.has_attribute_rules = any(
                self._nfa[q].attr_by_name or self._nfa[q].attr_any
                for q in (*touched, *fresh))
        if not self.has_window_rules:
            # Live runs pick the flip up at their next document start
            # (mid-document their window bookkeeping was never maintained,
            # which is covered by adds-take-effect-next-document).
            self.has_window_rules = any(
                self._nfa[q].arm_sib or self._nfa[q].arm_fol
                for q in (*touched, *fresh))
        self._invalidate_touched(touched, churn)
        return unsupported

    def _invalidate_touched(self, touched: FrozenSet[int], churn) -> None:
        """Repair the materialized DFA view after an NFA mutation.

        A cached transition or accept tuple is stale exactly when its
        *source* set intersects the touched NFA states: new fragments hang
        off touched states, and fresh states cannot occur in any previously
        interned set.  Stale accept info is recomputed in place (ids and
        frozensets stay valid — live run stacks are untouched); stale
        transitions are dropped and lazily rebuilt.  The epoch still bumps
        so live runs resync their stacks between events, exactly as after a
        wholesale flush.
        """
        if not touched:
            return
        affected = [state_id for state_id, key in enumerate(self._sets)
                    if key & touched]
        if not affected:
            return
        if len(affected) > TARGETED_FLUSH_RATIO * len(self._sets):
            self._full_invalidations += 1
            if churn is not None:
                churn.full_flushes += 1
            self.epoch += 1
            self._reset_caches()
            return
        stale = set(affected)
        for state_id in affected:
            (self._deliver[state_id], self._gates[state_id],
             self._arm_sib[state_id],
             self._arm_fol[state_id]) = self._accept_info(
                self._sets[state_id])
            self._text.pop(state_id, None)
        self._elem = {key: value for key, value in self._elem.items()
                      if key[0] not in stale}
        self._attr = {key: value for key, value in self._attr.items()
                      if key[0] not in stale}
        self._targeted_invalidations += 1
        if churn is not None:
            churn.targeted_flushes += 1
        self.epoch += 1

    # -- state interning ---------------------------------------------------
    def _accept_info(self, key: FrozenSet[int]):
        """``(deliver, gates, arm_sib, arm_fol)`` of an NFA-state set,
        merged and deduped in deterministic order.  Computed when a DFA
        state is interned, and recomputed in place by a targeted
        invalidation when an incremental insertion changed a member state's
        rules."""
        deliver: List[int] = []
        gates: List[_Gate] = []
        arm_sib = set()
        arm_fol = set()
        seen_ordinals = set()
        seen_gates = set()
        for q in sorted(key):
            nfa_state = self._nfa[q]
            for ordinal in nfa_state.deliver:
                if ordinal not in seen_ordinals:
                    seen_ordinals.add(ordinal)
                    deliver.append(ordinal)
            for gate in nfa_state.gates:
                if gate not in seen_gates:
                    seen_gates.add(gate)
                    gates.append(gate)
            arm_sib.update(nfa_state.arm_sib)
            arm_fol.update(nfa_state.arm_fol)
        return (tuple(deliver), tuple(gates), frozenset(arm_sib),
                frozenset(arm_fol))

    def _intern(self, key: FrozenSet[int], stats) -> int:
        state_id = self._set_ids.get(key)
        if state_id is not None:
            return state_id
        state_id = len(self._sets)
        self._set_ids[key] = state_id
        self._sets.append(key)
        deliver, gates, arm_sib, arm_fol = self._accept_info(key)
        self._deliver.append(deliver)
        self._gates.append(gates)
        self._arm_sib.append(arm_sib)
        self._arm_fol.append(arm_fol)
        if stats is not None:
            stats.dfa_states_materialized += 1
        return state_id

    def intern_set(self, key: FrozenSet[int], stats) -> int:
        """Id of an explicit NFA-state set (window arming and resync)."""
        return self._intern(key, stats)

    def set_of(self, state_id: int) -> FrozenSet[int]:
        """The NFA-state set behind a materialized DFA state."""
        return self._sets[state_id]

    def arms(self, state_id: int):
        """``(sibling_windows, following_windows)`` armed when a node in
        this state closes."""
        return self._arm_sib[state_id], self._arm_fol[state_id]

    def _remember(self, table, key, value, stats) -> None:
        if len(self._elem) + len(self._attr) >= self._cap:
            victim = table if table else (self._elem if self._elem
                                          else self._attr)
            victim.pop(next(iter(victim)))
            self._evictions += 1
            if stats is not None:
                stats.transition_cache_evictions += 1
        table[key] = value

    # -- transitions -------------------------------------------------------
    def element_successor(self, state_id: int, tag: str, stats) -> int:
        key = (state_id, tag)
        stats.transition_cache_lookups += 1
        successor = self._elem.get(key)
        if successor is not None:
            stats.transition_cache_hits += 1
            return successor
        targets = set()
        for q in self._sets[state_id]:
            nfa_state = self._nfa[q]
            bucket = nfa_state.elem_by_tag.get(tag)
            if bucket:
                targets.update(bucket)
            if nfa_state.elem_any:
                targets.update(nfa_state.elem_any)
        successor = self._intern(frozenset(targets), stats)
        self._remember(self._elem, key, successor, stats)
        return successor

    def text_successor(self, state_id: int, stats) -> int:
        stats.transition_cache_lookups += 1
        successor = self._text.get(state_id)
        if successor is not None:
            stats.transition_cache_hits += 1
            return successor
        targets = set()
        for q in self._sets[state_id]:
            targets.update(self._nfa[q].text)
        successor = self._intern(frozenset(targets), stats)
        # One entry per materialized state: small, never evicted.
        self._text[state_id] = successor
        return successor

    def attribute_successor(self, state_id: int, name: str, stats) -> int:
        key = (state_id, name)
        stats.transition_cache_lookups += 1
        successor = self._attr.get(key)
        if successor is not None:
            stats.transition_cache_hits += 1
            return successor
        targets = set()
        for q in self._sets[state_id]:
            nfa_state = self._nfa[q]
            bucket = nfa_state.attr_by_name.get(name)
            if bucket:
                targets.update(bucket)
            if nfa_state.attr_any:
                targets.update(nfa_state.attr_any)
        successor = self._intern(frozenset(targets), stats)
        self._remember(self._attr, key, successor, stats)
        return successor

    def accepts(self, state_id: int):
        """``(deliver_ordinals, gates)`` of a materialized DFA state."""
        return self._deliver[state_id], self._gates[state_id]

    # -- introspection -----------------------------------------------------
    def state_count(self) -> int:
        """DFA states currently materialized (shared; drops on a flush)."""
        return len(self._sets)

    def describe(self) -> dict:
        """Size figures for benchmark reports and diagnostics."""
        return {
            "nfa_states": len(self._nfa),
            "dfa_states": len(self._sets),
            "transitions_cached": (len(self._elem) + len(self._attr)
                                   + len(self._text)),
            "transition_cap": self._cap,
            "state_cap": self._state_cap,
            "evictions": self._evictions,
            "flushes": self._flushes,
            "targeted_invalidations": self._targeted_invalidations,
            "full_invalidations": self._full_invalidations,
        }


# ---------------------------------------------------------------------------
# The per-matcher run
# ---------------------------------------------------------------------------

class AutomatonRun:
    """Per-matcher driver of a shared :class:`SubscriptionAutomaton`.

    Owned by a :class:`~repro.streaming.matcher.MatcherCore` with
    ``backend="dfa"``; the core calls in from its event loop.  The only
    per-document state is the DFA state stack mirroring the open-element
    stack — plus, when the automaton has sibling-window rules, the parallel
    stack of exact NFA-state sets (window arming merges states into live
    entries, which tag replay could not reconstruct) and the set of armed
    ``following`` windows.  ``rewind()`` (wired into the core's
    stream-state teardown) clears them, while the automaton's transition
    table deliberately survives into the next document.

    ``sink_of`` maps a subscription ordinal to its current result sink; it
    is consulted at fire time so sinks replaced by ``reset()`` stay correct.
    """

    __slots__ = ("automaton", "_sink_of", "stack", "sets", "_armed",
                 "_windows", "epoch")

    def __init__(self, automaton: SubscriptionAutomaton, sink_of):
        self.automaton = automaton
        self._sink_of = sink_of
        self.stack: List[int] = []
        #: Exact NFA sets behind ``stack`` — maintained (and consulted by
        #: resync) only when the automaton has window rules.
        self.sets: List[FrozenSet[int]] = []
        #: Armed ``following`` windows: invariantly a subset of the current
        #: top entry; re-injected lazily whenever a pop exposes an entry
        #: that predates the arming.
        self._armed: FrozenSet[int] = frozenset()
        self._windows = automaton.has_window_rules
        self.epoch = automaton.epoch

    def on_document_start(self, core, root_id: int) -> None:
        automaton = self.automaton
        automaton.maybe_flush(core.stats)
        self.epoch = automaton.epoch
        # Live churn may have introduced the automaton's first window rules
        # since the last document; the cached flag refreshes only here —
        # never mid-document, where the parallel ``sets`` stack would not
        # have been maintained from the start.
        self._windows = automaton.has_window_rules
        start = automaton.start_state
        self.stack = [start]
        if self._windows:
            self.sets = [automaton.set_of(start)]
            self._armed = frozenset()
        deliver, gates = automaton.accepts(start)
        if deliver or gates:
            # Members accepting at the root itself (e.g. the path "/").
            self._fire(core, deliver, gates, root_id, 0, False, None, None,
                       False)

    def _resync(self, core) -> None:
        """Rebuild the state stack after a flush (ours or a co-tenant's).

        Without window rules the stack is a pure function of the engine's
        open-element ancestor chain — available for free on ``core._stack``
        — and is replayed through the freshly emptied automaton; the
        dead-state shortcut in :meth:`on_node` never applies here because a
        flushed automaton has no dead entries on any live path that
        mattered (recomputing them is exactly the point).  With window
        rules the entries carry armed-window residue no replay could
        rebuild, so the exact NFA sets of :attr:`sets` are re-interned
        instead.
        """
        automaton = self.automaton
        self.epoch = automaton.epoch
        stats = core.stats
        if self._windows:
            self.stack = [automaton.intern_set(entry, stats)
                          for entry in self.sets]
            return
        stack = [automaton.start_state]
        for open_element in core._stack[1:]:
            stack.append(automaton.element_successor(stack[-1],
                                                     open_element.tag, stats))
        self.stack = stack

    def _arm(self, core, sib, fol) -> None:
        """Merge newly armed (and still-armed ``following``) windows into
        the current top entry, re-interning its DFA state."""
        if fol:
            self._armed |= fol
        add = (self._armed | sib) if sib else self._armed
        if not add:
            return
        current = self.sets[-1]
        if add <= current:
            return
        merged = current | add
        self.sets[-1] = merged
        self.stack[-1] = self.automaton.intern_set(merged, core.stats)

    def on_node(self, core, node_id: int, depth: int, is_element: bool,
                tag, value, attributes) -> None:
        automaton = self.automaton
        if automaton.maybe_flush(core.stats) or self.epoch != automaton.epoch:
            self._resync(core)
        stack = self.stack
        top = stack[-1]
        dead = automaton.dead_state
        if is_element:
            if top == dead:
                stack.append(dead)
                if self._windows:
                    self.sets.append(automaton.set_of(dead))
                return
            state = automaton.element_successor(top, tag, core.stats)
            stack.append(state)
            if self._windows:
                self.sets.append(automaton.set_of(state))
            if state == dead:
                return
            deliver, gates = automaton.accepts(state)
            if deliver or gates:
                self._fire(core, deliver, gates, node_id, depth, True, tag,
                           None, False)
            if attributes and automaton.has_attribute_rules:
                for index, (name, attr_value) in enumerate(attributes):
                    successor = automaton.attribute_successor(
                        state, name, core.stats)
                    if successor == dead:
                        continue
                    deliver, gates = automaton.accepts(successor)
                    if deliver or gates:
                        # Attribute nodes claim the ids after their element.
                        self._fire(core, deliver, gates, node_id + 1 + index,
                                   depth + 1, False, name, attr_value, True)
        else:
            if top == dead:
                return
            state = automaton.text_successor(top, core.stats)
            if state == dead:
                return
            deliver, gates = automaton.accepts(state)
            if deliver or gates:
                self._fire(core, deliver, gates, node_id, depth, False, None,
                           value, False)
            if self._windows:
                # Text anchors have no close event: their windows arm at
                # the text event itself, into the enclosing element entry.
                sib, fol = automaton.arms(state)
                if sib or fol:
                    self._arm(core, sib, fol)

    def on_close(self, core) -> None:
        stack = self.stack
        if not stack:
            return
        if not self._windows:
            stack.pop()
            return
        automaton = self.automaton
        # Resync *before* consuming the closing entry's id: a co-tenant's
        # flush since the last event would have invalidated it.
        if automaton.maybe_flush(core.stats) or self.epoch != automaton.epoch:
            self._resync(core)
        closed = stack.pop()
        self.sets.pop()
        if not stack:
            return
        sib, fol = automaton.arms(closed)
        if sib or fol or self._armed:
            self._arm(core, sib, fol)

    def rewind(self) -> None:
        self.stack = []
        self.sets = []
        self._armed = frozenset()

    def _fire(self, core, deliver, gates, node_id: int, depth: int,
              is_element: bool, tag, value, is_attribute: bool) -> None:
        """Deliver DFA accepts and open qualifier gates at the current node.

        Everything converges on ``core.add_candidate`` — pure structural
        accepts directly, gated members once their remaining expectation
        steps resolve — which is also where substream capture windows open
        (:meth:`~repro.streaming.matcher.MatcherCore._capture_candidate`).
        DFA-accepted structural members therefore start their captures at
        the accepting element's own StartElement, exactly like trie
        terminals on the expectation backend: ``on_node`` runs inside the
        core's ``_start_node``, before the event reaches the shared tee.
        """
        sink_of = self._sink_of
        for ordinal in deliver:
            core.add_candidate(sink_of(ordinal), node_id, depth, is_element,
                               value, (), collect_values=False)
        for gate in gates:
            sink = sink_of(gate.ordinal)
            if sink.satisfied:
                # Verdict already fixed (exists-only sink): the gate's
                # conditions and expectations could change nothing.
                continue
            conditions = ()
            if gate.qualifiers:
                conditions = tuple(
                    core._build_condition(qualifier, node_id, depth,
                                          is_element, tag, value,
                                          is_attribute)
                    for qualifier in gate.qualifiers)
            if gate.remaining:
                core.spawn_steps(gate.remaining, anchor_id=node_id,
                                 anchor_depth=depth,
                                 anchor_is_element=is_element,
                                 anchor_tag=tag, anchor_value=value,
                                 conditions=conditions, sink=sink,
                                 collect_values=False,
                                 anchor_is_attribute=is_attribute)
            else:
                core.add_candidate(sink, node_id, depth, is_element, value,
                                   conditions, collect_values=False)
