"""Streaming (progressive) evaluation of reverse-axis-free paths (S11/S12).

The point of the paper's rewriting is that a location path without reverse
axes can be answered in a *single pass* over a SAX event stream, buffering
only pending candidate matches instead of the whole document.  This package
provides:

* :mod:`repro.streaming.matcher` — the single-pass matching engine,
* :mod:`repro.streaming.engine` — the multi-subscription engine: a
  :class:`SubscriptionIndex` sharing the leading steps of thousands of
  subscriptions in a prefix trie, and the :class:`MultiMatcher` advancing
  all of them in one document pass (the paper's SDI use case at scale),
* :mod:`repro.streaming.automaton` — the lazy-DFA structural dispatch
  backend (``backend="dfa"``): subscription spines compiled into one shared
  automaton, DFA states materialized lazily at match time,
* :mod:`repro.streaming.broker` — the push-mode serving layer: a
  :class:`DocumentBroker` matching a continuous feed of chunked documents
  against one compiled index through a reusable matcher session,
* :mod:`repro.streaming.evaluator` — the public ``stream_evaluate`` /
  ``stream_matches`` API and the :class:`StreamResult` record,
* :mod:`repro.streaming.dom_baseline` — the in-memory (DOM) baseline the
  paper's introduction argues against for large documents,
* :mod:`repro.streaming.buffered` — the "buffer enough of the document to
  answer reverse axes" baseline (first of the three options in Section 1),
* :mod:`repro.streaming.stats` — memory/latency accounting shared by all of
  them, used by the benchmarks of experiment E9.

Attribute extension
-------------------

Beyond the paper's fragment, the engine evaluates the attribute axis
(``//item[@id="42"]/price``, ``//item/@id``, value comparisons against
string literals) — the shapes that dominate real SDI subscription sets.
Attributes are the cheapest possible match for a streaming engine: they
arrive *complete* on the StartElement event, so attribute steps and
``[@a]`` / ``[@a = "v"]`` qualifiers are decided during that very event
(dedicated attribute buckets in the dispatch index; a per-element sweep
resolves and then expires them), need no buffering, and in verdict-only
sessions can settle a subscription — and halt the stream — at the element
that carries the attribute.  Attribute *nodes* are numbered right after
their owner element in document order, so streamed ids agree 1:1 with the
DOM evaluator's positions.

Architecture: pull vs push
--------------------------

There are two ways to get a document through the engine.

**Pull mode** — the caller owns the loop and hands the engine a finished
iterable of events: :func:`stream_evaluate` for one query,
:meth:`SubscriptionIndex.evaluate` for a whole index.  Events typically come
from :func:`repro.xmlmodel.builder.document_events` (an in-memory document)
or :func:`repro.xmlmodel.parser.iter_events` (XML text).  This is the right
entry point for one-shot evaluation and for benchmarks, where the document
is already at hand.

**Push mode** — the *data source* owns the loop and the engine is fed as
input arrives.  The pieces compose bottom-up:

* :class:`repro.xmlmodel.parser.PushTokenizer` turns arbitrarily chunked
  ``str``/``bytes`` input into events (``feed(chunk) -> [events]``,
  ``close() -> [events]``), with chunk boundaries allowed anywhere — inside
  tags, entities, comments, CDATA, even mid-UTF-8-sequence;
* every matcher is itself push-driven (``feed(event)``), so tokenizer output
  can be forwarded directly;
* :class:`DocumentBroker` packages the loop: ``submit(document_id, chunks)``
  tokenizes, matches, and returns the per-document
  :class:`MultiMatchResult`, plus aggregate stats over the feed.

Session lifecycle
-----------------

A :class:`MultiMatcher` is one *session*.  Freshly constructed it carries
compiled per-subscription state (absolute sub-path registries, the
verdict-mode branch countdowns) and no stream state.  ``feed`` accumulates
stream state; ``EndDocument`` (or an early :meth:`~matcher.MatcherCore.halt`
in verdict-only mode, once every subscription's verdict is decided —
``stats.events_skipped`` counts what was never consumed) finishes the
session: results become readable and every expectation registry is torn
down.  :meth:`~matcher.MatcherCore.reset` then rewinds the session to serve
the next document *without* re-running the constructor's per-subscription
setup — between documents all engine-internal registries are empty
(:meth:`~matcher.MatcherCore.registry_sizes`), so nothing leaks from one
document into the next.

Delivery modes: verdict, node ids, substream
--------------------------------------------

*What* a decided match delivers is the emission layer
(:mod:`repro.streaming.delivery`), pluggable everywhere a matcher is made
(:meth:`SubscriptionIndex.matcher`/``evaluate``, :class:`DocumentBroker`)
via ``delivery=``:

* **verdict** (:class:`~repro.streaming.delivery.VerdictDelivery`, or the
  legacy ``matches_only=True``) — per-subscription booleans.  Cheapest;
  admits early termination: the session halts once every verdict is fixed.
* **ids** (:class:`~repro.streaming.delivery.NodeIdDelivery`, the default)
  — sorted matched node ids per subscription, agreeing 1:1 with the DOM
  evaluator's document-order positions.
* **substream** (:class:`~repro.streaming.delivery.SubstreamDelivery`) —
  the matched *content*: each match re-emits its subtree's events,
  re-serialized to XML bytes by :mod:`repro.xmlmodel.stream_serialize`.
  This is what turns the engine into a content-based router (Genshi's
  ``Path.select()`` shape).  Capture runs as a shared single-pass tee:
  overlapping and nested matches — across *all* subscriptions — share one
  capture buffer by reference, rendering of a shared subtree happens once,
  and while no capture window is open the tee costs nothing, so verdict
  and id modes are completely unaffected.  Payload routing is per
  subscription: a streaming ``on_payload(key, node_id, data)`` callback
  (fires as each window closes), or buffered bytes on
  ``SubscriptionResult.payload``.  ``StreamStats.subtrees_emitted`` /
  ``bytes_emitted`` count what crossed the boundary.

Backends: expectation engine vs lazy DFA
----------------------------------------

Every matching entry point — :class:`StreamingMatcher`,
:meth:`SubscriptionIndex.matcher`/``evaluate``, :class:`DocumentBroker`,
:func:`stream_evaluate` — takes ``backend="expectations" | "dfa"``
(``None`` defers to the ``REPRO_STREAMING_BACKEND`` environment variable,
then to the default ``"dfa"``).  Both backends are exact: the three-way
differential suite pins DFA == expectations == DOM on every generated
document/query pool.

``"dfa"`` (the default) compiles each subscription's structural spine —
``self``/``child``/``descendant``/``descendant-or-self``/``attribute``
steps, plus ``following-sibling``/``following`` steps as close-event-armed
*sibling windows* — into NFA fragments merged trie-style into one shared
automaton and materializes DFA states lazily: once the transition table
is warm a StartElement costs one dictionary lookup plus a stack push,
*independent of the number of subscriptions*.  Structurally decided
subscriptions (no qualifiers) are answered by DFA accept sets alone;
qualifier-carrying ones run the expectation machinery only past a DFA
*gate* — i.e. only on structurally-viable elements.  Memory is bounded on
both axes: the transition table holds at most
``SubscriptionIndex(dfa_transition_cap=...)`` entries (default 65536,
FIFO eviction with on-the-fly subset construction past it —
``StreamStats.transition_cache_evictions``), and the materialized state
set itself is flushed and lazily rebuilt when it outgrows the same bound
(``StreamStats.transition_cache_flushed``) — so even a feed of documents
with ever-new tag combinations cannot grow the automaton without limit.
A broker session keeps the warmed table across documents, which is where
the ≥3x events/sec of ``benchmarks/bench_automaton_sdi.py`` comes from.

``"expectations"`` advances one live expectation per (trie node, anchor);
per-event cost scales with the expectations the event could match.  It
handles every forward axis uniformly, needs no warmup, and is the
*semantics reference*: the differential suites pin the automaton against
it, and ``REPRO_STREAMING_BACKEND=expectations`` is the opt-out when a
workload is better served without compilation (few subscriptions on
one-shot documents) or when bisecting a suspected automaton bug.

Live churn
----------

A production router cannot recompile the world every time one user
subscribes or unsubscribes, so a built :class:`SubscriptionIndex` is
*churnable* in place:

* :meth:`SubscriptionIndex.add_subscription(key, query)
  <SubscriptionIndex.add_subscription>` threads the new query into the
  existing structures incrementally — prefix-trie branches are inserted in
  place, and the new NFA fragments merge into the shared automaton followed
  by a **targeted invalidation**: the epoch bumps, but only cached
  transitions whose NFA-state sets intersect the touched fragments are
  dropped (every materialized DFA state, and the state ids live runs hold,
  stay valid).  Only when the touched fragments reach more than
  ``TARGETED_FLUSH_RATIO`` of the materialized states does it fall back to
  the wholesale flush (``ChurnStats.full_flushes``).
* :meth:`SubscriptionIndex.remove_subscription(key)
  <SubscriptionIndex.remove_subscription>` is **ordinal retirement**: the
  slot stays (no ordinal shifts, so no session rebuild), its trie branches
  are unlinked, and deliveries for the ordinal are dropped at the sink
  boundary — by live sessions too, immediately, mid-document.  The dead NFA
  fragments linger until :meth:`SubscriptionIndex.vacuum` compacts them:
  automatically once retired ordinals exceed ``vacuum_ratio`` (default
  0.25) of the index, or explicitly in a maintenance window.  A vacuum
  remaps ordinals and bumps the index *generation*; existing sessions must
  then be rebuilt (the broker does this at its next checkout).
* Live sessions follow adds exactly as they follow a cache flush: the index
  *version* counter bumps on every churn operation, and
  :meth:`MultiMatcher.sync` extends a session in place — so a mid-document
  add takes effect at the next document, while removals take effect
  immediately.  :meth:`DocumentBroker.subscribe` / ``unsubscribe`` wire
  this into the serving layer between submits, for all three delivery
  modes, and are safe on a shared index (each broker syncs at its own next
  submit).  ``index.churn`` (:class:`~repro.streaming.stats.ChurnStats`)
  counts adds, removes, targeted/full flushes, and vacuums;
  ``benchmarks/bench_subscription_churn.py`` measures churn-rate vs warm
  throughput.

When to use what
----------------

Use :meth:`SubscriptionIndex.evaluate` for a handful of documents you
already hold in memory; every call builds a fresh matcher, which is simple
and stateless but pays the per-subscription setup each time.  Use a
:class:`DocumentBroker` for a *feed* — many (especially small) documents
against the same standing subscriptions, arriving as text chunks — where
session reuse amortizes that setup and verdict-only mode stops tokenizing a
document the moment its routing is decided
(``benchmarks/bench_document_broker.py`` quantifies both effects).
"""

from repro.streaming.stats import StreamStats
from repro.streaming.automaton import (
    BACKEND_ENV_VAR,
    BACKENDS,
    SubscriptionAutomaton,
    resolve_backend,
)
from repro.streaming.delivery import (
    DELIVERY_MODES,
    Delivery,
    NodeIdDelivery,
    SubstreamDelivery,
    VerdictDelivery,
    resolve_delivery,
)
from repro.streaming.evaluator import StreamResult, stream_evaluate, stream_matches
from repro.streaming.engine import (
    MultiMatcher,
    MultiMatchResult,
    Subscription,
    SubscriptionIndex,
    SubscriptionResult,
)
from repro.streaming.broker import BrokerStats, DocumentBroker, DocumentRecord
from repro.streaming.dom_baseline import dom_evaluate
from repro.streaming.buffered import buffered_evaluate

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "SubscriptionAutomaton",
    "resolve_backend",
    "DELIVERY_MODES",
    "Delivery",
    "NodeIdDelivery",
    "SubstreamDelivery",
    "VerdictDelivery",
    "resolve_delivery",
    "StreamStats",
    "StreamResult",
    "stream_evaluate",
    "stream_matches",
    "Subscription",
    "SubscriptionIndex",
    "SubscriptionResult",
    "MultiMatcher",
    "MultiMatchResult",
    "BrokerStats",
    "DocumentBroker",
    "DocumentRecord",
    "dom_evaluate",
    "buffered_evaluate",
]
