"""Streaming (progressive) evaluation of reverse-axis-free paths (S11/S12).

The point of the paper's rewriting is that a location path without reverse
axes can be answered in a *single pass* over a SAX event stream, buffering
only pending candidate matches instead of the whole document.  This package
provides:

* :mod:`repro.streaming.matcher` — the single-pass matching engine,
* :mod:`repro.streaming.engine` — the multi-subscription engine: a
  :class:`SubscriptionIndex` sharing the leading steps of thousands of
  subscriptions in a prefix trie, and the :class:`MultiMatcher` advancing
  all of them in one document pass (the paper's SDI use case at scale),
* :mod:`repro.streaming.evaluator` — the public ``stream_evaluate`` /
  ``stream_matches`` API and the :class:`StreamResult` record,
* :mod:`repro.streaming.dom_baseline` — the in-memory (DOM) baseline the
  paper's introduction argues against for large documents,
* :mod:`repro.streaming.buffered` — the "buffer enough of the document to
  answer reverse axes" baseline (first of the three options in Section 1),
* :mod:`repro.streaming.stats` — memory/latency accounting shared by all of
  them, used by the benchmarks of experiment E9.
"""

from repro.streaming.stats import StreamStats
from repro.streaming.evaluator import StreamResult, stream_evaluate, stream_matches
from repro.streaming.engine import (
    MultiMatcher,
    MultiMatchResult,
    Subscription,
    SubscriptionIndex,
    SubscriptionResult,
)
from repro.streaming.dom_baseline import dom_evaluate
from repro.streaming.buffered import buffered_evaluate

__all__ = [
    "StreamStats",
    "StreamResult",
    "stream_evaluate",
    "stream_matches",
    "Subscription",
    "SubscriptionIndex",
    "SubscriptionResult",
    "MultiMatcher",
    "MultiMatchResult",
    "dom_evaluate",
    "buffered_evaluate",
]
