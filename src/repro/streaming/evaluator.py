"""Public streaming-evaluation API.

``stream_evaluate`` answers a reverse-axis-free path over an event stream in
a single pass and reports which nodes (by document-order id) were selected
together with the resource accounting of the run.  ``stream_matches`` is the
boolean variant used for selective dissemination of information (SDI): does
the document match the subscription at all?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union as TypingUnion

from repro.streaming.matcher import StreamingMatcher
from repro.streaming.stats import StreamStats
from repro.xmlmodel.events import Event
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_xpath


@dataclass
class StreamResult:
    """Outcome of a single-pass streaming evaluation."""

    node_ids: List[int]
    stats: StreamStats

    @property
    def matched(self) -> bool:
        """Whether the path selected at least one node."""
        return bool(self.node_ids)

    def __iter__(self):
        return iter(self.node_ids)

    def __len__(self) -> int:
        return len(self.node_ids)


def stream_evaluate(path: TypingUnion[str, PathExpr],
                    events: Iterable[Event],
                    backend: Optional[str] = None) -> StreamResult:
    """Evaluate a reverse-axis-free path over an event stream in one pass.

    Parameters
    ----------
    path:
        A reverse-axis-free absolute path (AST or xPath text).  Paths with
        reverse axes raise :class:`repro.errors.ReverseAxisStreamingError`;
        rewrite them first with :func:`repro.rewrite.remove_reverse_axes`.
    events:
        Any iterable of SAX-like events — from
        :func:`repro.xmlmodel.parser.iter_events` (XML text),
        :func:`repro.xmlmodel.builder.document_events` (an in-memory
        document) or a custom producer.
    backend:
        ``"dfa"`` (default) or ``"expectations"`` — the structural dispatch
        engine (see :class:`repro.streaming.matcher.StreamingMatcher`);
        ``None`` defers to the ``REPRO_STREAMING_BACKEND`` environment
        variable, then to ``"dfa"``.  The expectation engine is the
        differential-testing semantics reference.

    Returns
    -------
    StreamResult
        The selected node ids (document-order positions) and the run's
        resource statistics.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    matcher = StreamingMatcher(path, backend=backend)
    node_ids = matcher.process(events)
    return StreamResult(node_ids=node_ids, stats=matcher.stats)


def stream_matches(path: TypingUnion[str, PathExpr],
                   events: Iterable[Event],
                   backend: Optional[str] = None) -> bool:
    """Whether the document on the stream matches the path at all (SDI check)."""
    return stream_evaluate(path, events, backend=backend).matched
