"""The "buffer the past" baseline for reverse axes on streams.

Section 1 of the paper lists three ways of evaluating reverse axes in a
stream-based context; the first one is *"storing in memory sufficient
information that allows to access past events when evaluating a reverse
axis — this amounts to keeping in memory a (possibly pruned) DOM
representation of the data"*.  This module implements that option: it keeps
a **structural** copy of the document (elements and their nesting, no
character data unless value joins need it) and answers the original,
reverse-axis path against it.

Compared with the rewriting approach the memory cost is proportional to the
document size; compared with the full DOM baseline it saves the text.  The
benchmarks of experiment E9 report all three.
"""

from __future__ import annotations

from typing import Iterable, List, Union as TypingUnion

from repro.semantics.evaluator import evaluate
from repro.streaming.evaluator import StreamResult
from repro.streaming.stats import StreamStats
from repro.xmlmodel.builder import build_document
from repro.xmlmodel.events import Event, StartElement, Text
from repro.xpath import analysis
from repro.xpath.ast import NodeTestKind, PathExpr
from repro.xpath.parser import parse_xpath


def _needs_text(path: PathExpr) -> bool:
    """Whether the path mentions text nodes or value joins (then text is kept)."""
    for step in analysis.iter_steps(path):
        if step.node_test.kind in (NodeTestKind.TEXT, NodeTestKind.NODE):
            return True
    for comparison in analysis.iter_comparisons(path):
        if comparison.op == "=":
            return True
    return False


def buffered_evaluate(path: TypingUnion[str, PathExpr],
                      events: Iterable[Event]) -> StreamResult:
    """Evaluate a (possibly reverse-axis) path by buffering a pruned document.

    Text events are dropped from the buffer when the path cannot observe
    them, which is the "possibly pruned" refinement the paper mentions.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    stats = StreamStats()
    keep_text = _needs_text(path)
    buffered: List[Event] = []
    original_ids: List[int] = [0]  # pruned-document position -> original node id
    dropped_text = 0
    for event in events:
        stats.events += 1
        if isinstance(event, Text) and not keep_text:
            dropped_text += 1
            continue
        # Every event that *opens* a node claims the next pruned-document
        # position; end/document markers do not.  An element's attributes
        # claim the positions right after it, in both numberings.
        if isinstance(event, (StartElement, Text)):
            original_ids.append(event.node_id)
            if isinstance(event, StartElement):
                original_ids.extend(event.node_id + offset + 1
                                    for offset in range(len(event.attributes)))
        buffered.append(event)
    document = build_document(buffered)
    stats.nodes_seen = len(document) + dropped_text
    stats.nodes_stored = len(document)
    nodes = evaluate(path, document)
    # Map the pruned document's positions back to the original node ids so the
    # result is comparable with the streaming and DOM evaluators.
    node_ids = [original_ids[node.position] for node in nodes]
    stats.results = len(node_ids)
    return StreamResult(node_ids=node_ids, stats=stats)
