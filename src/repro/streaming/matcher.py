"""Single-pass streaming matcher for reverse-axis-free location paths.

The engine consumes a stream of SAX-like events exactly once and reports the
document-order ids of the nodes selected by a forward-only location path.
It is the kind of progressive processor the paper's conclusion announces
("we are designing and implementing a progressive XPath processor" [12]) —
a compact cousin of the authors' later SPEX system.

How it works
------------

* The engine keeps the stack of currently open elements (the only structural
  state a SAX consumer has for free).
* For every location step that still has to be matched, an *expectation*
  describes which future nodes can match it: nodes related to an *anchor*
  node (the match of the previous step) by the step's forward axis.  Because
  all axes are forward, an expectation only ever has to look at nodes whose
  start event has not arrived yet:

  ========================  =====================================================
  axis                      nodes that can still match once the anchor is known
  ========================  =====================================================
  ``self``                  the anchor itself (resolved immediately)
  ``child``                 nodes starting while the anchor is open, one level deeper
  ``descendant``            nodes starting while the anchor is open
  ``descendant-or-self``    the anchor itself plus descendants
  ``following-sibling``     nodes at the anchor's depth after the anchor closes,
                            while the anchor's parent is open
  ``following``             any node starting after the anchor closes
  ========================  =====================================================

* Live expectations are not kept in one flat list.  They are held in a
  YFilter-style *dispatch index* (:class:`_DispatchIndex`) bucketed by what
  their node test can match: an exact-tag table for named tests, plus
  wildcard, any-node and text-node buckets.  A ``StartElement(tag)`` event
  consults only the ``tag`` bucket and the two element-compatible catch-all
  buckets; a ``Text`` event only the text and any-node buckets.  Each
  consulted expectation then passes a constant-time admissibility check
  (active state plus the depth constraint of ``child``/``following-sibling``)
  before it matches — the node test itself is implied by the bucket.
  Per-event work therefore scales with the expectations that *could* match
  the event, not with all live expectations
  (``StreamStats.expectations_checked`` vs ``linear_scan_checks``).
* Lifecycle transitions are indexed by node id instead of scanned:
  expectations waiting for their anchor to close (``following`` /
  ``following-sibling``) sit in a map keyed by anchor id and enter the
  dispatch index when that exact element closes; ``child``/``descendant``
  expectations register for expiry under their anchor id; a
  ``following-sibling`` window registers under its anchor's *parent* id and
  is closed when that parent closes.  An :class:`EndElement` therefore pops
  just the affected entries.  Expectations whose continuation can no longer
  deliver anything useful (an existence sink already satisfied, a trie
  branch whose subscriptions are all settled) are unlinked *at the moment of
  satisfaction* through watcher registries rather than re-checked on every
  event.
* Qualifiers and joins become *conditions* attached to candidate matches.
  Existence qualifiers spawn sub-expectations anchored at the candidate;
  ``==`` joins collect node ids on both sides; ``=`` joins additionally
  buffer string values.  Absolute sub-paths (introduced by RuleSet1's
  rewriting) are matched once from the document root into sinks shared by
  all conditions that mention them.
* At the end of the stream every condition can be decided and the candidates
  whose conditions hold are reported.  Memory therefore scales with the
  number of *pending candidates and conditions* — not with the document —
  which is the property the benchmarks of experiment E9 measure.

Reverse axes are rejected: remove them first with
:func:`repro.rewrite.remove_reverse_axes`.

The machinery is split in two layers so that it can serve both one query and
thousands of subscriptions at once (:mod:`repro.streaming.engine`):

* :class:`MatcherCore` owns the event loop, the element stack, the
  expectation lifecycle, conditions, value collection and the shared
  absolute-sub-path sinks.  What happens when a step matches is delegated to
  a *continuation* object attached to each expectation.
* :class:`PathContinuation` is the single-query continuation: continue with
  the remaining steps of one path into one sink.  The multi-subscription
  engine plugs in a trie-based continuation instead, advancing a whole
  bundle of subscriptions that share the matched step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ReverseAxisStreamingError, StreamingError
from repro.streaming.automaton import (
    AutomatonRun,
    compile_subscription_automaton,
    resolve_backend,
)
from repro.streaming.delivery import SubtreeTee, _LeafCapture
from repro.streaming.stats import StreamStats
from repro.xmlmodel.stream_serialize import serialize_events
from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xpath import analysis
from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    Literal,
    LocationPath,
    NodeTestKind,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    iter_union_members,
    union_of,
)
from repro.xpath.axes import Axis
from repro.xpath.serializer import to_string


# ---------------------------------------------------------------------------
# Conditions: booleans decided by the end of the stream
# ---------------------------------------------------------------------------

@dataclass
class _Entry:
    """One buffered candidate produced by a sink: node id, optional value,
    and the conditions that must hold for it to count."""

    node_id: int
    conditions: Tuple["_Condition", ...]
    value: Optional[str] = None

    def holds(self) -> bool:
        return all(condition.result() for condition in self.conditions)


class _Sink:
    """Collects the final-step matches of one (sub-)path.

    Sinks that only feed an existence condition (``exists_only``) resolve
    eagerly: as soon as one match with no pending conditions arrives, the
    sink is *satisfied*, later matches are not buffered, and the engine stops
    feeding the expectations that point at it.  This keeps the memory of
    streaming evaluation proportional to the number of genuinely undecided
    candidates rather than to the number of witnesses in the document.
    """

    __slots__ = ("entries", "collect_values", "exists_only", "satisfied")

    def __init__(self, collect_values: bool = False, exists_only: bool = False):
        self.entries: List[_Entry] = []
        self.collect_values = collect_values
        self.exists_only = exists_only
        self.satisfied = False

    def add(self, entry: _Entry) -> bool:
        """Record a match; returns whether the entry had to be buffered."""
        if self.satisfied:
            return False
        if self.exists_only and not entry.conditions:
            self.satisfied = True
            self.entries.clear()
            return False
        self.entries.append(entry)
        return True

    def surviving(self) -> List[_Entry]:
        return [entry for entry in self.entries if entry.holds()]

    def nonempty(self) -> bool:
        return self.satisfied or bool(self.surviving())


#: Shared terminal sink for deliveries that must be dropped on the floor:
#: retired (unsubscribed) ordinals, and ordinals a live session does not
#: carry yet because the subscription was added mid-document (live churn —
#: see :meth:`repro.streaming.engine.MultiMatcher.sync`).  Permanently
#: satisfied and exists-only, so :meth:`_Sink.add` rejects every entry in
#: O(1), qualifier gates skip it, and no capture claim can attach (it is
#: registered in no ordinal map).
_DROPPED_SINK = _Sink(exists_only=True)
_DROPPED_SINK.satisfied = True


class _Condition:
    """Base class of deferred boolean conditions."""

    __slots__ = ()

    def result(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def known_true(self) -> bool:
        """Whether the condition is already *irrevocably* true mid-stream.

        Conservative: ``False`` just means "not decided yet".  This is what
        lets ``[@a]`` / ``[@a = "v"]`` qualifiers settle verdicts at the
        StartElement that carries the attributes — their sub-sinks are final
        the moment the per-element attribute sweep ends — instead of
        waiting for the end of the stream.
        """
        return False


class _ExistsCondition(_Condition):
    """True iff the attached sink ends up with at least one surviving entry."""

    __slots__ = ("sink",)

    def __init__(self, sink: _Sink):
        self.sink = sink

    def result(self) -> bool:
        return self.sink.nonempty()

    def known_true(self) -> bool:
        # A satisfied existence sink can never become unsatisfied.
        return self.sink.satisfied


class _FalseCondition(_Condition):
    """Constant false (e.g. a ``⊥`` qualifier)."""

    __slots__ = ()

    def result(self) -> bool:
        return False


class _TrueCondition(_Condition):
    """Constant true (e.g. a literal-to-literal comparison that holds)."""

    __slots__ = ()

    def result(self) -> bool:
        return True

    def known_true(self) -> bool:
        return True


class _ValueMatchCondition(_Condition):
    """A ``path = "literal"`` join: some surviving entry has that value.

    For attribute operands (``[@id = "42"]``) the value arrives complete on
    the StartElement event, so the sink entry's value is already final the
    moment the qualifier is built.
    """

    __slots__ = ("sink", "value")

    def __init__(self, sink: _Sink, value: str):
        self.sink = sink
        self.value = value

    def result(self) -> bool:
        return any((entry.value or "") == self.value
                   for entry in self.sink.surviving())

    def known_true(self) -> bool:
        # Entry values are final once set (attributes and text at creation,
        # elements when they close) and entries are never removed from a
        # collecting sink, so a matching entry whose own conditions are
        # irrevocable decides the comparison for good.
        return any(
            entry.value is not None and entry.value == self.value
            and all(condition.known_true()
                    for condition in entry.conditions)
            for entry in self.sink.entries)


class _AndCondition(_Condition):
    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[_Condition]):
        self.parts = tuple(parts)

    def result(self) -> bool:
        return all(part.result() for part in self.parts)

    def known_true(self) -> bool:
        return all(part.known_true() for part in self.parts)


class _OrCondition(_Condition):
    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[_Condition]):
        self.parts = tuple(parts)

    def result(self) -> bool:
        return any(part.result() for part in self.parts)

    def known_true(self) -> bool:
        return any(part.known_true() for part in self.parts)


class _JoinCondition(_Condition):
    """A join ``left θ right``: node identity (``==``) or value equality (``=``)."""

    __slots__ = ("left", "right", "op")

    def __init__(self, left: _Sink, right: _Sink, op: str):
        self.left = left
        self.right = right
        self.op = op

    def result(self) -> bool:
        left_entries = self.left.surviving()
        right_entries = self.right.surviving()
        if not left_entries or not right_entries:
            return False
        if self.op == "==":
            left_ids = {entry.node_id for entry in left_entries}
            right_ids = {entry.node_id for entry in right_entries}
            return bool(left_ids & right_ids)
        left_values = {entry.value or "" for entry in left_entries}
        right_values = {entry.value or "" for entry in right_entries}
        return bool(left_values & right_values)


# ---------------------------------------------------------------------------
# Expectations: pending step matches
# ---------------------------------------------------------------------------

#: Expectation lifecycle: waiting for the anchor to close (sibling/following
#: axes), actively matching, or expired.
_WAITING, _ACTIVE, _EXPIRED = "waiting", "active", "expired"


class _Expectation:
    """Waiting for future nodes related to ``anchor`` by ``step.axis``.

    What to do with a matching node is delegated to ``cont``, a continuation
    object (:class:`PathContinuation` or the trie continuation of
    :mod:`repro.streaming.engine`).

    ``serial`` is the engine-wide spawn ordinal, used as the key under which
    the expectation is linked into the dispatch index (``bucket``) and at
    most one watcher registry (``watch``); both links are severed in O(1)
    when the expectation expires.
    """

    __slots__ = ("step", "cont", "anchor_id", "anchor_depth",
                 "conditions", "state", "serial", "bucket", "watch")

    def __init__(self, step: Step, cont: "Continuation", anchor_id: int,
                 anchor_depth: int, conditions: Tuple[_Condition, ...],
                 state: str, serial: int = 0):
        self.step = step
        self.cont = cont
        self.anchor_id = anchor_id
        self.anchor_depth = anchor_depth
        self.conditions = conditions
        self.state = state
        self.serial = serial
        self.bucket: Optional[Dict[int, "_Expectation"]] = None
        self.watch: Optional[Dict[int, "_Expectation"]] = None

    def admissible(self, depth: int) -> bool:
        """State/depth check for a node whose test the bucket already implies."""
        if self.state is not _ACTIVE:
            return False
        axis = self.step.axis
        if axis is Axis.CHILD:
            return depth == self.anchor_depth + 1
        if axis is Axis.FOLLOWING_SIBLING:
            return depth == self.anchor_depth
        # DESCENDANT / DESCENDANT_OR_SELF / FOLLOWING match any depth in the
        # active window.
        return True

    def matches(self, depth: int, is_element: bool, tag: Optional[str],
                is_attribute: bool = False) -> bool:
        return (self.admissible(depth)
                and _test_matches(self.step, is_element, tag, is_attribute))


def _test_matches(step: Step, is_element: bool, tag: Optional[str],
                  is_attribute: bool = False) -> bool:
    kind = step.node_test.kind
    if kind is NodeTestKind.ATTRIBUTE:
        return is_attribute and (step.node_test.name is None
                                 or tag == step.node_test.name)
    if kind is NodeTestKind.NODE:
        return True
    if is_attribute:
        # Attribute nodes satisfy only attribute tests and node().
        return False
    if kind is NodeTestKind.TEXT:
        return not is_element
    if kind is NodeTestKind.WILDCARD:
        return is_element
    return is_element and tag == step.node_test.name


class _DispatchIndex:
    """Active expectations bucketed by what their node test can match.

    Buckets are insertion-ordered dicts keyed by expectation serial, so
    removal (expiry) is O(1) and iteration preserves spawn order.  With
    ``indexed=False`` every expectation lands in the catch-all bucket and the
    caller re-applies the node test per event — the faithful linear-scan
    reference the benchmarks compare against.

    Attribute-test expectations get buckets of their own (exact-name table
    plus an ``@*`` bucket), consulted only by the per-element attribute sweep
    — never by element or text dispatch — so attribute-heavy subscription
    sets keep constant-time dispatch.  They are name-bucketed even in
    ``indexed=False`` mode: the linear-scan reference predates the attribute
    extension and its counterfactual is defined over tree-node events.
    """

    __slots__ = ("indexed", "by_tag", "wildcard", "any_node", "text",
                 "by_attr", "attr_wildcard")

    def __init__(self, indexed: bool = True):
        self.indexed = indexed
        #: tag -> {serial: expectation} for named node tests.
        self.by_tag: Dict[str, Dict[int, _Expectation]] = {}
        #: ``*`` tests: any element.
        self.wildcard: Dict[int, _Expectation] = {}
        #: ``node()`` tests: any node (elements and text).
        self.any_node: Dict[int, _Expectation] = {}
        #: ``text()`` tests: text nodes only.
        self.text: Dict[int, _Expectation] = {}
        #: attribute name -> {serial: expectation} for ``@name`` tests.
        self.by_attr: Dict[str, Dict[int, _Expectation]] = {}
        #: ``@*`` tests: any attribute.
        self.attr_wildcard: Dict[int, _Expectation] = {}

    def insert(self, expectation: _Expectation) -> None:
        kind = expectation.step.node_test.kind
        if kind is NodeTestKind.ATTRIBUTE:
            name = expectation.step.node_test.name
            if name is None:
                bucket = self.attr_wildcard
            else:
                bucket = self.by_attr.get(name)
                if bucket is None:
                    bucket = self.by_attr[name] = {}
        elif not self.indexed:
            bucket = self.any_node
        elif kind is NodeTestKind.NODE:
            bucket = self.any_node
        elif kind is NodeTestKind.TEXT:
            bucket = self.text
        elif kind is NodeTestKind.WILDCARD:
            bucket = self.wildcard
        else:
            name = expectation.step.node_test.name
            bucket = self.by_tag.get(name)
            if bucket is None:
                bucket = self.by_tag[name] = {}
        bucket[expectation.serial] = expectation
        expectation.bucket = bucket

    def element_candidates(self, tag: Optional[str]) -> List[_Expectation]:
        """Snapshot of the expectations a ``StartElement(tag)`` can match."""
        exact = self.by_tag.get(tag)
        candidates: List[_Expectation] = list(exact.values()) if exact else []
        if self.wildcard:
            candidates.extend(self.wildcard.values())
        if self.any_node:
            candidates.extend(self.any_node.values())
        return candidates

    def text_candidates(self) -> List[_Expectation]:
        """Snapshot of the expectations a ``Text`` event can match."""
        candidates: List[_Expectation] = list(self.text.values())
        if self.any_node:
            candidates.extend(self.any_node.values())
        return candidates

    def attribute_candidates(self, name: str) -> List[_Expectation]:
        """Snapshot of the expectations an attribute ``name`` can match."""
        exact = self.by_attr.get(name)
        candidates: List[_Expectation] = list(exact.values()) if exact else []
        if self.attr_wildcard:
            candidates.extend(self.attr_wildcard.values())
        return candidates

    @property
    def has_attribute_expectations(self) -> bool:
        return bool(self.by_attr or self.attr_wildcard)

    def attribute_expectations(self) -> List[_Expectation]:
        """Snapshot of every live attribute expectation (for expiry)."""
        out: List[_Expectation] = []
        for bucket in self.by_attr.values():
            out.extend(bucket.values())
        out.extend(self.attr_wildcard.values())
        return out

    def iter_all(self):
        for bucket in self.by_tag.values():
            yield from bucket.values()
        yield from self.wildcard.values()
        yield from self.any_node.values()
        yield from self.text.values()
        for bucket in self.by_attr.values():
            yield from bucket.values()
        yield from self.attr_wildcard.values()

    def clear(self) -> None:
        self.by_tag = {}
        self.wildcard = {}
        self.any_node = {}
        self.text = {}
        self.by_attr = {}
        self.attr_wildcard = {}


class _ValueCollector:
    """Accumulates the string value of a matched element for ``=`` joins."""

    __slots__ = ("entry", "anchor_depth", "parts")

    def __init__(self, entry: _Entry, anchor_depth: int):
        self.entry = entry
        self.anchor_depth = anchor_depth
        self.parts: List[str] = []


# ---------------------------------------------------------------------------
# Continuations: what happens after a step matches
# ---------------------------------------------------------------------------

class Continuation:
    """Protocol for expectation continuations.

    ``dead(core)`` reports whether the expectation can be dropped because no
    downstream consumer is still interested (e.g. an existence sink already
    satisfied); it is consulted once at spawn time.  ``register(core,
    expectation)`` links a freshly spawned expectation into whatever watcher
    registry can later kill it, so that satisfaction unlinks it immediately
    instead of the engine re-checking ``dead`` on every event.
    ``proceed(core, ...)`` consumes a matched node *after* the step's
    qualifiers have been turned into conditions.
    """

    __slots__ = ()

    def dead(self, core: "MatcherCore") -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def register(self, core: "MatcherCore",
                 expectation: _Expectation) -> None:
        """Default: liveness never changes, nothing to watch."""

    def proceed(self, core: "MatcherCore", node_id: int, depth: int,
                is_element: bool, tag: Optional[str], value: Optional[str],
                conditions: Tuple[_Condition, ...],
                is_attribute: bool = False) -> None:  # pragma: no cover
        raise NotImplementedError


class PathContinuation(Continuation):
    """Continue one path: match the remaining steps, then feed one sink."""

    __slots__ = ("remaining", "sink", "collect_values")

    def __init__(self, remaining: Tuple[Step, ...], sink: _Sink,
                 collect_values: bool):
        self.remaining = remaining
        self.sink = sink
        self.collect_values = collect_values

    def dead(self, core: "MatcherCore") -> bool:
        return self.sink.satisfied

    def register(self, core: "MatcherCore",
                 expectation: _Expectation) -> None:
        # Only an existence sink can ever flip to satisfied mid-stream; a
        # collecting sink keeps accepting entries until the end.
        if self.sink.exists_only:
            core.watch_sink(self.sink, expectation)

    def proceed(self, core: "MatcherCore", node_id: int, depth: int,
                is_element: bool, tag: Optional[str], value: Optional[str],
                conditions: Tuple[_Condition, ...],
                is_attribute: bool = False) -> None:
        if self.remaining:
            core.spawn_steps(self.remaining, anchor_id=node_id,
                             anchor_depth=depth, anchor_is_element=is_element,
                             anchor_tag=tag, anchor_value=value,
                             conditions=conditions, sink=self.sink,
                             collect_values=self.collect_values,
                             anchor_is_attribute=is_attribute)
            return
        core.add_candidate(self.sink, node_id, depth, is_element, value,
                           conditions, self.collect_values)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

@dataclass
class _OpenElement:
    node_id: int
    tag: Optional[str]
    depth: int


class MatcherCore:
    """Shared single-pass matching machinery.

    Owns the element stack, the expectation lifecycle, condition building,
    value collection and the shared absolute-sub-path sinks.  Subclasses
    decide what is spawned at the document root (one path for
    :class:`StreamingMatcher`, a subscription trie for
    :class:`repro.streaming.engine.MultiMatcher`) and how results are read
    out.
    """

    def __init__(self, indexed: bool = True) -> None:
        self.stats = StreamStats()
        self._indexed = indexed
        #: Lazy-DFA structural dispatch (``backend="dfa"``): set by
        #: subclasses to an :class:`~repro.streaming.automaton.AutomatonRun`;
        #: ``None`` keeps the pure expectation engine.
        self._automaton_run: Optional[AutomatonRun] = None
        self._stack: List[_OpenElement] = []
        #: Active expectations, bucketed by node test.
        self._dispatch = _DispatchIndex(indexed=indexed)
        #: ``following``/``following-sibling`` expectations waiting for their
        #: anchor element to close, keyed by anchor node id.
        self._waiting_by_anchor: Dict[int, List[_Expectation]] = {}
        #: ``child``/``descendant``/``descendant-or-self`` expectations keyed
        #: by the anchor whose close event expires them.
        self._expiry_by_anchor: Dict[int, List[_Expectation]] = {}
        #: ``following-sibling`` expectations keyed by the anchor's *parent*,
        #: whose close event shuts the sibling window.
        self._sibling_expiry_by_parent: Dict[int, List[_Expectation]] = {}
        #: Expectations to unlink the moment an existence sink satisfies.
        self._sink_watchers: Dict[_Sink, Dict[int, _Expectation]] = {}
        #: Conditioned existence-sink entries delivered during the current
        #: event; re-examined once the event (and its attribute sweep) is
        #: complete, so qualifiers decidable *at* StartElement — ``[@a]``,
        #: ``[@a = "v"]`` — settle verdicts without waiting for the stream.
        self._event_entries: List[Tuple[_Sink, _Entry]] = []
        #: Waiting + active expectations (expired ones are unlinked eagerly).
        self._live = 0
        self._serial = 0
        #: Pending element string-value collectors, keyed by the element
        #: whose close event finalizes them.
        self._collectors_by_node: Dict[int, List[_ValueCollector]] = {}
        self._absolute_sinks: Dict[PathExpr, _Sink] = {}
        self._absolute_value_sinks: Dict[PathExpr, _Sink] = {}
        #: Substream delivery (see :mod:`repro.streaming.delivery`): the
        #: shared single-pass tee, or ``None`` outside substream mode — the
        #: feed loop's only added cost in verdict/ids modes is this check.
        #: Set by subclasses that support capture (MultiMatcher).
        self._tee: Optional[SubtreeTee] = None
        #: Element matches recorded during the current StartElement's
        #: processing; handed to the tee as that element's capture claims.
        self._pending_claims: List[Tuple[int, _Entry]] = []
        #: Root ("/") matches recorded while spawning at StartDocument.
        self._document_claims: List[Tuple[int, _Entry]] = []
        #: Closed captures whose conditions were still undecided at window
        #: close; settled (``entry.holds()``) when results are read.
        self._deferred_captures: List[object] = []
        self._finished = False
        self._halted = False

    # -- setup -----------------------------------------------------------
    def _register_absolute_subpaths(self, expr: PathExpr) -> None:
        """Find absolute sub-paths used inside qualifiers and joins.

        They must be matched from the document root over the *whole* stream
        (a candidate discovered mid-stream could not see earlier matches), so
        they are registered once and shared by every condition that mentions
        them.
        """
        for member in iter_union_members(expr):
            if isinstance(member, Bottom):
                continue
            if not isinstance(member, LocationPath):
                continue
            for step in member.steps:
                for qual in step.qualifiers:
                    self._register_absolute_in_qualifier(qual)

    def _register_absolute_in_qualifier(self, qual: Qualifier) -> None:
        if isinstance(qual, PathQualifier):
            self._register_absolute_operand(qual.path, collect_values=False)
        elif isinstance(qual, (AndExpr, OrExpr)):
            self._register_absolute_in_qualifier(qual.left)
            self._register_absolute_in_qualifier(qual.right)
        elif isinstance(qual, Comparison):
            collect = qual.op == "="
            self._register_absolute_operand(qual.left, collect_values=collect)
            self._register_absolute_operand(qual.right, collect_values=collect)

    def _register_absolute_operand(self, operand: PathExpr,
                                   collect_values: bool) -> None:
        if isinstance(operand, Literal):
            # Literals are constants, not matched sub-paths.
            return
        if not analysis.is_absolute(operand):
            # A relative operand is matched from its carrier when the carrier
            # is discovered; but it may itself mention absolute sub-paths in
            # its own qualifiers.
            for member in iter_union_members(operand):
                if isinstance(member, LocationPath):
                    for step in member.steps:
                        for qual in step.qualifiers:
                            self._register_absolute_in_qualifier(qual)
            return
        registry = (self._absolute_value_sinks if collect_values
                    else self._absolute_sinks)
        if operand in registry:
            return
        registry[operand] = _Sink(collect_values=collect_values)
        # Absolute sub-paths can themselves mention further absolute paths.
        self._register_absolute_subpaths(operand)

    def _absolute_sink(self, operand: PathExpr, collect_values: bool) -> _Sink:
        registry = (self._absolute_value_sinks if collect_values
                    else self._absolute_sinks)
        return registry[operand]

    # -- event loop --------------------------------------------------------
    def process(self, events: Iterable[Event]):
        """Consume the event stream and return :meth:`results`.

        Stops pulling from the stream as soon as the matcher :meth:`halt`\\ s
        (a verdict-only session whose subscriptions are all decided).  When
        the source has a known length the events left unread are recorded in
        ``stats.events_skipped``.
        """
        consumed = 0
        for event in events:
            consumed += 1
            self.feed(event)
            if self._halted:
                break
        if self._halted and hasattr(events, "__len__"):
            self.stats.events_skipped += len(events) - consumed
        return self.results()

    def feed(self, event: Event) -> None:
        """Consume one event (a no-op counted as skipped once halted)."""
        if self._halted:
            self.stats.events_skipped += 1
            return
        self.stats.events += 1
        if isinstance(event, StartDocument):
            self._start_document(event)
        elif isinstance(event, StartElement):
            self._start_node(event.node_id, True, event.tag, None,
                             event.attributes)
            if self._tee is not None:
                # Every element match fires during its own StartElement
                # processing (trie terminal, DFA accept, gate remainder,
                # self axis), so the claims recorded just now belong to
                # exactly this element: open their capture windows before
                # the event enters the shared buffer.
                claims = self._pending_claims
                if claims:
                    self._pending_claims = []
                self._tee.element_start(event, claims)
            self._stack.append(_OpenElement(event.node_id, event.tag,
                                            len(self._stack)))
            # Element nesting depth, not counting the document root entry.
            self.stats.max_depth = max(self.stats.max_depth, len(self._stack) - 1)
        elif isinstance(event, Text):
            self._start_node(event.node_id, False, None, event.value)
            if self._tee is not None:
                self._tee.text(event)
            if self._collectors_by_node:
                for collectors in self._collectors_by_node.values():
                    for collector in collectors:
                        collector.parts.append(event.value)
                        self.stats.buffered_value_chars += len(event.value)
        elif isinstance(event, EndElement):
            self._end_node()
            if self._tee is not None:
                # Close after _end_node so value collectors anchored at this
                # element are finalized before emission decisions are made.
                for capture in self._tee.element_end(event):
                    self._capture_closed(capture)
        elif isinstance(event, EndDocument):
            self._finish()
        else:  # pragma: no cover - defensive
            raise StreamingError(f"unknown event {event!r}")
        if not self._finished and self._should_halt():
            self.halt()

    # -- internals ---------------------------------------------------------
    def _spawn_roots(self, root_id: int) -> None:  # pragma: no cover - abstract
        """Spawn whatever this matcher evaluates, anchored at the root."""
        raise NotImplementedError

    def _start_document(self, event: StartDocument) -> None:
        self._stack = [_OpenElement(event.node_id, None, 0)]
        self.stats.nodes_seen += 1
        self._spawn_roots(event.node_id)
        if self._automaton_run is not None:
            self._automaton_run.on_document_start(self, event.node_id)
        # Spawn the shared absolute sub-paths.
        for registry in (self._absolute_sinks, self._absolute_value_sinks):
            for operand, sink in registry.items():
                self.spawn_root_expr(operand, sink, sink.collect_values,
                                     event.node_id)
        if self._tee is not None and self._document_claims:
            # Root ("/") matches span the whole document: their windows open
            # now and close at EndDocument (_finish).
            claims = self._document_claims
            self._document_claims = []
            self._tee.open_document(event.node_id, claims)

    def spawn_root_expr(self, expr: PathExpr, sink: _Sink,
                        collect_values: bool, root_id: int) -> None:
        """Spawn every union member of an absolute expression from the root."""
        for member in iter_union_members(expr):
            if isinstance(member, Bottom):
                continue
            if not isinstance(member, LocationPath) or not member.absolute:
                raise StreamingError(
                    "the streaming evaluator expects absolute paths "
                    f"(got {to_string(member)})")
            if not member.steps:
                # The path "/" selects the root itself.
                was_satisfied = sink.satisfied
                entry = _Entry(node_id=root_id, conditions=())
                if sink.add(entry) and sink.collect_values:
                    # As a value-join operand the root contributes the whole
                    # document's text (finalized at end of stream).
                    self._collectors_by_node.setdefault(root_id, []).append(
                        _ValueCollector(entry, 0))
                if sink.satisfied and not was_satisfied:
                    self._sink_satisfied(sink)
                continue
            self.spawn_steps(member.steps, anchor_id=root_id,
                             anchor_depth=0, anchor_is_element=False,
                             anchor_tag=None, anchor_value=None,
                             conditions=(), sink=sink,
                             collect_values=collect_values)

    def _start_node(self, node_id: int, is_element: bool, tag: Optional[str],
                    value: Optional[str],
                    attributes: Tuple[Tuple[str, str], ...] = ()) -> None:
        stats = self.stats
        stats.nodes_seen += 1
        stats.linear_scan_checks += self._live
        depth = len(self._stack)
        # Snapshot the reachable buckets *before* matching: matching may spawn
        # new expectations, which must not be matched against the node that
        # created them.
        if is_element:
            candidates = self._dispatch.element_candidates(tag)
        else:
            candidates = self._dispatch.text_candidates()
        if candidates:
            stats.expectations_checked += len(candidates)
            indexed = self._indexed
            for expectation in candidates:
                if indexed:
                    # The bucket implies the node test; check state and depth.
                    if not expectation.admissible(depth):
                        continue
                elif not expectation.matches(depth, is_element, tag):
                    continue
                self._node_matched(expectation.step, expectation.cont,
                                   node_id, depth, is_element, tag, value,
                                   expectation.conditions)
        if self._automaton_run is not None:
            # Structural dispatch: decided deliveries plus qualifier gates,
            # which may spawn expectations anchored at this very node —
            # including attribute expectations, resolved by the sweep below.
            self._automaton_run.on_node(self, node_id, depth, is_element,
                                        tag, value, attributes)
        if is_element and (attributes
                           or self._dispatch.has_attribute_expectations):
            self._attribute_sweep(node_id, depth, attributes)
        if self._event_entries:
            self._settle_event_conditions()

    def _settle_event_conditions(self) -> None:
        """Satisfy existence sinks whose entry conditions are already final.

        Runs at the end of every node event, after the attribute sweep:
        attribute sub-sinks cannot change after it, so a candidate guarded
        only by attribute qualifiers (or other already-irrevocable
        conditions) decides its sink — and, in verdict-only sessions, its
        subscription — right here.
        """
        entries = self._event_entries
        self._event_entries = []
        for sink, entry in entries:
            if sink.satisfied:
                continue
            if all(condition.known_true() for condition in entry.conditions):
                sink.satisfied = True
                sink.entries.clear()
                self._sink_satisfied(sink)

    def _attribute_sweep(self, node_id: int, depth: int,
                         attributes: Tuple[Tuple[str, str], ...]) -> None:
        """Visit the element's attribute nodes, then close the window.

        Attribute expectations are spawned while their anchor element is
        being processed (step matching above) and can only ever match that
        element's own attributes, which are all present on its start event —
        so they are resolved here, eagerly, and whatever is left expires
        before the event ends.  ``[@a]`` existence qualifiers and
        ``[@a = "v"]`` value joins are therefore decided *at* StartElement;
        nothing attribute-related survives into later events.
        """
        dispatch = self._dispatch
        stats = self.stats
        for index, (name, value) in enumerate(attributes):
            stats.nodes_seen += 1
            stats.attributes_seen += 1
            if not dispatch.has_attribute_expectations:
                continue
            stats.linear_scan_checks += self._live
            candidates = dispatch.attribute_candidates(name)
            if not candidates:
                continue
            stats.expectations_checked += len(candidates)
            # Attribute nodes claim the ids right after their element.
            attribute_id = node_id + 1 + index
            for expectation in candidates:
                if (expectation.state is not _ACTIVE
                        or expectation.anchor_id != node_id):
                    continue
                self._node_matched(expectation.step, expectation.cont,
                                   attribute_id, depth + 1, False, name,
                                   value, expectation.conditions,
                                   is_attribute=True)
        if dispatch.has_attribute_expectations:
            for expectation in dispatch.attribute_expectations():
                self._expire(expectation)

    def _end_node(self) -> None:
        closed = self._stack.pop()
        node_id = closed.node_id
        if self._automaton_run is not None:
            self._automaton_run.on_close(self)
        # Open the window of following/following-sibling expectations that
        # were waiting for exactly this element to close.
        waiting = self._waiting_by_anchor.pop(node_id, None)
        if waiting is not None:
            for expectation in waiting:
                if expectation.state is _WAITING:
                    expectation.state = _ACTIVE
                    self._dispatch.insert(expectation)
        # Expire child/descendant expectations anchored at the closed element.
        expiring = self._expiry_by_anchor.pop(node_id, None)
        if expiring is not None:
            for expectation in expiring:
                self._expire(expectation)
        # A following-sibling window closes when the siblings' parent closes;
        # the entries are keyed by that parent's id, so this pops exactly the
        # affected expectations (the depth comparison the linear scan needed
        # is implied by the key).
        siblings = self._sibling_expiry_by_parent.pop(node_id, None)
        if siblings is not None:
            for expectation in siblings:
                self._expire(expectation)
        # Finalize value collectors anchored at the closed element.
        collectors = self._collectors_by_node.pop(node_id, None)
        if collectors is not None:
            for collector in collectors:
                collector.entry.value = "".join(collector.parts)

    def _expire(self, expectation: _Expectation) -> None:
        """Retire an expectation, unlinking it from index and watchers."""
        if expectation.state is _EXPIRED:
            return
        expectation.state = _EXPIRED
        self._live -= 1
        bucket = expectation.bucket
        if bucket is not None:
            bucket.pop(expectation.serial, None)
            expectation.bucket = None
        watch = expectation.watch
        if watch is not None:
            watch.pop(expectation.serial, None)
            expectation.watch = None

    def watch_sink(self, sink: _Sink, expectation: _Expectation) -> None:
        """Expire ``expectation`` the moment ``sink`` becomes satisfied."""
        table = self._sink_watchers.setdefault(sink, {})
        table[expectation.serial] = expectation
        expectation.watch = table

    def _sink_satisfied(self, sink: _Sink) -> None:
        """``sink`` just flipped to satisfied: unlink everything feeding it."""
        table = self._sink_watchers.pop(sink, None)
        if table:
            for expectation in list(table.values()):
                self._expire(expectation)

    def live_expectations(self) -> List[_Expectation]:
        """Snapshot of all waiting + active expectations (diagnostics)."""
        live = [expectation
                for waiting in self._waiting_by_anchor.values()
                for expectation in waiting
                if expectation.state is _WAITING]
        live.extend(self._dispatch.iter_all())
        return live

    def _clear_stream_state(self) -> None:
        """Tear down every per-document expectation registry.

        Shared by :meth:`_finish` and :meth:`reset` so the two can never
        drift apart — a registry cleared at end of stream is also cleared
        between documents of a reused session.
        """
        self._stack = []
        self._dispatch.clear()
        self._waiting_by_anchor = {}
        self._expiry_by_anchor = {}
        self._sibling_expiry_by_parent = {}
        self._sink_watchers = {}
        self._event_entries = []
        self._live = 0
        if self._automaton_run is not None:
            self._automaton_run.rewind()
        if self._tee is not None:
            self._tee.rewind()
        self._pending_claims = []
        self._document_claims = []

    def _finish(self) -> None:
        self._finished = True
        for collectors in self._collectors_by_node.values():
            for collector in collectors:
                collector.entry.value = "".join(collector.parts)
        self._collectors_by_node = {}
        if self._tee is not None:
            # Close whole-document windows before the tee is rewound — after
            # the collector pass above, so root string values are final.
            for capture in self._tee.finish():
                self._capture_closed(capture)
        self._clear_stream_state()

    # -- session control ---------------------------------------------------
    def _should_halt(self) -> bool:
        """Whether the rest of the stream can no longer change any result.

        Consulted after every event; the default matcher never halts (a
        collecting sink accepts matches to the very end).  Verdict-only
        subclasses override this.
        """
        return False

    def halt(self) -> None:
        """Stop consuming the stream early: results are already decided.

        The expectation registries are torn down exactly as at end of
        stream, :meth:`results` becomes readable, and any further
        :meth:`feed` is a no-op counted in ``stats.events_skipped``.
        """
        if not self._finished:
            self._finish()
        self._halted = True

    @property
    def halted(self) -> bool:
        """Whether the matcher stopped consuming events before end of stream."""
        return self._halted

    def reset(self) -> None:
        """Clear all per-document stream state so the matcher can be reused.

        This is the resumable-session path: one matcher instance serves a
        whole feed of documents (see
        :class:`repro.streaming.broker.DocumentBroker`) without re-running
        the per-subscription setup its constructor performs — absolute
        sub-path registration keeps its compiled registry keys and merely
        gets fresh sinks.  Subclasses extend this with their own result
        state.
        """
        self.stats = StreamStats()
        self._clear_stream_state()
        self._serial = 0
        self._collectors_by_node = {}
        self._deferred_captures = []
        for registry in (self._absolute_sinks, self._absolute_value_sinks):
            for operand in list(registry):
                registry[operand] = _Sink(
                    collect_values=registry[operand].collect_values)
        self._finished = False
        self._halted = False

    def registry_sizes(self) -> Dict[str, int]:
        """Sizes of every engine-internal registry (diagnostics).

        All entries are zero between documents of a reused session; the
        broker's leak tests assert exactly that.
        """
        return {
            "dispatch": sum(1 for _ in self._dispatch.iter_all()),
            "waiting_by_anchor": len(self._waiting_by_anchor),
            "expiry_by_anchor": len(self._expiry_by_anchor),
            "sibling_expiry_by_parent": len(self._sibling_expiry_by_parent),
            "sink_watchers": len(self._sink_watchers),
            "collectors_by_node": len(self._collectors_by_node),
            "live_expectations": self._live,
            "open_elements": len(self._stack),
            "automaton_stack": (len(self._automaton_run.stack)
                                if self._automaton_run is not None else 0),
            "open_capture_windows": (self._tee.open_windows
                                     if self._tee is not None else 0),
        }

    # -- spawning ----------------------------------------------------------
    def spawn_steps(self, steps: Tuple[Step, ...], anchor_id: int,
                    anchor_depth: int, anchor_is_element: bool,
                    anchor_tag: Optional[str], anchor_value: Optional[str],
                    conditions: Tuple[_Condition, ...], sink: _Sink,
                    collect_values: bool,
                    anchor_is_attribute: bool = False) -> None:
        """Start matching a step sequence from the given anchor node."""
        self.spawn_step(steps[0],
                        PathContinuation(steps[1:], sink, collect_values),
                        anchor_id=anchor_id, anchor_depth=anchor_depth,
                        anchor_is_element=anchor_is_element,
                        anchor_tag=anchor_tag, anchor_value=anchor_value,
                        conditions=conditions,
                        anchor_is_attribute=anchor_is_attribute)

    def spawn_step(self, step: Step, cont: Continuation, anchor_id: int,
                   anchor_depth: int, anchor_is_element: bool,
                   anchor_tag: Optional[str], anchor_value: Optional[str],
                   conditions: Tuple[_Condition, ...],
                   anchor_is_attribute: bool = False) -> None:
        """Expect one step from the given anchor, continuing with ``cont``.

        This is the per-step spawning primitive shared by the single-query
        matcher and the multi-subscription engine.

        Invariant relied on for expiry registration: spawning only ever
        happens while the anchor is the node currently being processed (or
        the document root), so ``self._stack`` holds exactly the anchor's
        proper ancestors.
        """
        if cont.dead(self):
            # Nothing downstream is still interested (e.g. the existence sink
            # this would feed is already satisfied): don't spawn at all.
            return
        axis = step.axis
        # The anchor is a text leaf when it is not an element but carries a
        # value and is not an attribute; the document root is "not an
        # element, no value".
        anchor_is_text = ((not anchor_is_element) and (not anchor_is_attribute)
                          and anchor_value is not None)

        if axis is Axis.ATTRIBUTE:
            # Attribute steps can only match the anchor's own attributes,
            # which are all delivered on the anchor's start event.  The
            # expectation goes into the dispatch index's attribute buckets
            # and is resolved (then expired) by the attribute sweep of the
            # very event being processed; non-element anchors — the document
            # root, text leaves, attribute nodes — carry no attributes.
            if not anchor_is_element:
                return
        elif axis in (Axis.SELF, Axis.DESCENDANT_OR_SELF):
            # The anchor itself may match the first step.
            if self._anchor_matches_test(step, anchor_is_element, anchor_tag,
                                         anchor_is_text, anchor_is_attribute):
                self._node_matched(step, cont, anchor_id, anchor_depth,
                                   anchor_is_element, anchor_tag, anchor_value,
                                   conditions,
                                   is_attribute=anchor_is_attribute)
            if axis is Axis.SELF:
                return

        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            if anchor_is_text or anchor_is_attribute:
                # Text and attribute leaves have no descendants; nothing can
                # ever match.
                return

        state = _ACTIVE
        if axis in (Axis.FOLLOWING, Axis.FOLLOWING_SIBLING):
            if anchor_is_attribute:
                # Attribute nodes have no siblings and take part in neither
                # following nor preceding: the window is empty.
                return
            # Wait for the anchor to close before the window opens.  Text
            # anchors are already closed when spawned; the document root
            # never closes before the end of the stream, so nothing follows it.
            state = _ACTIVE if anchor_is_text else _WAITING
        self._serial += 1
        expectation = _Expectation(step=step, cont=cont,
                                   anchor_id=anchor_id, anchor_depth=anchor_depth,
                                   conditions=conditions, state=state,
                                   serial=self._serial)
        if state is _ACTIVE:
            self._dispatch.insert(expectation)
        else:
            self._waiting_by_anchor.setdefault(anchor_id, []).append(expectation)
        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            self._expiry_by_anchor.setdefault(anchor_id, []).append(expectation)
        elif axis is Axis.FOLLOWING_SIBLING and anchor_depth >= 1:
            # The sibling window shuts when the anchor's parent closes; that
            # parent is on the open-element stack right below the anchor.
            parent_id = self._stack[anchor_depth - 1].node_id
            self._sibling_expiry_by_parent.setdefault(
                parent_id, []).append(expectation)
        cont.register(self, expectation)
        self._live += 1
        self.stats.expectations_created += 1
        if self._live > self.stats.max_live_expectations:
            self.stats.max_live_expectations = self._live

    @staticmethod
    def _anchor_matches_test(step: Step, anchor_is_element: bool,
                             anchor_tag: Optional[str],
                             anchor_is_text: bool,
                             anchor_is_attribute: bool = False) -> bool:
        """Node-test check for the anchor itself (``self``/``-or-self`` axes).

        The document root only matches ``node()``; text anchors match
        ``text()`` and ``node()``; attribute anchors match ``node()`` and
        attribute tests (by name); elements match by tag.
        """
        kind = step.node_test.kind
        if kind is NodeTestKind.NODE:
            return True
        if kind is NodeTestKind.ATTRIBUTE:
            return anchor_is_attribute and (step.node_test.name is None
                                            or anchor_tag == step.node_test.name)
        if anchor_is_attribute:
            return False
        if kind is NodeTestKind.TEXT:
            return anchor_is_text
        if kind is NodeTestKind.WILDCARD:
            return anchor_is_element
        return anchor_is_element and anchor_tag == step.node_test.name

    def _node_matched(self, step: Step, cont: Continuation, node_id: int,
                      depth: int, is_element: bool, tag: Optional[str],
                      value: Optional[str],
                      inherited: Tuple[_Condition, ...],
                      is_attribute: bool = False) -> None:
        """A node matched ``step``; evaluate its qualifiers and continue.

        The qualifier conditions are built exactly once per matched node —
        when the step is shared by many subscriptions (trie continuation),
        every one of them reuses the same condition objects.
        """
        if step.qualifiers:
            conditions = list(inherited)
            for qual in step.qualifiers:
                conditions.append(self._build_condition(
                    qual, node_id, depth, is_element, tag, value,
                    is_attribute))
            inherited = tuple(conditions)
        cont.proceed(self, node_id, depth, is_element, tag, value, inherited,
                     is_attribute)

    def add_candidate(self, sink: _Sink, node_id: int, depth: int,
                      is_element: bool, value: Optional[str],
                      conditions: Tuple[_Condition, ...],
                      collect_values: bool) -> None:
        """Deliver a final-step match into a sink, buffering values if needed."""
        entry = _Entry(node_id=node_id, conditions=conditions)
        was_satisfied = sink.satisfied
        retained = sink.add(entry)
        if retained:
            self.stats.candidates_buffered += 1
            if collect_values or sink.collect_values:
                if is_element or value is None:
                    # Elements — and the document root, the only non-element
                    # candidate without an own value — take the
                    # concatenation of their descendant text as string
                    # value; the root's collector is finalized at end of
                    # stream (it has no close event).
                    self._collectors_by_node.setdefault(node_id, []).append(
                        _ValueCollector(entry, depth))
                else:
                    entry.value = value or ""
            if sink.exists_only and conditions:
                # Conditioned entries get one more look once the current
                # event's attribute sweep has run (_settle_event_conditions).
                self._event_entries.append((sink, entry))
            if self._tee is not None:
                self._capture_candidate(sink, entry, node_id, is_element,
                                        value)
        if sink.satisfied and not was_satisfied:
            self._sink_satisfied(sink)

    # -- substream capture (see repro.streaming.delivery) -------------------
    def _capture_ordinal(self, sink: _Sink) -> Optional[int]:
        """Map a sink to the subscription ordinal it delivers for, or
        ``None`` for engine-internal sinks (qualifier sub-paths, absolute
        operands) whose matches are never payload.  Overridden by
        :class:`repro.streaming.engine.MultiMatcher`."""
        return None

    def _capture_candidate(self, sink: _Sink, entry: _Entry, node_id: int,
                           is_element: bool, value: Optional[str]) -> None:
        """Record the capture a just-delivered final match is entitled to.

        Every delivery path converges on :meth:`add_candidate` — trie
        terminals, DFA accepts (structural members included), gate
        remainders and the attribute sweep — so this one hook sees them
        all.  Elements become pending claims (their window opens when the
        current StartElement reaches the tee); text and attribute matches
        are leaves spanning no events, rendered immediately; the document
        root opens a whole-document window.
        """
        ordinal = self._capture_ordinal(sink)
        if ordinal is None:
            return
        if is_element:
            self._pending_claims.append((ordinal, entry))
        elif value is not None:
            data = serialize_events((Text(value=value, node_id=node_id),))
            self._capture_closed(
                _LeafCapture(ordinal=ordinal, node_id=node_id, entry=entry,
                             data=data))
        else:
            self._document_claims.append((ordinal, entry))

    def _capture_closed(self, capture) -> None:
        """A capture window just closed: emit now or defer to results().

        Emission is immediate when every condition on the match is already
        irrevocably true (``known_true``) — the streaming case, where an
        ``on_payload`` callback sees bytes as windows close.  Undecided
        conditions (joins, not-yet-satisfied existence sub-paths) defer the
        capture; :meth:`_drain_deferred_captures` settles it with
        ``entry.holds()`` once the stream is finished.
        """
        conditions = capture.entry.conditions
        if not conditions or all(condition.known_true()
                                 for condition in conditions):
            self._emit_capture(capture)
        else:
            self._deferred_captures.append(capture)

    def _drain_deferred_captures(self) -> None:
        deferred = self._deferred_captures
        self._deferred_captures = []
        for capture in deferred:
            if capture.entry.holds():
                self._emit_capture(capture)

    def _emit_capture(self, capture) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- conditions ---------------------------------------------------------
    def _build_condition(self, qual: Qualifier, node_id: int, depth: int,
                         is_element: bool, tag: Optional[str],
                         value: Optional[str],
                         is_attribute: bool = False) -> _Condition:
        self.stats.conditions_created += 1
        if isinstance(qual, PathQualifier):
            return self._existence_condition(qual.path, node_id, depth,
                                             is_element, tag, value,
                                             collect_values=False,
                                             is_attribute=is_attribute)
        if isinstance(qual, AndExpr):
            return _AndCondition([
                self._build_condition(qual.left, node_id, depth, is_element,
                                      tag, value, is_attribute),
                self._build_condition(qual.right, node_id, depth, is_element,
                                      tag, value, is_attribute),
            ])
        if isinstance(qual, OrExpr):
            return _OrCondition([
                self._build_condition(qual.left, node_id, depth, is_element,
                                      tag, value, is_attribute),
                self._build_condition(qual.right, node_id, depth, is_element,
                                      tag, value, is_attribute),
            ])
        if isinstance(qual, Comparison):
            left_literal = isinstance(qual.left, Literal)
            right_literal = isinstance(qual.right, Literal)
            if left_literal or right_literal:
                if qual.op != "=":  # pragma: no cover - parser rejects
                    raise StreamingError(
                        "'==' joins need node operands on both sides")
                if left_literal and right_literal:
                    return (_TrueCondition()
                            if qual.left.value == qual.right.value
                            else _FalseCondition())
                literal = qual.left if left_literal else qual.right
                operand = qual.right if left_literal else qual.left
                sink = self._operand_sink(operand, node_id, depth, is_element,
                                          tag, value, collect_values=True,
                                          is_attribute=is_attribute)
                return _ValueMatchCondition(sink, literal.value)
            collect = qual.op == "="
            left = self._operand_sink(qual.left, node_id, depth, is_element,
                                      tag, value, collect, is_attribute)
            right = self._operand_sink(qual.right, node_id, depth, is_element,
                                       tag, value, collect, is_attribute)
            return _JoinCondition(left, right, qual.op)
        raise StreamingError(f"not a qualifier: {qual!r}")

    def _existence_condition(self, path: PathExpr, node_id: int, depth: int,
                             is_element: bool, tag: Optional[str],
                             value: Optional[str], collect_values: bool,
                             is_attribute: bool = False) -> _Condition:
        if isinstance(path, Bottom):
            return _FalseCondition()
        if analysis.is_absolute(path):
            return _ExistsCondition(self._absolute_sink(path, collect_values))
        sink = _Sink(collect_values=collect_values, exists_only=True)
        for member in iter_union_members(path):
            if isinstance(member, Bottom):
                continue
            assert isinstance(member, LocationPath)
            self.spawn_steps(member.steps, anchor_id=node_id, anchor_depth=depth,
                             anchor_is_element=is_element, anchor_tag=tag,
                             anchor_value=value, conditions=(), sink=sink,
                             collect_values=collect_values,
                             anchor_is_attribute=is_attribute)
        return _ExistsCondition(sink)

    def _operand_sink(self, operand: PathExpr, node_id: int, depth: int,
                      is_element: bool, tag: Optional[str],
                      value: Optional[str], collect_values: bool,
                      is_attribute: bool = False) -> _Sink:
        if analysis.is_absolute(operand):
            return self._absolute_sink(operand, collect_values)
        sink = _Sink(collect_values=collect_values)
        for member in iter_union_members(operand):
            if isinstance(member, Bottom):
                continue
            assert isinstance(member, LocationPath)
            self.spawn_steps(member.steps, anchor_id=node_id, anchor_depth=depth,
                             anchor_is_element=is_element, anchor_tag=tag,
                             anchor_value=value, conditions=(), sink=sink,
                             collect_values=collect_values,
                             anchor_is_attribute=is_attribute)
        return sink


# ---------------------------------------------------------------------------
# The single-query matcher
# ---------------------------------------------------------------------------

class StreamingMatcher(MatcherCore):
    """Single-pass matcher for one reverse-axis-free path expression.

    ``backend`` selects the structural dispatch engine: ``"dfa"`` (the
    default) compiles the path's structural spine into a lazy automaton and
    runs expectations only past qualifier gates (see
    :mod:`repro.streaming.automaton`); ``"expectations"`` matches every
    step through the expectation machinery instead — the differential
    semantics reference.  ``None`` defers to the
    ``REPRO_STREAMING_BACKEND`` environment variable, then to ``"dfa"``.
    """

    def __init__(self, path: PathExpr, indexed: bool = True,
                 backend: Optional[str] = None):
        if analysis.has_reverse_steps(path):
            raise ReverseAxisStreamingError(
                f"path {to_string(path)} contains reverse axes; rewrite it with "
                f"repro.rewrite.remove_reverse_axes first")
        super().__init__(indexed=indexed)
        self.path = path
        self.backend = resolve_backend(backend)
        self._result_sink = _Sink()
        self._register_absolute_subpaths(self.path)
        self._fallback_expr: Optional[PathExpr] = self.path
        if self.backend == "dfa":
            automaton, fallback = compile_subscription_automaton(
                [(0, self.path)])
            members = fallback.get(0, ())
            self._fallback_expr = (union_of(*members) if members else None)
            self._automaton_run = AutomatonRun(automaton,
                                               self._structural_sink)

    def _structural_sink(self, ordinal: int) -> _Sink:
        return self._result_sink

    def _spawn_roots(self, root_id: int) -> None:
        if self._fallback_expr is not None:
            self.spawn_root_expr(self._fallback_expr, self._result_sink,
                                 collect_values=False, root_id=root_id)

    def reset(self) -> None:
        super().reset()
        self._result_sink = _Sink()

    def results(self) -> List[int]:
        """Node ids selected by the path (requires the stream to be finished)."""
        if not self._finished:
            raise StreamingError("results() called before the end of the stream")
        selected: Set[int] = set()
        for entry in self._result_sink.entries:
            if entry.node_id in selected:
                continue
            if entry.holds():
                selected.add(entry.node_id)
        self.stats.results = len(selected)
        return sorted(selected)
