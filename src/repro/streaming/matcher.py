"""Single-pass streaming matcher for reverse-axis-free location paths.

The engine consumes a stream of SAX-like events exactly once and reports the
document-order ids of the nodes selected by a forward-only location path.
It is the kind of progressive processor the paper's conclusion announces
("we are designing and implementing a progressive XPath processor" [12]) —
a compact cousin of the authors' later SPEX system.

How it works
------------

* The engine keeps the stack of currently open elements (the only structural
  state a SAX consumer has for free).
* For every location step that still has to be matched, an *expectation*
  describes which future nodes can match it: nodes related to an *anchor*
  node (the match of the previous step) by the step's forward axis.  Because
  all axes are forward, an expectation only ever has to look at nodes whose
  start event has not arrived yet:

  ========================  =====================================================
  axis                      nodes that can still match once the anchor is known
  ========================  =====================================================
  ``self``                  the anchor itself (resolved immediately)
  ``child``                 nodes starting while the anchor is open, one level deeper
  ``descendant``            nodes starting while the anchor is open
  ``descendant-or-self``    the anchor itself plus descendants
  ``following-sibling``     nodes at the anchor's depth after the anchor closes,
                            while the anchor's parent is open
  ``following``             any node starting after the anchor closes
  ========================  =====================================================

* Qualifiers and joins become *conditions* attached to candidate matches.
  Existence qualifiers spawn sub-expectations anchored at the candidate;
  ``==`` joins collect node ids on both sides; ``=`` joins additionally
  buffer string values.  Absolute sub-paths (introduced by RuleSet1's
  rewriting) are matched once from the document root into sinks shared by
  all conditions that mention them.
* At the end of the stream every condition can be decided and the candidates
  whose conditions hold are reported.  Memory therefore scales with the
  number of *pending candidates and conditions* — not with the document —
  which is the property the benchmarks of experiment E9 measure.

Reverse axes are rejected: remove them first with
:func:`repro.rewrite.remove_reverse_axes`.

The machinery is split in two layers so that it can serve both one query and
thousands of subscriptions at once (:mod:`repro.streaming.engine`):

* :class:`MatcherCore` owns the event loop, the element stack, the
  expectation lifecycle, conditions, value collection and the shared
  absolute-sub-path sinks.  What happens when a step matches is delegated to
  a *continuation* object attached to each expectation.
* :class:`PathContinuation` is the single-query continuation: continue with
  the remaining steps of one path into one sink.  The multi-subscription
  engine plugs in a trie-based continuation instead, advancing a whole
  bundle of subscriptions that share the matched step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ReverseAxisStreamingError, StreamingError
from repro.streaming.stats import StreamStats
from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xpath import analysis
from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    LocationPath,
    NodeTestKind,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
    iter_union_members,
)
from repro.xpath.axes import Axis
from repro.xpath.serializer import to_string


# ---------------------------------------------------------------------------
# Conditions: booleans decided by the end of the stream
# ---------------------------------------------------------------------------

@dataclass
class _Entry:
    """One buffered candidate produced by a sink: node id, optional value,
    and the conditions that must hold for it to count."""

    node_id: int
    conditions: Tuple["_Condition", ...]
    value: Optional[str] = None

    def holds(self) -> bool:
        return all(condition.result() for condition in self.conditions)


class _Sink:
    """Collects the final-step matches of one (sub-)path.

    Sinks that only feed an existence condition (``exists_only``) resolve
    eagerly: as soon as one match with no pending conditions arrives, the
    sink is *satisfied*, later matches are not buffered, and the engine stops
    feeding the expectations that point at it.  This keeps the memory of
    streaming evaluation proportional to the number of genuinely undecided
    candidates rather than to the number of witnesses in the document.
    """

    __slots__ = ("entries", "collect_values", "exists_only", "satisfied")

    def __init__(self, collect_values: bool = False, exists_only: bool = False):
        self.entries: List[_Entry] = []
        self.collect_values = collect_values
        self.exists_only = exists_only
        self.satisfied = False

    def add(self, entry: _Entry) -> bool:
        """Record a match; returns whether the entry had to be buffered."""
        if self.satisfied:
            return False
        if self.exists_only and not entry.conditions:
            self.satisfied = True
            self.entries.clear()
            return False
        self.entries.append(entry)
        return True

    def surviving(self) -> List[_Entry]:
        return [entry for entry in self.entries if entry.holds()]

    def nonempty(self) -> bool:
        return self.satisfied or bool(self.surviving())


class _Condition:
    """Base class of deferred boolean conditions."""

    __slots__ = ()

    def result(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class _ExistsCondition(_Condition):
    """True iff the attached sink ends up with at least one surviving entry."""

    __slots__ = ("sink",)

    def __init__(self, sink: _Sink):
        self.sink = sink

    def result(self) -> bool:
        return self.sink.nonempty()


class _FalseCondition(_Condition):
    """Constant false (e.g. a ``⊥`` qualifier)."""

    __slots__ = ()

    def result(self) -> bool:
        return False


class _AndCondition(_Condition):
    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[_Condition]):
        self.parts = tuple(parts)

    def result(self) -> bool:
        return all(part.result() for part in self.parts)


class _OrCondition(_Condition):
    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[_Condition]):
        self.parts = tuple(parts)

    def result(self) -> bool:
        return any(part.result() for part in self.parts)


class _JoinCondition(_Condition):
    """A join ``left θ right``: node identity (``==``) or value equality (``=``)."""

    __slots__ = ("left", "right", "op")

    def __init__(self, left: _Sink, right: _Sink, op: str):
        self.left = left
        self.right = right
        self.op = op

    def result(self) -> bool:
        left_entries = self.left.surviving()
        right_entries = self.right.surviving()
        if not left_entries or not right_entries:
            return False
        if self.op == "==":
            left_ids = {entry.node_id for entry in left_entries}
            right_ids = {entry.node_id for entry in right_entries}
            return bool(left_ids & right_ids)
        left_values = {entry.value or "" for entry in left_entries}
        right_values = {entry.value or "" for entry in right_entries}
        return bool(left_values & right_values)


# ---------------------------------------------------------------------------
# Expectations: pending step matches
# ---------------------------------------------------------------------------

#: Expectation lifecycle: waiting for the anchor to close (sibling/following
#: axes), actively matching, or expired.
_WAITING, _ACTIVE, _EXPIRED = "waiting", "active", "expired"


class _Expectation:
    """Waiting for future nodes related to ``anchor`` by ``step.axis``.

    What to do with a matching node is delegated to ``cont``, a continuation
    object (:class:`PathContinuation` or the trie continuation of
    :mod:`repro.streaming.engine`).
    """

    __slots__ = ("step", "cont", "anchor_id", "anchor_depth",
                 "conditions", "state")

    def __init__(self, step: Step, cont: "Continuation", anchor_id: int,
                 anchor_depth: int, conditions: Tuple[_Condition, ...],
                 state: str):
        self.step = step
        self.cont = cont
        self.anchor_id = anchor_id
        self.anchor_depth = anchor_depth
        self.conditions = conditions
        self.state = state

    def matches(self, depth: int, is_element: bool, tag: Optional[str]) -> bool:
        if self.state is not _ACTIVE:
            return False
        axis = self.step.axis
        if axis is Axis.CHILD and depth != self.anchor_depth + 1:
            return False
        if axis is Axis.FOLLOWING_SIBLING and depth != self.anchor_depth:
            return False
        # DESCENDANT / DESCENDANT_OR_SELF / FOLLOWING match any depth in the
        # active window.
        return _test_matches(self.step, is_element, tag)


def _test_matches(step: Step, is_element: bool, tag: Optional[str]) -> bool:
    kind = step.node_test.kind
    if kind is NodeTestKind.NODE:
        return True
    if kind is NodeTestKind.TEXT:
        return not is_element
    if kind is NodeTestKind.WILDCARD:
        return is_element
    return is_element and tag == step.node_test.name


class _ValueCollector:
    """Accumulates the string value of a matched element for ``=`` joins."""

    __slots__ = ("entry", "anchor_depth", "parts")

    def __init__(self, entry: _Entry, anchor_depth: int):
        self.entry = entry
        self.anchor_depth = anchor_depth
        self.parts: List[str] = []


# ---------------------------------------------------------------------------
# Continuations: what happens after a step matches
# ---------------------------------------------------------------------------

class Continuation:
    """Protocol for expectation continuations.

    ``dead(core)`` reports whether the expectation can be dropped because no
    downstream consumer is still interested (e.g. an existence sink already
    satisfied); ``proceed(core, ...)`` consumes a matched node *after* the
    step's qualifiers have been turned into conditions.
    """

    __slots__ = ()

    def dead(self, core: "MatcherCore") -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def proceed(self, core: "MatcherCore", node_id: int, depth: int,
                is_element: bool, tag: Optional[str], value: Optional[str],
                conditions: Tuple[_Condition, ...]) -> None:  # pragma: no cover
        raise NotImplementedError


class PathContinuation(Continuation):
    """Continue one path: match the remaining steps, then feed one sink."""

    __slots__ = ("remaining", "sink", "collect_values")

    def __init__(self, remaining: Tuple[Step, ...], sink: _Sink,
                 collect_values: bool):
        self.remaining = remaining
        self.sink = sink
        self.collect_values = collect_values

    def dead(self, core: "MatcherCore") -> bool:
        return self.sink.satisfied

    def proceed(self, core: "MatcherCore", node_id: int, depth: int,
                is_element: bool, tag: Optional[str], value: Optional[str],
                conditions: Tuple[_Condition, ...]) -> None:
        if self.remaining:
            core.spawn_steps(self.remaining, anchor_id=node_id,
                             anchor_depth=depth, anchor_is_element=is_element,
                             anchor_tag=tag, anchor_value=value,
                             conditions=conditions, sink=self.sink,
                             collect_values=self.collect_values)
            return
        core.add_candidate(self.sink, node_id, depth, is_element, value,
                           conditions, self.collect_values)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

@dataclass
class _OpenElement:
    node_id: int
    tag: Optional[str]
    depth: int


class MatcherCore:
    """Shared single-pass matching machinery.

    Owns the element stack, the expectation lifecycle, condition building,
    value collection and the shared absolute-sub-path sinks.  Subclasses
    decide what is spawned at the document root (one path for
    :class:`StreamingMatcher`, a subscription trie for
    :class:`repro.streaming.engine.MultiMatcher`) and how results are read
    out.
    """

    def __init__(self) -> None:
        self.stats = StreamStats()
        self._stack: List[_OpenElement] = []
        self._expectations: List[_Expectation] = []
        self._value_collectors: List[_ValueCollector] = []
        self._absolute_sinks: Dict[PathExpr, _Sink] = {}
        self._absolute_value_sinks: Dict[PathExpr, _Sink] = {}
        self._finished = False

    # -- setup -----------------------------------------------------------
    def _register_absolute_subpaths(self, expr: PathExpr) -> None:
        """Find absolute sub-paths used inside qualifiers and joins.

        They must be matched from the document root over the *whole* stream
        (a candidate discovered mid-stream could not see earlier matches), so
        they are registered once and shared by every condition that mentions
        them.
        """
        for member in iter_union_members(expr):
            if isinstance(member, Bottom):
                continue
            if not isinstance(member, LocationPath):
                continue
            for step in member.steps:
                for qual in step.qualifiers:
                    self._register_absolute_in_qualifier(qual)

    def _register_absolute_in_qualifier(self, qual: Qualifier) -> None:
        if isinstance(qual, PathQualifier):
            self._register_absolute_operand(qual.path, collect_values=False)
        elif isinstance(qual, (AndExpr, OrExpr)):
            self._register_absolute_in_qualifier(qual.left)
            self._register_absolute_in_qualifier(qual.right)
        elif isinstance(qual, Comparison):
            collect = qual.op == "="
            self._register_absolute_operand(qual.left, collect_values=collect)
            self._register_absolute_operand(qual.right, collect_values=collect)

    def _register_absolute_operand(self, operand: PathExpr,
                                   collect_values: bool) -> None:
        if not analysis.is_absolute(operand):
            # A relative operand is matched from its carrier when the carrier
            # is discovered; but it may itself mention absolute sub-paths in
            # its own qualifiers.
            for member in iter_union_members(operand):
                if isinstance(member, LocationPath):
                    for step in member.steps:
                        for qual in step.qualifiers:
                            self._register_absolute_in_qualifier(qual)
            return
        registry = (self._absolute_value_sinks if collect_values
                    else self._absolute_sinks)
        if operand in registry:
            return
        registry[operand] = _Sink(collect_values=collect_values)
        # Absolute sub-paths can themselves mention further absolute paths.
        self._register_absolute_subpaths(operand)

    def _absolute_sink(self, operand: PathExpr, collect_values: bool) -> _Sink:
        registry = (self._absolute_value_sinks if collect_values
                    else self._absolute_sinks)
        return registry[operand]

    # -- event loop --------------------------------------------------------
    def process(self, events: Iterable[Event]):
        """Consume the whole event stream and return :meth:`results`."""
        for event in events:
            self.feed(event)
        return self.results()

    def feed(self, event: Event) -> None:
        """Consume one event."""
        self.stats.events += 1
        if isinstance(event, StartDocument):
            self._start_document(event)
        elif isinstance(event, StartElement):
            self._start_node(event.node_id, True, event.tag, None)
            self._stack.append(_OpenElement(event.node_id, event.tag,
                                            len(self._stack)))
            # Element nesting depth, not counting the document root entry.
            self.stats.max_depth = max(self.stats.max_depth, len(self._stack) - 1)
        elif isinstance(event, Text):
            self._start_node(event.node_id, False, None, event.value)
            for collector in self._value_collectors:
                collector.parts.append(event.value)
                self.stats.buffered_value_chars += len(event.value)
        elif isinstance(event, EndElement):
            self._end_node()
        elif isinstance(event, EndDocument):
            self._finish()
        else:  # pragma: no cover - defensive
            raise StreamingError(f"unknown event {event!r}")

    # -- internals ---------------------------------------------------------
    def _spawn_roots(self, root_id: int) -> None:  # pragma: no cover - abstract
        """Spawn whatever this matcher evaluates, anchored at the root."""
        raise NotImplementedError

    def _start_document(self, event: StartDocument) -> None:
        self._stack = [_OpenElement(event.node_id, None, 0)]
        self.stats.nodes_seen += 1
        self._spawn_roots(event.node_id)
        # Spawn the shared absolute sub-paths.
        for registry in (self._absolute_sinks, self._absolute_value_sinks):
            for operand, sink in registry.items():
                self.spawn_root_expr(operand, sink, sink.collect_values,
                                     event.node_id)

    def spawn_root_expr(self, expr: PathExpr, sink: _Sink,
                        collect_values: bool, root_id: int) -> None:
        """Spawn every union member of an absolute expression from the root."""
        for member in iter_union_members(expr):
            if isinstance(member, Bottom):
                continue
            if not isinstance(member, LocationPath) or not member.absolute:
                raise StreamingError(
                    "the streaming evaluator expects absolute paths "
                    f"(got {to_string(member)})")
            if not member.steps:
                # The path "/" selects the root itself.
                sink.add(_Entry(node_id=root_id, conditions=()))
                continue
            self.spawn_steps(member.steps, anchor_id=root_id,
                             anchor_depth=0, anchor_is_element=False,
                             anchor_tag=None, anchor_value=None,
                             conditions=(), sink=sink,
                             collect_values=collect_values)

    def _start_node(self, node_id: int, is_element: bool, tag: Optional[str],
                    value: Optional[str]) -> None:
        self.stats.nodes_seen += 1
        depth = len(self._stack)
        # Iterate over a snapshot: matching may spawn new expectations, which
        # must not be matched against the node that created them.
        for expectation in list(self._expectations):
            if expectation.cont.dead(self):
                continue
            if expectation.matches(depth, is_element, tag):
                self._node_matched(expectation.step, expectation.cont,
                                   node_id, depth, is_element, tag, value,
                                   expectation.conditions)

    def _end_node(self) -> None:
        closed = self._stack.pop()
        still_alive: List[_Expectation] = []
        for expectation in self._expectations:
            if expectation.cont.dead(self):
                continue
            axis = expectation.step.axis
            if expectation.anchor_id == closed.node_id:
                if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
                    expectation.state = _EXPIRED
                elif axis in (Axis.FOLLOWING, Axis.FOLLOWING_SIBLING):
                    if expectation.state is _WAITING:
                        expectation.state = _ACTIVE
            if (axis is Axis.FOLLOWING_SIBLING
                    and expectation.state is _ACTIVE
                    and expectation.anchor_depth == closed.depth + 1
                    and self._parent_of_depth_closed(expectation, closed)):
                expectation.state = _EXPIRED
            if expectation.state is not _EXPIRED:
                still_alive.append(expectation)
        self._expectations = still_alive
        # Finalize value collectors anchored at the closed element.
        remaining_collectors: List[_ValueCollector] = []
        for collector in self._value_collectors:
            if collector.entry.node_id == closed.node_id:
                collector.entry.value = "".join(collector.parts)
            else:
                remaining_collectors.append(collector)
        self._value_collectors = remaining_collectors

    def _parent_of_depth_closed(self, expectation: _Expectation,
                                closed: _OpenElement) -> bool:
        """A following-sibling window closes when the siblings' parent closes."""
        return closed.depth == expectation.anchor_depth - 1

    def _finish(self) -> None:
        self._finished = True
        self._expectations = []
        for collector in self._value_collectors:
            collector.entry.value = "".join(collector.parts)
        self._value_collectors = []

    # -- spawning ----------------------------------------------------------
    def spawn_steps(self, steps: Tuple[Step, ...], anchor_id: int,
                    anchor_depth: int, anchor_is_element: bool,
                    anchor_tag: Optional[str], anchor_value: Optional[str],
                    conditions: Tuple[_Condition, ...], sink: _Sink,
                    collect_values: bool) -> None:
        """Start matching a step sequence from the given anchor node."""
        self.spawn_step(steps[0],
                        PathContinuation(steps[1:], sink, collect_values),
                        anchor_id=anchor_id, anchor_depth=anchor_depth,
                        anchor_is_element=anchor_is_element,
                        anchor_tag=anchor_tag, anchor_value=anchor_value,
                        conditions=conditions)

    def spawn_step(self, step: Step, cont: Continuation, anchor_id: int,
                   anchor_depth: int, anchor_is_element: bool,
                   anchor_tag: Optional[str], anchor_value: Optional[str],
                   conditions: Tuple[_Condition, ...]) -> None:
        """Expect one step from the given anchor, continuing with ``cont``.

        This is the per-step spawning primitive shared by the single-query
        matcher and the multi-subscription engine.
        """
        axis = step.axis
        # The anchor is a text leaf when it is not an element but carries a
        # value; the document root is "not an element, no value".
        anchor_is_text = (not anchor_is_element) and anchor_value is not None

        if axis in (Axis.SELF, Axis.DESCENDANT_OR_SELF):
            # The anchor itself may match the first step.
            if self._anchor_matches_test(step, anchor_is_element, anchor_tag,
                                         anchor_is_text):
                self._node_matched(step, cont, anchor_id, anchor_depth,
                                   anchor_is_element, anchor_tag, anchor_value,
                                   conditions)
            if axis is Axis.SELF:
                return

        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            if anchor_is_text:
                # Text leaves have no descendants; nothing can ever match.
                return

        state = _ACTIVE
        if axis in (Axis.FOLLOWING, Axis.FOLLOWING_SIBLING):
            # Wait for the anchor to close before the window opens.  Text
            # anchors are already closed when spawned; the document root
            # never closes before the end of the stream, so nothing follows it.
            state = _ACTIVE if anchor_is_text else _WAITING
        expectation = _Expectation(step=step, cont=cont,
                                   anchor_id=anchor_id, anchor_depth=anchor_depth,
                                   conditions=conditions, state=state)
        self._expectations.append(expectation)
        self.stats.expectations_created += 1
        self.stats.max_live_expectations = max(self.stats.max_live_expectations,
                                               len(self._expectations))

    @staticmethod
    def _anchor_matches_test(step: Step, anchor_is_element: bool,
                             anchor_tag: Optional[str],
                             anchor_is_text: bool) -> bool:
        """Node-test check for the anchor itself (``self``/``-or-self`` axes).

        The document root only matches ``node()``; text anchors match
        ``text()`` and ``node()``; elements match by tag.
        """
        kind = step.node_test.kind
        if kind is NodeTestKind.NODE:
            return True
        if kind is NodeTestKind.TEXT:
            return anchor_is_text
        if kind is NodeTestKind.WILDCARD:
            return anchor_is_element
        return anchor_is_element and anchor_tag == step.node_test.name

    def _node_matched(self, step: Step, cont: Continuation, node_id: int,
                      depth: int, is_element: bool, tag: Optional[str],
                      value: Optional[str],
                      inherited: Tuple[_Condition, ...]) -> None:
        """A node matched ``step``; evaluate its qualifiers and continue.

        The qualifier conditions are built exactly once per matched node —
        when the step is shared by many subscriptions (trie continuation),
        every one of them reuses the same condition objects.
        """
        if step.qualifiers:
            conditions = list(inherited)
            for qual in step.qualifiers:
                conditions.append(self._build_condition(qual, node_id, depth,
                                                        is_element, tag, value))
            inherited = tuple(conditions)
        cont.proceed(self, node_id, depth, is_element, tag, value, inherited)

    def add_candidate(self, sink: _Sink, node_id: int, depth: int,
                      is_element: bool, value: Optional[str],
                      conditions: Tuple[_Condition, ...],
                      collect_values: bool) -> None:
        """Deliver a final-step match into a sink, buffering values if needed."""
        entry = _Entry(node_id=node_id, conditions=conditions)
        retained = sink.add(entry)
        if retained:
            self.stats.candidates_buffered += 1
            if collect_values or sink.collect_values:
                if is_element:
                    self._value_collectors.append(_ValueCollector(entry, depth))
                else:
                    entry.value = value or ""

    # -- conditions ---------------------------------------------------------
    def _build_condition(self, qual: Qualifier, node_id: int, depth: int,
                         is_element: bool, tag: Optional[str],
                         value: Optional[str]) -> _Condition:
        self.stats.conditions_created += 1
        if isinstance(qual, PathQualifier):
            return self._existence_condition(qual.path, node_id, depth,
                                             is_element, tag, value,
                                             collect_values=False)
        if isinstance(qual, AndExpr):
            return _AndCondition([
                self._build_condition(qual.left, node_id, depth, is_element, tag, value),
                self._build_condition(qual.right, node_id, depth, is_element, tag, value),
            ])
        if isinstance(qual, OrExpr):
            return _OrCondition([
                self._build_condition(qual.left, node_id, depth, is_element, tag, value),
                self._build_condition(qual.right, node_id, depth, is_element, tag, value),
            ])
        if isinstance(qual, Comparison):
            collect = qual.op == "="
            left = self._operand_sink(qual.left, node_id, depth, is_element,
                                      tag, value, collect)
            right = self._operand_sink(qual.right, node_id, depth, is_element,
                                       tag, value, collect)
            return _JoinCondition(left, right, qual.op)
        raise StreamingError(f"not a qualifier: {qual!r}")

    def _existence_condition(self, path: PathExpr, node_id: int, depth: int,
                             is_element: bool, tag: Optional[str],
                             value: Optional[str],
                             collect_values: bool) -> _Condition:
        if isinstance(path, Bottom):
            return _FalseCondition()
        if analysis.is_absolute(path):
            return _ExistsCondition(self._absolute_sink(path, collect_values))
        sink = _Sink(collect_values=collect_values, exists_only=True)
        for member in iter_union_members(path):
            if isinstance(member, Bottom):
                continue
            assert isinstance(member, LocationPath)
            self.spawn_steps(member.steps, anchor_id=node_id, anchor_depth=depth,
                             anchor_is_element=is_element, anchor_tag=tag,
                             anchor_value=value, conditions=(), sink=sink,
                             collect_values=collect_values)
        return _ExistsCondition(sink)

    def _operand_sink(self, operand: PathExpr, node_id: int, depth: int,
                      is_element: bool, tag: Optional[str],
                      value: Optional[str], collect_values: bool) -> _Sink:
        if analysis.is_absolute(operand):
            return self._absolute_sink(operand, collect_values)
        sink = _Sink(collect_values=collect_values)
        for member in iter_union_members(operand):
            if isinstance(member, Bottom):
                continue
            assert isinstance(member, LocationPath)
            self.spawn_steps(member.steps, anchor_id=node_id, anchor_depth=depth,
                             anchor_is_element=is_element, anchor_tag=tag,
                             anchor_value=value, conditions=(), sink=sink,
                             collect_values=collect_values)
        return sink


# ---------------------------------------------------------------------------
# The single-query matcher
# ---------------------------------------------------------------------------

class StreamingMatcher(MatcherCore):
    """Single-pass matcher for one reverse-axis-free path expression."""

    def __init__(self, path: PathExpr):
        if analysis.has_reverse_steps(path):
            raise ReverseAxisStreamingError(
                f"path {to_string(path)} contains reverse axes; rewrite it with "
                f"repro.rewrite.remove_reverse_axes first")
        super().__init__()
        self.path = path
        self._result_sink = _Sink()
        self._register_absolute_subpaths(self.path)

    def _spawn_roots(self, root_id: int) -> None:
        self.spawn_root_expr(self.path, self._result_sink,
                             collect_values=False, root_id=root_id)

    def results(self) -> List[int]:
        """Node ids selected by the path (requires the stream to be finished)."""
        if not self._finished:
            raise StreamingError("results() called before the end of the stream")
        selected: Set[int] = set()
        for entry in self._result_sink.entries:
            if entry.node_id in selected:
                continue
            if entry.holds():
                selected.add(entry.node_id)
        self.stats.results = len(selected)
        return sorted(selected)
