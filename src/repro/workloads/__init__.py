"""Query and document workloads used by the benchmarks (System S3/S13)."""

from repro.workloads.queries import (
    PAPER_QUERIES,
    SUBSCRIPTION_PREFIXES,
    PaperQuery,
    ancestor_chain,
    attribute_subscription_workload,
    differential_query_pool,
    extraction_workload,
    following_reverse_chain,
    low_overlap_workload,
    mixed_reverse_path,
    parent_chain,
    preceding_chain,
    random_reverse_path,
    reverse_chain,
    subscription_workload,
)
from repro.workloads.documents import (
    STREAMING_DOCUMENTS,
    WorkloadDocument,
    streaming_documents,
)

__all__ = [
    "PAPER_QUERIES",
    "PaperQuery",
    "reverse_chain",
    "parent_chain",
    "ancestor_chain",
    "preceding_chain",
    "following_reverse_chain",
    "mixed_reverse_path",
    "random_reverse_path",
    "SUBSCRIPTION_PREFIXES",
    "subscription_workload",
    "attribute_subscription_workload",
    "differential_query_pool",
    "low_overlap_workload",
    "extraction_workload",
    "WorkloadDocument",
    "STREAMING_DOCUMENTS",
    "streaming_documents",
]
