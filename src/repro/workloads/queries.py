"""Query workloads: the paper's queries plus parametric families.

Three kinds of queries drive the experiments:

* :data:`PAPER_QUERIES` — every location path that appears in the paper
  (Examples 3.1–3.3, Figure 3/4, the equivalence illustrations), with the
  rewriting the paper reports where it gives one,
* *chains* — parametric families of growing length used for the complexity
  experiments: reverse-step chains for Theorem 4.1 (RuleSet1 linear) and
  ``following``/reverse interaction chains for Theorem 4.2 (RuleSet2
  worst-case exponential),
* *random paths* — randomized reverse-axis paths over the journal document
  vocabulary, used for coverage-style validation (experiment E10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.xmlmodel.generator import ITEM_CATEGORIES, ITEM_CURRENCIES

JOURNAL_TAGS = ("journal", "title", "editor", "authors", "name", "article", "price")

REVERSE_AXES = ("parent", "ancestor", "ancestor-or-self", "preceding",
                "preceding-sibling")
FORWARD_AXES = ("child", "descendant", "descendant-or-self", "self",
                "following", "following-sibling")


@dataclass(frozen=True)
class PaperQuery:
    """A location path taken verbatim from the paper."""

    label: str
    xpath: str
    #: The rewriting reported by the paper, when it gives one (per rule set).
    expected_ruleset1: Optional[str] = None
    expected_ruleset2: Optional[str] = None
    description: str = ""


PAPER_QUERIES: List[PaperQuery] = [
    PaperQuery(
        label="example-3.1",
        xpath="/descendant::price/preceding::name",
        expected_ruleset1=(
            "/descendant::name[following::price == /descendant::price]"),
        expected_ruleset2="/descendant::name[following::price]",
        description="all names that appear before a price (Examples 3.1 and 3.3)",
    ),
    PaperQuery(
        label="example-3.1-variant",
        xpath="/descendant::journal[child::title]/descendant::price/preceding::name",
        expected_ruleset1=(
            "/descendant::name[following::price == "
            "/descendant::journal[child::title]/descendant::price]"),
        description="names before a price inside a journal with a title",
    ),
    PaperQuery(
        label="example-3.2",
        xpath="/descendant::editor[parent::journal]",
        expected_ruleset2="/descendant-or-self::journal/child::editor",
        description="all editors of journals (Rule (8))",
    ),
    PaperQuery(
        label="figure-3-4",
        xpath="/descendant::name/preceding::title[ancestor::journal]",
        expected_ruleset1=(
            "/descendant::title"
            "[/descendant::journal/descendant::node() == self::node()]"
            "[following::name == /descendant::name]"),
        expected_ruleset2=(
            "/descendant-or-self::journal/descendant::title[following::name]"),
        description="titles before a name and inside a journal (Figures 3 and 4)",
    ),
]


def reverse_chain(length: int, axis: str = "parent",
                  tags: Sequence[str] = JOURNAL_TAGS) -> str:
    """``/descendant::t0/axis::t1/axis::t2/...`` with ``length`` reverse steps.

    The workload for Theorem 4.1: RuleSet1 removes each reverse step with one
    rule application, so output size and rewrite time grow linearly.
    """
    if length < 1:
        raise ValueError("need at least one reverse step")
    steps = [f"descendant::{tags[0]}"]
    for index in range(length):
        steps.append(f"{axis}::{tags[(index + 1) % len(tags)]}")
    return "/" + "/".join(steps)


def parent_chain(length: int) -> str:
    """A chain of ``parent`` steps (special case of :func:`reverse_chain`)."""
    return reverse_chain(length, axis="parent")


def ancestor_chain(length: int) -> str:
    """A chain of ``ancestor`` steps."""
    return reverse_chain(length, axis="ancestor")


def preceding_chain(length: int) -> str:
    """A chain of ``preceding`` steps."""
    return reverse_chain(length, axis="preceding")


def following_reverse_chain(length: int, reverse_axis: str = "preceding",
                            tags: Sequence[str] = JOURNAL_TAGS) -> str:
    """``/descendant::t/(following::t/reverse::t)^length`` interaction chains.

    This is the worst case of Theorem 4.2: every ``following``/reverse
    interaction multiplies the number of union terms, so RuleSet2's output
    grows exponentially with ``length`` while RuleSet1's stays linear.
    """
    if length < 1:
        raise ValueError("need at least one interaction")
    steps = [f"descendant::{tags[0]}"]
    for index in range(length):
        steps.append(f"following::{tags[(2 * index + 1) % len(tags)]}")
        steps.append(f"{reverse_axis}::{tags[(2 * index + 2) % len(tags)]}")
    return "/" + "/".join(steps)


def mixed_reverse_path(length: int, seed: int = 11,
                       tags: Sequence[str] = JOURNAL_TAGS) -> str:
    """A pseudo-random alternation of forward and reverse steps of given length."""
    rng = random.Random(seed + length)
    steps = [f"descendant::{rng.choice(tags)}"]
    for _ in range(length - 1):
        if rng.random() < 0.5:
            axis = rng.choice(REVERSE_AXES)
        else:
            axis = rng.choice(("child", "descendant", "following",
                               "following-sibling"))
        steps.append(f"{axis}::{rng.choice(tags)}")
    return "/" + "/".join(steps)


#: Shared subscription prefixes of the SDI workload.  Every generated
#: subscription starts with one of these, so a batch of ``count``
#: subscriptions collapses onto at most ``len(SUBSCRIPTION_PREFIXES)``
#: leading-step chains in the shared trie.
SUBSCRIPTION_PREFIXES = (
    "/descendant::journal",
    "/descendant::journal/child::article",
    "/descendant::article/child::authors",
    "/descendant::journal/descendant::title",
    "/child::journal/descendant::name",
    "/descendant::price",
)


def subscription_workload(count: int, seed: int = 7,
                          prefixes: Sequence[str] = SUBSCRIPTION_PREFIXES,
                          max_tail_steps: int = 2,
                          qualifier_probability: float = 0.35,
                          reverse_probability: float = 0.2,
                          tags: Sequence[str] = JOURNAL_TAGS) -> List[str]:
    """A batch of overlapping SDI subscriptions (multi-query experiment).

    Each subscription starts with one of a small pool of shared prefixes and
    continues with a randomized tail of up to ``max_tail_steps`` steps —
    mixed axes and fan-out, optional existence qualifiers, and with
    probability ``reverse_probability`` a reverse step (``parent`` or
    ``ancestor``) that the subscription index removes by rewriting.  The
    result models a subscriber population whose queries cluster on popular
    document regions, the case where shared-trie matching pays off.
    """
    if count < 1:
        raise ValueError("need at least one subscription")
    rng = random.Random(seed)
    tail_forward = ("child", "descendant", "following-sibling", "self")
    tail_reverse = ("parent", "ancestor")
    subscriptions: List[str] = []
    for _ in range(count):
        parts = [rng.choice(prefixes)]
        for _ in range(rng.randint(0, max_tail_steps)):
            if rng.random() < reverse_probability:
                axis = rng.choice(tail_reverse)
            else:
                axis = rng.choice(tail_forward)
            test = rng.choice(tuple(tags) + ("*",))
            step = f"{axis}::{test}"
            if rng.random() < qualifier_probability:
                inner_axis = rng.choice(("child", "descendant"))
                inner_test = rng.choice(tuple(tags))
                step += f"[{inner_axis}::{inner_test}]"
            parts.append(step)
        subscriptions.append("/".join(parts))
    return subscriptions


#: Wide tag vocabulary of the low-overlap SDI workload (see
#: :func:`low_overlap_workload`); ``tagged_sections_document`` in
#: :mod:`repro.xmlmodel.generator` produces documents over the same names.
def low_overlap_tags(tag_count: int = 48) -> Tuple[str, ...]:
    return tuple(f"t{index:02d}" for index in range(tag_count))


def low_overlap_workload(count: int, seed: int = 7,
                         tags: Optional[Sequence[str]] = None,
                         qualifier_probability: float = 0.25) -> List[str]:
    """Subscriptions with almost no shared leading steps (anti-trie workload).

    Each subscription roots at a different tag of a wide vocabulary, so the
    prefix trie degenerates to one branch per subscription and per-event cost
    is dominated by how many expectations a node event has to be checked
    against.  This is the workload where tag-indexed expectation dispatch
    pays off the most — and where a linear scan is at its worst.
    """
    if count < 1:
        raise ValueError("need at least one subscription")
    if tags is None:
        tags = low_overlap_tags()
    rng = random.Random(seed)
    subscriptions: List[str] = []
    for index in range(count):
        parts = [f"/descendant::{tags[index % len(tags)]}"]
        for _ in range(rng.randint(1, 2)):
            axis = rng.choice(("child", "descendant", "child"))
            parts.append(f"{axis}::{rng.choice(tags)}")
        if rng.random() < qualifier_probability:
            parts[-1] += f"[child::{rng.choice(tags)}]"
        subscriptions.append("/".join(parts))
    return subscriptions


def extraction_workload(count: int, seed: int = 7,
                        tags: Optional[Sequence[str]] = None,
                        nested_probability: float = 0.3) -> List[str]:
    """Substream-extraction subscriptions (content routing, not verdicts).

    Shapes tuned for substream delivery over the
    :func:`repro.xmlmodel.generator.tagged_sections_document` vocabulary:
    most subscriptions select *bounded leaf-ish subtrees* (the realistic
    payload unit a router forwards), and with probability
    ``nested_probability`` a subscription instead selects a whole inner
    section — so extracted regions routinely nest and overlap across
    subscribers, exercising the shared tee buffer rather than one isolated
    window per match.
    """
    if count < 1:
        raise ValueError("need at least one subscription")
    if tags is None:
        tags = low_overlap_tags()
    rng = random.Random(seed)
    subscriptions: List[str] = []
    for index in range(count):
        root = tags[index % len(tags)]
        if rng.random() < nested_probability:
            # A containing region: its payload encloses what the leaf-ish
            # subscriptions below it extract.
            subscriptions.append(f"/descendant::{root}")
        else:
            leaf = rng.choice(tags)
            axis = rng.choice(("child", "descendant"))
            subscriptions.append(f"/descendant::{root}/{axis}::{leaf}")
    return subscriptions


#: Attribute vocabulary of :func:`attribute_subscription_workload` — the
#: *same* tuples the document generator uses, so subscriptions and
#: :func:`repro.xmlmodel.generator.item_feed_document` can never drift apart.
ITEM_FEED_CATEGORIES = ITEM_CATEGORIES
ITEM_FEED_CURRENCIES = ITEM_CURRENCIES


def attribute_subscription_workload(count: int, seed: int = 7,
                                    item_ids: int = 50,
                                    categories: Sequence[str] = ITEM_FEED_CATEGORIES,
                                    reverse_probability: float = 0.15) -> List[str]:
    """Attribute-qualified SDI subscriptions (YFilter-style, extension).

    Real publish/subscribe workloads are dominated by attribute-qualified
    subscriptions — ``//item[@id="42"]/price`` and friends — which the
    paper's attribute-free fragment cannot express.  This generator produces
    exactly those shapes over the :func:`item_feed_document` vocabulary:
    value-qualified ids and categories, attribute existence tests, attribute
    selections (``/@id``), and (with ``reverse_probability``) a reverse step
    that the subscription index rewrites away — including reverse steps
    *from attribute nodes*, exercising the driver's attribute lemmas.
    """
    if count < 1:
        raise ValueError("need at least one subscription")
    rng = random.Random(seed)
    shapes = (
        lambda: f'//item[@id="{rng.randrange(item_ids)}"]/price',
        lambda: f'//item[@category="{rng.choice(categories)}"]',
        lambda: f'//item[@category="{rng.choice(categories)}"]/title',
        lambda: f'//price[@currency="{rng.choice(ITEM_FEED_CURRENCIES)}"]',
        lambda: '//item[@featured]/price',
        lambda: f'//item[@id="{rng.randrange(item_ids)}"]/@category',
        lambda: '/descendant::item/attribute::id',
        lambda: '//item[@featured="yes" or @category="books"]',
        lambda: f'//price[@currency][. = "{rng.randint(1, 99)}"]',
    )
    reverse_shapes = (
        lambda: f'//price[@currency="{rng.choice(ITEM_FEED_CURRENCIES)}"]/parent::item',
        lambda: f'//item/@id/parent::item[@category="{rng.choice(categories)}"]',
        lambda: '//price/@currency/ancestor::item/title',
    )
    subscriptions: List[str] = []
    for _ in range(count):
        pool = reverse_shapes if rng.random() < reverse_probability else shapes
        subscriptions.append(rng.choice(pool)())
    return subscriptions


def differential_query_pool(count: int, seed: int = 7,
                            tags: Sequence[str] = ("a", "b", "c", "d"),
                            attribute_names: Sequence[str] = ("id", "kind",
                                                              "lang"),
                            attribute_values: Sequence[str] = ("1", "2",
                                                               "x", "y")) -> List[str]:
    """Queries spanning every backend-relevant shape (differential testing).

    The three-way backend-equivalence suite (lazy DFA == expectation engine
    == DOM baseline) needs query pools that hit every dispatch regime at
    once: structurally decided spines (pure automaton), qualifier gates
    (automaton hands off to expectations mid-spine), ``following``/
    ``following-sibling`` steps — including as the *first* step and behind
    ``//`` descents (compiled into close-event-armed sibling windows) —
    attribute steps and value comparisons, joins against absolute
    sub-paths, and unions mixing all of the above.  Tags and attribute
    vocabulary default to the ones
    :func:`repro.xmlmodel.generator.random_document` emits, so the shapes
    actually select nodes.
    """
    if count < 1:
        raise ValueError("need at least one query")
    rng = random.Random(seed)
    forward = ("child", "descendant", "descendant-or-self", "self")
    gated = forward + ("following", "following-sibling")

    def tag():
        return rng.choice(tuple(tags) + ("*", "node()"))

    def qualifier():
        roll = rng.random()
        if roll < 0.3:
            return f"[@{rng.choice(tuple(attribute_names))}]"
        if roll < 0.55:
            return (f'[@{rng.choice(tuple(attribute_names))} = '
                    f'"{rng.choice(tuple(attribute_values))}"]')
        if roll < 0.8:
            return f"[{rng.choice(gated)}::{tag()}]"
        return f"[self::node() = /descendant::{rng.choice(tuple(tags))}]"

    def spine(max_steps, axes):
        parts = []
        for _ in range(rng.randint(1, max_steps)):
            step = f"{rng.choice(axes)}::{tag()}"
            if rng.random() < 0.4:
                step += qualifier()
            parts.append(step)
        return "/".join(parts)

    shapes = (
        lambda: "/" + spine(3, forward),
        lambda: "/" + spine(3, gated),
        lambda: f"/descendant::{rng.choice(tuple(tags))}"
                f"/@{rng.choice(tuple(attribute_names))}",
        lambda: f"//{rng.choice(tuple(tags))}"
                f"[@{rng.choice(tuple(attribute_names))}"
                f' = "{rng.choice(tuple(attribute_values))}"]',
        lambda: "/descendant::" + rng.choice(tuple(tags)) + "/attribute::*",
        lambda: "/" + spine(2, forward) + "/child::text()",
        lambda: "/" + spine(2, forward) + " | /" + spine(2, gated),
        # First-step sibling windows (empty at the root, arming below it
        # through union members) and deep windows behind // descents.
        lambda: ("/" + rng.choice(("following", "following-sibling"))
                 + f"::{tag()}"),
        lambda: (f"//{rng.choice(tuple(tags))}/"
                 + rng.choice(("following", "following-sibling"))
                 + f"::{tag()}"),
        lambda: f"//{rng.choice(tuple(tags))}//following::{tag()}",
        lambda: ("/" + spine(1, forward) + "/following-sibling::"
                 + rng.choice(tuple(tags)) + " | /" + spine(2, gated)),
    )
    return [rng.choice(shapes)() for _ in range(count)]


def random_reverse_path(seed: int, max_steps: int = 4,
                        qualifier_probability: float = 0.4,
                        tags: Sequence[str] = JOURNAL_TAGS) -> str:
    """A random absolute path with reverse axes and optional qualifiers.

    Used by the coverage experiment (E10): the generated paths exercise every
    reverse axis both on the spine and inside qualifiers.
    """
    rng = random.Random(seed)
    count = rng.randint(2, max_steps)
    steps = [f"descendant::{rng.choice(tags)}"]
    for index in range(count - 1):
        axis = rng.choice(REVERSE_AXES + ("child", "descendant", "following",
                                          "following-sibling", "self"))
        test = rng.choice(tags + ("*", "node()"))
        step = f"{axis}::{test}"
        if rng.random() < qualifier_probability:
            inner_axis = rng.choice(REVERSE_AXES + ("child", "descendant"))
            inner_test = rng.choice(tags + ("*",))
            step += f"[{inner_axis}::{inner_test}]"
        steps.append(step)
    return "/" + "/".join(steps)
