"""Document workloads for the streaming experiments (E9).

The paper motivates streaming with data-centric documents that are too large
for an in-memory representation; the workloads scale the Figure 1 journal
catalogue from a few hundred nodes to hundreds of thousands so that the
memory gap between the DOM baseline and the streaming evaluator is visible,
while staying fast enough for a benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.xmlmodel.document import Document
from repro.xmlmodel.generator import DocumentSpec, journal_document


@dataclass(frozen=True)
class WorkloadDocument:
    """A named, lazily-built benchmark document."""

    name: str
    spec: DocumentSpec

    def build(self) -> Document:
        """Materialize the document (deterministic for a given spec)."""
        return journal_document(self.spec)


STREAMING_DOCUMENTS: List[WorkloadDocument] = [
    WorkloadDocument("catalogue-small", DocumentSpec(journals=20, articles_per_journal=4,
                                                     authors_per_article=2)),
    WorkloadDocument("catalogue-medium", DocumentSpec(journals=100, articles_per_journal=6,
                                                      authors_per_article=3)),
    WorkloadDocument("catalogue-large", DocumentSpec(journals=400, articles_per_journal=8,
                                                     authors_per_article=3)),
]


def streaming_documents() -> List[WorkloadDocument]:
    """The document scale ladder used by experiment E9."""
    return list(STREAMING_DOCUMENTS)
