"""Axis navigation and node tests over the in-memory document model.

Each axis function returns the selected nodes in document order.  The
definitions follow XPath 1.0 restricted to the paper's data model plus the
attribute extension (namespaces stay out):

* ``self`` — the context node,
* ``child`` / ``descendant`` / ``descendant-or-self`` — structural downward axes,
* ``parent`` / ``ancestor`` / ``ancestor-or-self`` — structural upward axes,
* ``following-sibling`` / ``preceding-sibling`` — siblings after/before the
  context node,
* ``following`` — all nodes after the context node in document order,
  excluding its descendants,
* ``preceding`` — all nodes before the context node in document order,
  excluding its ancestors,
* ``attribute`` — the attribute nodes of an element context node.

Attribute nodes deliberately sit outside the tree axes: they are selected
*only* by the attribute axis, their upward axes (``parent``/``ancestor``)
lead to the owner element, and they have no children, no siblings, and take
part in neither ``following`` nor ``preceding`` (either as context or as
result).  This is the invariant the reverse-axis rewrite lemmas rely on —
a forward search through ``descendant``/``following`` can never accidentally
route through an attribute node.
"""

from __future__ import annotations

from typing import List

from repro.errors import EvaluationError
from repro.xpath.ast import NodeTest, NodeTestKind
from repro.xpath.axes import Axis
from repro.xmlmodel.node import XMLNode


def node_test_matches(test: NodeTest, node: XMLNode) -> bool:
    """Whether ``node`` satisfies the node test.

    Following XPath 1.0: a tag-name test and ``*`` match element nodes only,
    ``text()`` matches text nodes, ``node()`` matches every node (including
    the root).  An attribute test matches attribute nodes — any of them for
    ``@*``, by name otherwise; since only the attribute axis ever yields
    attribute nodes, the test is axis-independent.
    """
    if test.kind is NodeTestKind.NODE:
        return True
    if test.kind is NodeTestKind.TEXT:
        return node.is_text
    if test.kind is NodeTestKind.WILDCARD:
        return node.is_element
    if test.kind is NodeTestKind.NAME:
        return node.is_element and node.tag == test.name
    if test.kind is NodeTestKind.ATTRIBUTE:
        return node.is_attribute and (test.name is None or node.tag == test.name)
    raise EvaluationError(f"unknown node test kind {test.kind!r}")


def _self(node: XMLNode) -> List[XMLNode]:
    return [node]


def _child(node: XMLNode) -> List[XMLNode]:
    return list(node.children)


def _descendant(node: XMLNode) -> List[XMLNode]:
    return list(node.iter_descendants())


def _descendant_or_self(node: XMLNode) -> List[XMLNode]:
    return list(node.iter_descendants_or_self())


def _parent(node: XMLNode) -> List[XMLNode]:
    return [node.parent] if node.parent is not None else []


def _ancestor(node: XMLNode) -> List[XMLNode]:
    ancestors = list(node.iter_ancestors())
    ancestors.reverse()
    return ancestors


def _ancestor_or_self(node: XMLNode) -> List[XMLNode]:
    return _ancestor(node) + [node]


def _following_sibling(node: XMLNode) -> List[XMLNode]:
    return list(node.iter_following_siblings())


def _preceding_sibling(node: XMLNode) -> List[XMLNode]:
    siblings = list(node.iter_preceding_siblings())
    siblings.reverse()
    return siblings


def _following(node: XMLNode) -> List[XMLNode]:
    if node.document is None:
        raise EvaluationError("node is not attached to a document")
    if node.is_attribute:
        # Attribute nodes take part in neither following nor preceding.
        return []
    end_of_subtree = node._subtree_end
    return [
        other
        for other in node.document.nodes[end_of_subtree + 1:]
        if not other.is_attribute
    ]


def _preceding(node: XMLNode) -> List[XMLNode]:
    if node.document is None:
        raise EvaluationError("node is not attached to a document")
    if node.is_attribute:
        return []
    ancestors = set(id(a) for a in node.iter_ancestors())
    return [
        other
        for other in node.document.nodes[: node.position]
        if id(other) not in ancestors and not other.is_attribute
    ]


def _attribute(node: XMLNode) -> List[XMLNode]:
    return list(node.attributes)


_AXIS_FUNCTIONS = {
    Axis.SELF: _self,
    Axis.CHILD: _child,
    Axis.DESCENDANT: _descendant,
    Axis.DESCENDANT_OR_SELF: _descendant_or_self,
    Axis.PARENT: _parent,
    Axis.ANCESTOR: _ancestor,
    Axis.ANCESTOR_OR_SELF: _ancestor_or_self,
    Axis.FOLLOWING_SIBLING: _following_sibling,
    Axis.PRECEDING_SIBLING: _preceding_sibling,
    Axis.FOLLOWING: _following,
    Axis.PRECEDING: _preceding,
    Axis.ATTRIBUTE: _attribute,
}


def axis_nodes(node: XMLNode, axis: Axis) -> List[XMLNode]:
    """All nodes reachable from ``node`` along ``axis``, in document order."""
    try:
        return _AXIS_FUNCTIONS[axis](node)
    except KeyError:  # pragma: no cover - defensive
        raise EvaluationError(f"unsupported axis {axis!r}") from None
