"""Empirical path-equivalence checking (Definition 3.1).

Two location paths are equivalent when they select the same node set for
*every* document and *every* context node.  Checking that universally is
undecidable to do by enumeration, but the paper's equivalences are
*structural*: if a rewrite is wrong it is wrong on small documents already.
The property-based tests therefore check candidate equivalences on pools of
randomized documents at every context node, which reliably catches incorrect
rules (and indeed caught the four paper errata documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.semantics.evaluator import evaluate
from repro.xmlmodel.document import Document
from repro.xmlmodel.generator import RandomDocumentPool
from repro.xmlmodel.node import XMLNode
from repro.xpath.ast import PathExpr
from repro.xpath.serializer import to_string


@dataclass
class EquivalenceReport:
    """Outcome of an empirical equivalence check.

    ``equivalent`` is ``True`` when no counterexample was found.  When a
    counterexample exists, ``document``, ``context`` and the two differing
    node-position lists describe it.
    """

    left: PathExpr
    right: PathExpr
    equivalent: bool = True
    checks: int = 0
    document: Optional[Document] = None
    context: Optional[XMLNode] = None
    left_result: List[int] = field(default_factory=list)
    right_result: List[int] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable summary, used in test failure messages."""
        if self.equivalent:
            return (
                f"{to_string(self.left)}  ≡  {to_string(self.right)}  "
                f"({self.checks} context checks)"
            )
        context_label = self.context.label() if self.context is not None else "?"
        return (
            f"NOT equivalent at context {context_label}:\n"
            f"  left : {to_string(self.left)} -> {self.left_result}\n"
            f"  right: {to_string(self.right)} -> {self.right_result}"
        )


def paths_equivalent_on(left: PathExpr, right: PathExpr,
                        documents: Iterable[Document],
                        contexts: Optional[Sequence[XMLNode]] = None
                        ) -> EquivalenceReport:
    """Check ``left ≡ right`` on the given documents.

    When ``contexts`` is ``None`` every node of every document is used as
    context node (the quantification of Definition 3.1 restricted to the
    given documents).
    """
    report = EquivalenceReport(left=left, right=right)
    for document in documents:
        nodes = contexts if contexts is not None else document.nodes
        for context in nodes:
            left_result = [n.position for n in evaluate(left, document, context)]
            right_result = [n.position for n in evaluate(right, document, context)]
            report.checks += 1
            if left_result != right_result:
                report.equivalent = False
                report.document = document
                report.context = context
                report.left_result = left_result
                report.right_result = right_result
                return report
    return report


def counterexample(left: PathExpr, right: PathExpr,
                   documents: Optional[Iterable[Document]] = None
                   ) -> Optional[EquivalenceReport]:
    """Search the default document pool for a counterexample to ``left ≡ right``.

    Returns ``None`` when no counterexample is found, otherwise the failing
    report.  Used both by tests and by the errata demonstrations.
    """
    if documents is None:
        documents = RandomDocumentPool().documents()
    report = paths_equivalent_on(left, right, documents)
    return None if report.equivalent else report
