"""Denotational semantics of xPath (System S5 in DESIGN.md).

The evaluator implements the set-of-nodes semantics ``S[[p]]x`` used in the
paper (Definition 3.1, after Wadler's formal semantics of XPath): the
meaning of a location path ``p`` relative to a context node ``x`` is the set
of nodes it selects.  This is the *reference* semantics against which the
rewrite rules and the streaming evaluator are validated.
"""

from repro.semantics.evaluator import evaluate, evaluate_qualifier
from repro.semantics.axes_impl import axis_nodes, node_test_matches
from repro.semantics.equivalence import (
    EquivalenceReport,
    counterexample,
    paths_equivalent_on,
)

__all__ = [
    "evaluate",
    "evaluate_qualifier",
    "axis_nodes",
    "node_test_matches",
    "paths_equivalent_on",
    "counterexample",
    "EquivalenceReport",
]
