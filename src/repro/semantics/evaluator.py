"""Reference evaluator for xPath: the denotational semantics S[[p]]x.

``evaluate(path, document, context)`` returns the set of nodes selected by
``path`` from the context node, as a list in document order.  Absolute paths
ignore the context node and start from the document root; relative paths
start from the context node (which defaults to the root, matching how the
paper evaluates absolute queries).

The evaluator is deliberately straightforward — per-step node-set expansion
with qualifier filtering — because its role is to be an *obviously correct*
reference against which the rewrite rules (Sections 3 and 4) and the
streaming evaluator are checked.  Performance-sensitive evaluation is the job
of :mod:`repro.streaming`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.errors import EvaluationError
from repro.semantics.axes_impl import axis_nodes, node_test_matches
from repro.xmlmodel.document import Document
from repro.xmlmodel.node import XMLNode
from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    Literal,
    LocationPath,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
)


def evaluate(path: PathExpr, document: Document,
             context: Optional[XMLNode] = None) -> List[XMLNode]:
    """Evaluate ``path`` on ``document`` from ``context`` (default: the root).

    Returns the selected nodes as a list in document order without
    duplicates — the set ``S[[p]]x`` of the paper.
    """
    if context is None:
        context = document.root
    if context.document is not document:
        raise EvaluationError("context node does not belong to the document")
    result = _evaluate_path(path, document, context)
    return document.sorted_in_document_order(result)


def _evaluate_path(path: PathExpr, document: Document,
                   context: XMLNode) -> Set[XMLNode]:
    if isinstance(path, Bottom):
        return set()
    if isinstance(path, Literal):
        raise EvaluationError(
            "a string literal is not a node-selecting path; it may only "
            "appear as a '=' comparison operand")
    if isinstance(path, Union):
        result: Set[XMLNode] = set()
        for member in path.members:
            result |= _evaluate_path(member, document, context)
        return result
    if isinstance(path, LocationPath):
        if path.absolute:
            current: Set[XMLNode] = {document.root}
        else:
            current = {context}
        for step in path.steps:
            current = _evaluate_step(step, document, current)
            if not current:
                break
        return current
    raise EvaluationError(f"not a path expression: {path!r}")


def _evaluate_step(step: Step, document: Document,
                   context_nodes: Iterable[XMLNode]) -> Set[XMLNode]:
    """Apply one location step to a set of context nodes."""
    selected: Set[XMLNode] = set()
    for context in context_nodes:
        for candidate in axis_nodes(context, step.axis):
            if not node_test_matches(step.node_test, candidate):
                continue
            if candidate in selected:
                continue
            if all(
                evaluate_qualifier(qual, document, candidate)
                for qual in step.qualifiers
            ):
                selected.add(candidate)
    return selected


def evaluate_qualifier(qual: Qualifier, document: Document,
                       context: XMLNode) -> bool:
    """Evaluate a qualifier (predicate) at a context node.

    * a path qualifier is true iff the path selects at least one node,
    * ``and`` / ``or`` combine qualifiers,
    * ``p1 == p2`` is true iff the two paths select a common node
      (node-identity join),
    * ``p1 = p2`` is true iff some node selected by ``p1`` and some node
      selected by ``p2`` have equal string values (XPath 1.0 general
      comparison restricted to node sets); an operand may also be a string
      literal (attribute extension), contributing exactly that value.
    """
    if isinstance(qual, PathQualifier):
        return bool(_evaluate_path(qual.path, document, context))
    if isinstance(qual, AndExpr):
        return (evaluate_qualifier(qual.left, document, context)
                and evaluate_qualifier(qual.right, document, context))
    if isinstance(qual, OrExpr):
        return (evaluate_qualifier(qual.left, document, context)
                or evaluate_qualifier(qual.right, document, context))
    if isinstance(qual, Comparison):
        if qual.op == "==":
            left = _evaluate_path(qual.left, document, context)
            right = _evaluate_path(qual.right, document, context)
            return bool(left & right)
        left_values = _operand_values(qual.left, document, context)
        right_values = _operand_values(qual.right, document, context)
        return bool(left_values & right_values)
    raise EvaluationError(f"not a qualifier: {qual!r}")


def _operand_values(operand: PathExpr, document: Document,
                    context: XMLNode) -> Set[str]:
    """The string values a ``=`` operand contributes to the comparison."""
    if isinstance(operand, Literal):
        return {operand.value}
    return {node.text_content()
            for node in _evaluate_path(operand, document, context)}


def select_positions(path: PathExpr, document: Document,
                     context: Optional[XMLNode] = None) -> List[int]:
    """Like :func:`evaluate` but returning document-order positions.

    Positions are what the streaming evaluator reports (it never materializes
    node objects), so comparisons between the two evaluators go through this
    helper.
    """
    return [node.position for node in evaluate(path, document, context)]
