"""Canned documents used throughout the paper, tests and examples.

The most important one is :func:`figure1_document`, the journal document of
Figure 1, on which all worked examples of the paper (Examples 3.1-3.3 and the
Figure 3/4 traces) are defined.
"""

from __future__ import annotations

from repro.xmlmodel.document import Document, element, text

FIGURE1_XML = """\
<journal>
  <title>databases</title>
  <editor>anna</editor>
  <authors>
    <name>anna</name>
    <name>bob</name>
  </authors>
  <price />
</journal>
"""


def figure1_document() -> Document:
    """The document of Figure 1 of the paper.

    ::

        root
         └─ journal
             ├─ title   ─ "databases"
             ├─ editor  ─ "anna"
             ├─ authors ─ name ─ "anna"
             │            name ─ "bob"
             └─ price
    """
    return Document.from_tree(
        element(
            "journal",
            element("title", text("databases")),
            element("editor", text("anna")),
            element(
                "authors",
                element("name", text("anna")),
                element("name", text("bob")),
            ),
            element("price"),
        )
    )


def two_journal_document() -> Document:
    """A two-journal catalogue used by tests for queries spanning journals.

    The second journal has no title, which matters for Example 3.1's variant
    query ("only prices inside a journal with a title").
    """
    return Document.from_tree(
        element(
            "catalogue",
            element(
                "journal",
                element("title", text("databases")),
                element("editor", text("anna")),
                element(
                    "authors",
                    element("name", text("anna")),
                    element("name", text("bob")),
                ),
                element("price"),
            ),
            element(
                "journal",
                element("editor", text("carla")),
                element(
                    "authors",
                    element("name", text("dan")),
                ),
                element("price"),
            ),
        )
    )
