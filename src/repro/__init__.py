"""repro — a reproduction of "XPath: Looking Forward" (EDBT 2002).

The package implements the paper's reverse-axis-removal rewriting (RuleSet1,
RuleSet2 and the ``rare`` algorithm) together with every substrate it needs:
an XML data model and SAX-like event streams, the xPath language front end,
the reference denotational semantics, a streaming evaluator for
reverse-axis-free paths, baselines, workloads and benchmarks.

Typical use::

    from repro import parse_xpath, remove_reverse_axes, to_string

    path = parse_xpath("/descendant::price/preceding::name")
    forward_only = remove_reverse_axes(path, ruleset="ruleset2")
    print(to_string(forward_only))
    # /descendant::name[following::price]

and, to evaluate the rewritten query progressively over a stream::

    from repro import journal_document, document_events, stream_evaluate

    document = journal_document(journals=1000)
    result = stream_evaluate(forward_only, document_events(document))
    print(len(result), result.stats.memory_units)

For the paper's selective-dissemination use case — thousands of standing
subscriptions matched against each incoming document — compile them into a
:class:`SubscriptionIndex` once and match every document in a single pass;
reverse axes are rewritten away automatically and subscriptions sharing
leading steps share matching state::

    from repro import SubscriptionIndex

    index = SubscriptionIndex({
        "pricing-team": "/descendant::price/preceding::name",
        "editors-desk": "/descendant::editor[parent::journal]",
    })
    print(index.matching(document_events(document)))   # -> matching keys
    result = index.evaluate(document_events(document)) # -> per-subscription ids
    print(result["pricing-team"].node_ids, result.stats.memory_units)
"""

from repro.datasets import FIGURE1_XML, figure1_document, two_journal_document
from repro.errors import (
    EvaluationError,
    ReproError,
    ReverseAxisStreamingError,
    RewriteError,
    RewriteLimitExceeded,
    RRJoinError,
    UnsupportedPathError,
    XMLSyntaxError,
    XPathSyntaxError,
)
from repro.semantics import evaluate, paths_equivalent_on
from repro.xmlmodel import (
    Document,
    PushTokenizer,
    StreamSerializer,
    build_document,
    document_events,
    element,
    item_feed_document,
    iter_events,
    iter_serialized,
    journal_document,
    parse_xml,
    serialize_events,
    text,
    to_xml,
)
from repro.xpath import (
    QueryCache,
    clear_compile_cache,
    compile_cache_info,
    compile_query,
    parse_xpath,
    to_string,
)
from repro.rewrite import (
    RareResult,
    RewriteTrace,
    RuleSet1,
    RuleSet2,
    rare,
    remove_reverse_axes,
    simplify,
)
from repro.streaming import (
    BrokerStats,
    Delivery,
    DocumentBroker,
    DocumentRecord,
    MultiMatcher,
    MultiMatchResult,
    NodeIdDelivery,
    StreamResult,
    StreamStats,
    SubstreamDelivery,
    Subscription,
    SubscriptionIndex,
    SubscriptionResult,
    VerdictDelivery,
    buffered_evaluate,
    dom_evaluate,
    stream_evaluate,
    stream_matches,
)

__version__ = "1.0.0"

__all__ = [
    # language front end
    "parse_xpath",
    "to_string",
    "compile_query",
    "compile_cache_info",
    "clear_compile_cache",
    "QueryCache",
    # rewriting
    "rare",
    "remove_reverse_axes",
    "simplify",
    "RareResult",
    "RewriteTrace",
    "RuleSet1",
    "RuleSet2",
    # data model
    "Document",
    "parse_xml",
    "iter_events",
    "PushTokenizer",
    "build_document",
    "document_events",
    "element",
    "text",
    "to_xml",
    "StreamSerializer",
    "serialize_events",
    "iter_serialized",
    "journal_document",
    "item_feed_document",
    "figure1_document",
    "two_journal_document",
    "FIGURE1_XML",
    # evaluation
    "evaluate",
    "paths_equivalent_on",
    "stream_evaluate",
    "stream_matches",
    "dom_evaluate",
    "buffered_evaluate",
    "StreamResult",
    "StreamStats",
    # multi-subscription engine (SDI)
    "Subscription",
    "SubscriptionIndex",
    "SubscriptionResult",
    "MultiMatcher",
    "MultiMatchResult",
    # emission layer (what a decided match delivers)
    "Delivery",
    "VerdictDelivery",
    "NodeIdDelivery",
    "SubstreamDelivery",
    # push-mode serving layer
    "DocumentBroker",
    "BrokerStats",
    "DocumentRecord",
    # errors
    "ReproError",
    "XMLSyntaxError",
    "XPathSyntaxError",
    "EvaluationError",
    "RewriteError",
    "UnsupportedPathError",
    "RRJoinError",
    "RewriteLimitExceeded",
    "ReverseAxisStreamingError",
    "__version__",
]
