"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single exception type at the API boundary.  The more
specific subclasses mirror the stages of the pipeline: parsing XML text,
parsing xPath expressions, evaluating paths, rewriting them and streaming
them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class XMLSyntaxError(ReproError):
    """Raised when XML text is not well formed.

    The lightweight tokenizer in :mod:`repro.xmlmodel.parser` raises this
    with a message containing the byte offset of the offending construct.
    """

    def __init__(self, message, position=None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XPathSyntaxError(ReproError):
    """Raised when an xPath expression cannot be parsed."""

    def __init__(self, message, position=None, expression=None):
        detail = message
        if expression is not None and position is not None:
            pointer = " " * position + "^"
            detail = f"{message}\n  {expression}\n  {pointer}"
        super().__init__(detail)
        self.position = position
        self.expression = expression


class EvaluationError(ReproError):
    """Raised when a path cannot be evaluated on a document."""


class RewriteError(ReproError):
    """Base class for rewriting failures."""


class UnsupportedPathError(RewriteError):
    """Raised when a path lies outside the input class of ``rare``.

    Theorems 4.1 and 4.2 of the paper restrict the input of ``rare`` to
    *absolute* paths whose qualifiers contain no *RR joins* (Definition 4.2).
    Relative paths and RR joins can still be handled with the variable-based
    extension in :mod:`repro.rewrite.variables`.
    """


class RRJoinError(UnsupportedPathError):
    """Raised when a qualifier contains an RR join (Definition 4.2)."""


class RewriteLimitExceeded(RewriteError):
    """Raised when a rewrite exceeds the configured rule-application budget.

    RuleSet2 has exponential worst-case behaviour (Theorem 4.2); the limit is
    a safety valve so that callers get a clear error instead of an unbounded
    computation.
    """


class StreamingError(ReproError):
    """Base class for streaming-evaluation failures."""


class ReverseAxisStreamingError(StreamingError):
    """Raised when a path handed to the streaming evaluator has reverse axes.

    The streaming evaluator only supports forward axes; reverse axes must be
    removed first with :func:`repro.remove_reverse_axes`.
    """
