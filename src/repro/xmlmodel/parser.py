"""XML text parsing: a hand-written tokenizer and an ``xml.sax`` adapter.

Two independent front ends produce the same event stream:

* :class:`PushTokenizer` / :func:`iter_events` — a small, dependency-free
  tokenizer for the simplified XML dialect of the paper extended with
  attributes (elements, attributes and character data; comments, processing
  instructions and the XML declaration are accepted on input but dropped,
  matching Section 2 "specificities of XML that are irrelevant to the issue
  of concern are left out").  Attributes are parsed from start tags — quoted
  values with either quote style, entity references inside values, XML
  whitespace normalization — and delivered on the
  :class:`~repro.xmlmodel.events.StartElement` event.  The tokenizer is
  *incremental*: input arrives through ``feed(chunk)`` in arbitrarily split
  ``str``/``bytes`` pieces — mid-tag, mid-attribute-value, mid-entity,
  mid-CDATA — and events come out as soon as they are complete.
  :func:`iter_events` is a thin pull-mode wrapper over it.
* :func:`iter_events_sax` — the same stream produced through the standard
  library's :mod:`xml.sax` parser, useful as a cross-check and for documents
  that use the full XML syntax.

Both yield :class:`repro.xmlmodel.events.Event` objects with document-order
node ids, and both can feed either the tree builder or the streaming
evaluator directly.
"""

from __future__ import annotations

import codecs
import io
import xml.sax
import xml.sax.handler
from typing import Iterator, List, Tuple, Union

from repro.errors import XMLSyntaxError
from repro.xmlmodel.builder import build_document
from repro.xmlmodel.document import Document
from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)

_ENTITY_TABLE = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}


def _decode_entities(raw: str, offset: int) -> str:
    """Replace the five predefined XML entities in character data."""
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        char = raw[i]
        if char != "&":
            out.append(char)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", offset + i)
        name = raw[i + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITY_TABLE:
            out.append(_ENTITY_TABLE[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", offset + i)
        i = end + 1
    return "".join(out)


def _parse_tag_name(content: str, offset: int) -> str:
    """Extract the element name from the inside of a (closing) tag."""
    name = content.split()[0] if content.split() else ""
    if not name:
        raise XMLSyntaxError("empty tag name", offset)
    return name


_WHITESPACE = " \t\n\r"


def _normalize_attribute_value(raw: str, offset: int) -> str:
    """Decode an attribute value: whitespace normalization, then entities.

    XML end-of-line handling collapses a literal ``\\r\\n`` pair to one
    newline first; then literal tabs/newlines become spaces, all *before*
    entity decoding so character references (``&#10;``) survive verbatim —
    the order prescribed by the XML attribute-value normalization algorithm
    and implemented by expat, keeping the hand tokenizer byte-for-byte
    compatible with the :mod:`xml.sax` front end.
    """
    if "\r" in raw:
        raw = raw.replace("\r\n", "\n")
    for char in "\t\n\r":
        if char in raw:
            raw = raw.replace(char, " ")
    return _decode_entities(raw, offset)


def _parse_start_tag(content: str, offset: int):
    """Parse the inside of a start tag into ``(name, attributes)``.

    ``attributes`` is a tuple of ``(name, value)`` pairs in document order.
    Values must be quoted (either quote style); the five predefined entities
    and character references are decoded; duplicate attribute names are
    rejected, as the SAX front end rejects them.
    """
    length = len(content)
    i = 0
    while i < length and content[i] not in _WHITESPACE:
        i += 1
    name = content[:i]
    if not name:
        raise XMLSyntaxError("empty tag name", offset)
    attributes = []
    seen = set()
    while True:
        while i < length and content[i] in _WHITESPACE:
            i += 1
        if i >= length:
            break
        start = i
        while i < length and content[i] not in _WHITESPACE and content[i] != "=":
            i += 1
        attr_name = content[start:i]
        if not attr_name or not (attr_name[0].isalpha()
                                 or attr_name[0] in "_:"):
            raise XMLSyntaxError(
                f"malformed attribute name {attr_name!r} in <{name}> tag",
                offset + start)
        while i < length and content[i] in _WHITESPACE:
            i += 1
        if i >= length or content[i] != "=":
            raise XMLSyntaxError(
                f"attribute {attr_name!r} is missing '=value'", offset + i)
        i += 1
        while i < length and content[i] in _WHITESPACE:
            i += 1
        if i >= length or content[i] not in "\"'":
            raise XMLSyntaxError(
                f"attribute {attr_name!r} requires a quoted value",
                offset + i)
        quote = content[i]
        i += 1
        end = content.find(quote, i)
        if end == -1:
            raise XMLSyntaxError(
                f"unterminated value of attribute {attr_name!r}", offset + i)
        if "<" in content[i:end]:
            # XML 1.0 forbids a raw '<' in attribute values (write &lt;);
            # the SAX front end rejects it, so the hand tokenizer must too.
            raise XMLSyntaxError(
                f"literal '<' in value of attribute {attr_name!r}",
                offset + i)
        if attr_name in seen:
            raise XMLSyntaxError(
                f"duplicate attribute {attr_name!r} in <{name}> tag",
                offset + start)
        seen.add(attr_name)
        attributes.append(
            (attr_name, _normalize_attribute_value(content[i:end], offset + i)))
        i = end + 1
        if i < length and content[i] not in _WHITESPACE:
            # '<a x="1"y="2">' — conforming parsers (and the SAX front end)
            # require whitespace between attributes.
            raise XMLSyntaxError(
                f"missing whitespace after attribute {attr_name!r} in "
                f"<{name}> tag", offset + i)
    return name, tuple(attributes)


#: Markup openers that need more than two characters to classify.  A buffer
#: that is a proper prefix of one of these cannot be tokenized yet.
_AMBIGUOUS_OPENERS = ("<!--", "<![CDATA[")

Chunk = Union[str, bytes, bytearray, memoryview]


class PushTokenizer:
    """Incremental (push-mode) tokenizer for the paper's XML dialect.

    Input arrives through :meth:`feed` as ``str`` or ``bytes`` chunks split
    at *arbitrary* positions — in the middle of a tag, an entity reference, a
    comment, a processing instruction, a CDATA section, or (for bytes) a
    multi-byte UTF-8 sequence.  Each call returns the events that became
    complete; :meth:`close` ends the document, returning the final events
    (at least :class:`~repro.xmlmodel.events.EndDocument`).

    The event stream — ids, coalescing, whitespace handling, errors — is
    identical to tokenizing the concatenated input in one go, a property the
    chunk-boundary tests assert at every 1-byte split.
    ``StartDocument`` is emitted by the first ``feed`` (or by ``close`` on an
    empty document).

    Only the *current incomplete construct* is buffered: completed character
    data and markup are consumed as soon as their end is visible, so memory
    is bounded by the largest single token, not by the document.
    """

    def __init__(self, keep_whitespace: bool = False):
        self._keep_whitespace = keep_whitespace
        self._decoder = None  # incremental UTF-8 decoder, created on demand
        #: Unconsumed input.  Invariant after every scan: empty, or starts
        #: with the ``<`` of an incomplete markup construct.
        self._buf = ""
        #: Absolute document offset of ``_buf[0]`` (for error positions).
        self._base = 0
        #: Resume point for terminator searches inside an incomplete
        #: construct, so byte-at-a-time feeding does not rescan the construct
        #: from its start on every call.
        self._search_from = 0
        #: Open quote character while resuming inside an element tag whose
        #: attribute value contains ``>`` (the tag-end scan is quote-aware).
        self._tag_quote = ""
        self._next_id = 1
        self._open_tags: List[Tuple[str, int]] = []  # (tag, node_id)
        #: Undecoded character data of the current run (between two markup
        #: constructs); decoded as one unit so entity references may span
        #: chunk boundaries but never markup.
        self._raw_parts: List[str] = []
        self._raw_start = 0
        #: Decoded runs awaiting the flush that the next element tag forces;
        #: runs separated only by dropped markup coalesce here.
        self._pending_text: List[str] = []
        self._started = False
        self._closed = False

    # -- input decoding ----------------------------------------------------
    def _decode(self, chunk: Chunk) -> str:
        if isinstance(chunk, str):
            if self._decoder is not None and self._decoder.getstate()[0]:
                raise XMLSyntaxError(
                    "str chunk fed while a multi-byte UTF-8 sequence from a "
                    "previous bytes chunk is still incomplete")
            return chunk
        if isinstance(chunk, (bytes, bytearray, memoryview)):
            if self._decoder is None:
                self._decoder = codecs.getincrementaldecoder("utf-8")()
            try:
                return self._decoder.decode(bytes(chunk))
            except UnicodeDecodeError as exc:
                raise XMLSyntaxError(f"undecodable UTF-8 input: {exc}") from exc
        raise TypeError(f"expected str or bytes chunk, got {type(chunk).__name__}")

    # -- public API --------------------------------------------------------
    def feed(self, chunk: Chunk) -> List[Event]:
        """Consume one chunk; return the events completed by it."""
        if self._closed:
            raise XMLSyntaxError("feed() called on a closed PushTokenizer")
        events: List[Event] = []
        if not self._started:
            self._started = True
            events.append(StartDocument(node_id=0))
        text = self._decode(chunk)
        if text:
            self._buf += text
            self._scan(events)
        return events

    def close(self) -> List[Event]:
        """End the document; return the remaining events.

        Raises :class:`XMLSyntaxError` if the input so far is not a complete
        well-formed document (unterminated construct, unclosed element,
        truncated UTF-8 sequence).
        """
        if self._closed:
            raise XMLSyntaxError("close() called twice on PushTokenizer")
        events: List[Event] = []
        if not self._started:
            self._started = True
            events.append(StartDocument(node_id=0))
        if self._decoder is not None:
            try:
                self._decoder.decode(b"", final=True)
            except UnicodeDecodeError as exc:
                raise XMLSyntaxError(
                    f"truncated UTF-8 sequence at end of input: {exc}") from exc
        self._closed = True
        buf = self._buf
        if buf:
            # After a scan the buffer can only hold incomplete markup.
            if buf.startswith("<![CDATA["):
                raise XMLSyntaxError("unterminated CDATA section", self._base)
            if buf.startswith("<!--"):
                raise XMLSyntaxError("unterminated comment", self._base)
            if buf.startswith("<?"):
                raise XMLSyntaxError(
                    "unterminated processing instruction", self._base)
            raise XMLSyntaxError("unterminated tag", self._base)
        self._flush_raw()
        if self._open_tags:
            tag, _ = self._open_tags[-1]
            raise XMLSyntaxError(
                f"unclosed element <{tag}> at end of document", self._base)
        self._flush_pending(events)
        events.append(EndDocument(node_id=0))
        return events

    @property
    def closed(self) -> bool:
        return self._closed

    # -- scanning ----------------------------------------------------------
    def _trim(self, count: int) -> None:
        """Drop the consumed prefix of the buffer (once per scan, so the
        per-token cost stays O(token), not O(remaining buffer))."""
        if count:
            self._buf = self._buf[count:]
            self._base += count

    def _flush_raw(self) -> None:
        """Decode the completed character-data run into the pending buffer."""
        if not self._raw_parts:
            return
        raw = "".join(self._raw_parts)
        self._raw_parts.clear()
        bad = raw.find("]]>")
        if bad != -1:
            # XML 1.0 §2.4: "]]>" must not appear in character data except
            # closing a CDATA section (escape it as "]]&gt;").  Checked on
            # the raw run before entity decoding — "&#93;&#93;&gt;" stays
            # legal — and after joining, so a "]]"/">" chunk split cannot
            # slip through.  The expat front end rejects this; accepting it
            # here would silently diverge the two tokenizers.
            raise XMLSyntaxError("']]>' not allowed in character data",
                                 self._raw_start + bad)
        self._pending_text.append(_decode_entities(raw, self._raw_start))

    def _flush_pending(self, events: List[Event]) -> None:
        """Emit the coalesced character data as one :class:`Text` event."""
        if not self._pending_text:
            return
        value = "".join(self._pending_text)
        self._pending_text.clear()
        if not self._open_tags:
            # Character data outside the open element tree is dropped, as in
            # the SAX adapter.
            return
        if not self._keep_whitespace:
            value = value.strip()
            if not value:
                return
        events.append(Text(value=value, node_id=self._next_id))
        self._next_id += 1

    def _scan_to(self, buf: str, terminator: str, construct_start: int,
                 default_start: int) -> int:
        """Find ``terminator``, remembering progress on a miss.

        ``_search_from`` is kept relative to the construct's own start
        (which becomes buffer position 0 after the trailing trim), so a
        construct fed byte by byte is not rescanned from its beginning on
        every call.
        """
        start = max(default_start, construct_start + self._search_from)
        position = buf.find(terminator, start)
        if position == -1:
            # Anything before len - len(terminator) + 1 can never start a
            # later match; skip it next time.
            self._search_from = max(default_start - construct_start,
                                    len(buf) - construct_start
                                    - len(terminator) + 1)
        else:
            self._search_from = 0
        return position

    def _scan_tag_end(self, buf: str, construct_start: int) -> int:
        """Find the ``>`` closing an element tag, skipping quoted values.

        Attribute values may contain a literal ``>``, so the plain
        terminator search of :meth:`_scan_to` would truncate the tag.  Like
        :meth:`_scan_to` this resumes where the previous miss stopped
        (``_search_from``), additionally carrying the open-quote state across
        chunk boundaries in ``_tag_quote``.
        """
        start = max(construct_start + 1,
                    construct_start + self._search_from)
        quote = self._tag_quote
        length = len(buf)
        i = start
        while i < length:
            char = buf[i]
            if quote:
                if char == quote:
                    quote = ""
            elif char == '"' or char == "'":
                quote = char
            elif char == ">":
                self._search_from = 0
                self._tag_quote = ""
                return i
            i += 1
        self._search_from = length - construct_start
        self._tag_quote = quote
        return -1

    def _scan(self, events: List[Event]) -> None:
        buf = self._buf
        length = len(buf)
        pos = 0
        while pos < length:
            if buf[pos] != "<":
                if not self._raw_parts:
                    self._raw_start = self._base + pos
                lt = buf.find("<", pos)
                if lt == -1:
                    # The run may continue in the next chunk (and an entity
                    # reference may be split): keep it undecoded.
                    self._raw_parts.append(buf[pos:])
                    pos = length
                    break
                self._raw_parts.append(buf[pos:lt])
                pos = lt
                continue
            # ``<`` terminates the character-data run whatever markup follows.
            self._flush_raw()
            if length - pos < 2:
                break
            second = buf[pos + 1]
            if second == "?":
                end = self._scan_to(buf, "?>", pos, pos + 2)
                if end == -1:
                    break
                # Dropped; surrounding character data coalesces across it.
                pos = end + 2
                continue
            if second == "!":
                if buf.startswith("<!--", pos):
                    end = self._scan_to(buf, "-->", pos, pos + 4)
                    if end == -1:
                        break
                    pos = end + 3
                    continue
                if buf.startswith("<![CDATA[", pos):
                    end = self._scan_to(buf, "]]>", pos, pos + 9)
                    if end == -1:
                        break
                    # CDATA is verbatim character data: no entity decoding,
                    # and it coalesces with surrounding text runs.
                    if end > pos + 9:
                        self._pending_text.append(buf[pos + 9:end])
                    pos = end + 3
                    continue
                head = buf[pos:pos + 9]  # the longest ambiguous opener
                if any(opener.startswith(head)
                       for opener in _AMBIGUOUS_OPENERS):
                    # Could still become a comment or CDATA section.
                    break
                # Doctype and other declarations: ignored by the model.
                end = self._scan_to(buf, ">", pos, pos + 2)
                if end == -1:
                    break
                pos = end + 1
                continue
            close = self._scan_tag_end(buf, pos)
            if close == -1:
                break
            content = buf[pos + 1:close]
            position = self._base + pos
            self._flush_pending(events)
            if content.startswith("/"):
                tag = _parse_tag_name(content[1:], position)
                if not self._open_tags:
                    raise XMLSyntaxError(
                        f"closing tag </{tag}> with no open element", position)
                expected, node_id = self._open_tags.pop()
                if expected != tag:
                    raise XMLSyntaxError(
                        f"mismatched closing tag </{tag}>, "
                        f"expected </{expected}>", position)
                events.append(EndElement(tag=tag, node_id=node_id))
            elif content.endswith("/"):
                tag, attributes = _parse_start_tag(content[:-1], position)
                node_id = self._next_id
                events.append(StartElement(tag=tag, node_id=node_id,
                                           attributes=attributes))
                events.append(EndElement(tag=tag, node_id=node_id))
                # Attribute nodes claim the ids right after their element.
                self._next_id += 1 + len(attributes)
            else:
                tag, attributes = _parse_start_tag(content, position)
                node_id = self._next_id
                events.append(StartElement(tag=tag, node_id=node_id,
                                           attributes=attributes))
                self._open_tags.append((tag, node_id))
                self._next_id += 1 + len(attributes)
            pos = close + 1
        self._trim(pos)


#: Chunk size used by :func:`iter_events` when driving the push tokenizer;
#: keeps the per-batch event lists bounded for very large documents.
_PULL_CHUNK = 1 << 16


def iter_events(xml_text: str, keep_whitespace: bool = False) -> Iterator[Event]:
    """Tokenize ``xml_text`` into a stream of events.

    This is the pull-mode entry point: a thin wrapper that feeds the text
    through a :class:`PushTokenizer` in large chunks and yields the resulting
    events.  Character data is *coalesced* exactly like the :mod:`xml.sax`
    front end does: adjacent runs separated only by dropped markup (comments,
    processing instructions, the XML declaration) and CDATA sections merge
    into a single :class:`Text` event, flushed when the next element tag
    arrives.  This keeps document-order node ids identical between the two
    front ends.

    Parameters
    ----------
    xml_text:
        The XML document as a string.
    keep_whitespace:
        When ``False`` (the default, matching the paper's model) character
        data consisting only of whitespace is dropped.

    Raises
    ------
    XMLSyntaxError
        If the text is not well formed (mismatched or unterminated tags).
    """
    tokenizer = PushTokenizer(keep_whitespace=keep_whitespace)
    for start in range(0, len(xml_text), _PULL_CHUNK):
        yield from tokenizer.feed(xml_text[start:start + _PULL_CHUNK])
    yield from tokenizer.close()


class _SAXEventCollector(xml.sax.handler.ContentHandler):
    """Collects ``xml.sax`` callbacks into our event dataclasses."""

    def __init__(self, keep_whitespace: bool):
        super().__init__()
        self.events: List[Event] = []
        self._next_id = 1
        self._open_ids: List[tuple] = []
        self._keep_whitespace = keep_whitespace
        self._pending_text: List[str] = []

    def _flush_text(self) -> None:
        if not self._pending_text:
            return
        value = "".join(self._pending_text)
        self._pending_text = []
        if not self._open_ids:
            return
        if not self._keep_whitespace:
            value = value.strip()
            if not value:
                return
        self.events.append(Text(value=value, node_id=self._next_id))
        self._next_id += 1

    def startDocument(self):  # noqa: N802 - SAX API naming
        self.events.append(StartDocument(node_id=0))

    def endDocument(self):  # noqa: N802
        self._flush_text()
        self.events.append(EndDocument(node_id=0))

    def startElement(self, name, attrs):  # noqa: N802
        self._flush_text()
        # ``attrs`` preserves document order (expat fills an insertion-
        # ordered dict); attribute nodes claim the ids right after their
        # element, exactly as the hand tokenizer numbers them.
        attributes = tuple((attr_name, attrs.getValue(attr_name))
                           for attr_name in attrs.getNames())
        self.events.append(StartElement(tag=name, node_id=self._next_id,
                                        attributes=attributes))
        self._open_ids.append((name, self._next_id))
        self._next_id += 1 + len(attributes)

    def endElement(self, name):  # noqa: N802
        self._flush_text()
        tag, node_id = self._open_ids.pop()
        self.events.append(EndElement(tag=tag, node_id=node_id))

    def characters(self, content):  # noqa: N802
        self._pending_text.append(content)


def iter_events_sax(xml_text: str, keep_whitespace: bool = False) -> Iterator[Event]:
    """Produce the same event stream as :func:`iter_events` via ``xml.sax``.

    Note: unlike :func:`iter_events`, the standard SAX parser enforces full
    XML well-formedness (single document element, proper prolog), so this
    adapter is used for real-world documents while the hand-written tokenizer
    also accepts the fragments used in synthetic tests.
    """
    collector = _SAXEventCollector(keep_whitespace)
    try:
        xml.sax.parseString(xml_text.encode("utf-8"), collector)
    except xml.sax.SAXParseException as exc:  # pragma: no cover - passthrough
        raise XMLSyntaxError(str(exc)) from exc
    return iter(collector.events)


def parse_xml(xml_text: str, keep_whitespace: bool = False,
              use_sax: bool = False) -> Document:
    """Parse XML text into a :class:`Document`.

    ``use_sax`` selects the :mod:`xml.sax` front end instead of the built-in
    tokenizer; both produce identical documents for the supported dialect.
    """
    if use_sax:
        events = iter_events_sax(xml_text, keep_whitespace=keep_whitespace)
    else:
        events = iter_events(xml_text, keep_whitespace=keep_whitespace)
    return build_document(events)


def parse_xml_file(path: str, keep_whitespace: bool = False) -> Document:
    """Parse an XML file from disk into a :class:`Document`."""
    with io.open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read(), keep_whitespace=keep_whitespace)
