"""XML text parsing: a hand-written tokenizer and an ``xml.sax`` adapter.

Two independent front ends produce the same event stream:

* :func:`iter_events` — a small, dependency-free tokenizer for the simplified
  XML dialect of the paper (elements and character data; attributes,
  comments, processing instructions and the XML declaration are accepted on
  input but dropped, matching Section 2 "specificities of XML that are
  irrelevant to the issue of concern are left out").
* :func:`iter_events_sax` — the same stream produced through the standard
  library's :mod:`xml.sax` parser, useful as a cross-check and for documents
  that use the full XML syntax.

Both yield :class:`repro.xmlmodel.events.Event` objects with document-order
node ids, and both can feed either the tree builder or the streaming
evaluator directly.
"""

from __future__ import annotations

import io
import xml.sax
import xml.sax.handler
from typing import Iterator, List

from repro.errors import XMLSyntaxError
from repro.xmlmodel.builder import build_document
from repro.xmlmodel.document import Document
from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)

_ENTITY_TABLE = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}


def _decode_entities(raw: str, offset: int) -> str:
    """Replace the five predefined XML entities in character data."""
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        char = raw[i]
        if char != "&":
            out.append(char)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", offset + i)
        name = raw[i + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITY_TABLE:
            out.append(_ENTITY_TABLE[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", offset + i)
        i = end + 1
    return "".join(out)


def _parse_tag_name(content: str, offset: int) -> str:
    """Extract the element name from the inside of a tag."""
    name = content.split()[0] if content.split() else ""
    if not name:
        raise XMLSyntaxError("empty tag name", offset)
    return name


def iter_events(xml_text: str, keep_whitespace: bool = False) -> Iterator[Event]:
    """Tokenize ``xml_text`` into a stream of events.

    Character data is *coalesced* exactly like the :mod:`xml.sax` front end
    does: adjacent runs separated only by dropped markup (comments,
    processing instructions, the XML declaration) and CDATA sections merge
    into a single :class:`Text` event, flushed when the next element tag
    arrives.  This keeps document-order node ids identical between the two
    front ends.

    Parameters
    ----------
    xml_text:
        The XML document as a string.
    keep_whitespace:
        When ``False`` (the default, matching the paper's model) character
        data consisting only of whitespace is dropped.

    Raises
    ------
    XMLSyntaxError
        If the text is not well formed (mismatched or unterminated tags).
    """
    yield StartDocument(node_id=0)
    next_id = 1
    open_tags: List[tuple] = []  # (tag, node_id)
    pending_text: List[str] = []  # decoded character data awaiting a flush

    def flush_text() -> Iterator[Event]:
        nonlocal next_id
        if not pending_text:
            return
        value = "".join(pending_text)
        pending_text.clear()
        if not open_tags:
            # Character data outside the open element tree is dropped, as in
            # the SAX adapter.
            return
        if not keep_whitespace:
            value = value.strip()
            if not value:
                return
        yield Text(value=value, node_id=next_id)
        next_id += 1

    i = 0
    length = len(xml_text)
    while i < length:
        if xml_text[i] == "<":
            if xml_text.startswith("<![CDATA[", i):
                end = xml_text.find("]]>", i + 9)
                if end == -1:
                    raise XMLSyntaxError("unterminated CDATA section", i)
                # CDATA is verbatim character data: no entity decoding, and
                # it coalesces with surrounding text runs.
                if end > i + 9:
                    pending_text.append(xml_text[i + 9:end])
                i = end + 3
                continue
            if xml_text.startswith("<!--", i):
                end = xml_text.find("-->", i + 4)
                if end == -1:
                    raise XMLSyntaxError("unterminated comment", i)
                # Dropped; surrounding character data coalesces across it.
                i = end + 3
                continue
            if xml_text.startswith("<?", i):
                end = xml_text.find("?>", i + 2)
                if end == -1:
                    raise XMLSyntaxError(
                        "unterminated processing instruction", i)
                i = end + 2
                continue
            close = xml_text.find(">", i + 1)
            if close == -1:
                raise XMLSyntaxError("unterminated tag", i)
            content = xml_text[i + 1:close]
            if content.startswith("!"):
                # Doctype and other declarations: ignored by the model.
                i = close + 1
                continue
            if content.startswith("/"):
                yield from flush_text()
                tag = _parse_tag_name(content[1:], i)
                if not open_tags:
                    raise XMLSyntaxError(f"closing tag </{tag}> with no open element", i)
                expected, node_id = open_tags.pop()
                if expected != tag:
                    raise XMLSyntaxError(
                        f"mismatched closing tag </{tag}>, expected </{expected}>", i
                    )
                yield EndElement(tag=tag, node_id=node_id)
            elif content.endswith("/"):
                yield from flush_text()
                tag = _parse_tag_name(content[:-1], i)
                yield StartElement(tag=tag, node_id=next_id)
                yield EndElement(tag=tag, node_id=next_id)
                next_id += 1
            else:
                yield from flush_text()
                tag = _parse_tag_name(content, i)
                yield StartElement(tag=tag, node_id=next_id)
                open_tags.append((tag, next_id))
                next_id += 1
            i = close + 1
        else:
            close = xml_text.find("<", i)
            if close == -1:
                close = length
            pending_text.append(_decode_entities(xml_text[i:close], i))
            i = close
    if open_tags:
        tag, _ = open_tags[-1]
        raise XMLSyntaxError(f"unclosed element <{tag}> at end of document", length)
    yield from flush_text()
    yield EndDocument(node_id=0)


class _SAXEventCollector(xml.sax.handler.ContentHandler):
    """Collects ``xml.sax`` callbacks into our event dataclasses."""

    def __init__(self, keep_whitespace: bool):
        super().__init__()
        self.events: List[Event] = []
        self._next_id = 1
        self._open_ids: List[tuple] = []
        self._keep_whitespace = keep_whitespace
        self._pending_text: List[str] = []

    def _flush_text(self) -> None:
        if not self._pending_text:
            return
        value = "".join(self._pending_text)
        self._pending_text = []
        if not self._open_ids:
            return
        if not self._keep_whitespace:
            value = value.strip()
            if not value:
                return
        self.events.append(Text(value=value, node_id=self._next_id))
        self._next_id += 1

    def startDocument(self):  # noqa: N802 - SAX API naming
        self.events.append(StartDocument(node_id=0))

    def endDocument(self):  # noqa: N802
        self._flush_text()
        self.events.append(EndDocument(node_id=0))

    def startElement(self, name, attrs):  # noqa: N802
        self._flush_text()
        self.events.append(StartElement(tag=name, node_id=self._next_id))
        self._open_ids.append((name, self._next_id))
        self._next_id += 1

    def endElement(self, name):  # noqa: N802
        self._flush_text()
        tag, node_id = self._open_ids.pop()
        self.events.append(EndElement(tag=tag, node_id=node_id))

    def characters(self, content):  # noqa: N802
        self._pending_text.append(content)


def iter_events_sax(xml_text: str, keep_whitespace: bool = False) -> Iterator[Event]:
    """Produce the same event stream as :func:`iter_events` via ``xml.sax``.

    Note: unlike :func:`iter_events`, the standard SAX parser enforces full
    XML well-formedness (single document element, proper prolog), so this
    adapter is used for real-world documents while the hand-written tokenizer
    also accepts the fragments used in synthetic tests.
    """
    collector = _SAXEventCollector(keep_whitespace)
    try:
        xml.sax.parseString(xml_text.encode("utf-8"), collector)
    except xml.sax.SAXParseException as exc:  # pragma: no cover - passthrough
        raise XMLSyntaxError(str(exc)) from exc
    return iter(collector.events)


def parse_xml(xml_text: str, keep_whitespace: bool = False,
              use_sax: bool = False) -> Document:
    """Parse XML text into a :class:`Document`.

    ``use_sax`` selects the :mod:`xml.sax` front end instead of the built-in
    tokenizer; both produce identical documents for the supported dialect.
    """
    if use_sax:
        events = iter_events_sax(xml_text, keep_whitespace=keep_whitespace)
    else:
        events = iter_events(xml_text, keep_whitespace=keep_whitespace)
    return build_document(events)


def parse_xml_file(path: str, keep_whitespace: bool = False) -> Document:
    """Parse an XML file from disk into a :class:`Document`."""
    with io.open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read(), keep_whitespace=keep_whitespace)
