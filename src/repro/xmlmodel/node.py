"""Node model for the simplified XML documents of the paper (Section 2).

The paper leaves out namespaces, comments, processing instructions,
attributes, references and whitespace handling, so a document consists of

* exactly one *root* node (the document node of DOM / the XQuery data model,
  which is **not** the outermost element),
* *element* nodes with a tag name, and
* *text* nodes (leaves).

Every node carries a ``position``: its index in document order (pre-order,
root = 0).  Document order is the basis of the ``preceding``/``following``
axes and of node identity comparisons in the streaming evaluator.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional


class NodeKind(enum.Enum):
    """The three node kinds of the simplified data model."""

    ROOT = "root"
    ELEMENT = "element"
    TEXT = "text"


class XMLNode:
    """A node of a :class:`repro.xmlmodel.document.Document`.

    Nodes are created by the document builder and are immutable from the
    point of view of library users: the tree structure and document order are
    fixed once the document is finalized.

    Attributes
    ----------
    kind:
        One of :class:`NodeKind`.
    tag:
        The element tag name (``None`` for root and text nodes).
    value:
        The character content (``None`` for root and element nodes).
    parent:
        The parent node, or ``None`` for the root.
    children:
        List of child nodes in document order.
    position:
        Pre-order index of this node within its document (root is 0).
    """

    __slots__ = (
        "kind",
        "tag",
        "value",
        "parent",
        "children",
        "position",
        "_subtree_end",
        "_sibling_index",
        "document",
    )

    def __init__(self, kind: NodeKind, tag: Optional[str] = None,
                 value: Optional[str] = None):
        if kind is NodeKind.ELEMENT and not tag:
            raise ValueError("element nodes require a tag name")
        if kind is NodeKind.TEXT and value is None:
            raise ValueError("text nodes require a value")
        if kind is NodeKind.ROOT and (tag or value):
            raise ValueError("the root node carries no tag and no value")
        self.kind = kind
        self.tag = tag
        self.value = value
        self.parent: Optional[XMLNode] = None
        self.children: List[XMLNode] = []
        self.position: int = -1
        # Index of the last position in this node's subtree; filled in when
        # the document is finalized.  Used for O(1) descendant checks.
        self._subtree_end: int = -1
        self._sibling_index: int = -1
        self.document = None

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        """``True`` for the document root node."""
        return self.kind is NodeKind.ROOT

    @property
    def is_element(self) -> bool:
        """``True`` for element nodes."""
        return self.kind is NodeKind.ELEMENT

    @property
    def is_text(self) -> bool:
        """``True`` for text nodes."""
        return self.kind is NodeKind.TEXT

    @property
    def is_leaf(self) -> bool:
        """``True`` when the node has no children (empty element or text)."""
        return not self.children

    @property
    def sibling_index(self) -> int:
        """Index of this node among its parent's children (root is 0)."""
        return self._sibling_index

    def append_child(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child of this node and return it."""
        if self.is_text:
            raise ValueError("text nodes cannot have children")
        child.parent = self
        child._sibling_index = len(self.children)
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Document-order relationships (used by the axis implementations)
    # ------------------------------------------------------------------
    def is_ancestor_of(self, other: "XMLNode") -> bool:
        """Whether ``self`` is a proper ancestor of ``other``.

        Runs in O(1) using the pre-order interval of the subtree.
        """
        return self.position < other.position <= self._subtree_end

    def is_descendant_of(self, other: "XMLNode") -> bool:
        """Whether ``self`` is a proper descendant of ``other``."""
        return other.is_ancestor_of(self)

    def precedes(self, other: "XMLNode") -> bool:
        """Whether ``self`` comes strictly before ``other`` in document order."""
        return self.position < other.position

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Yield all proper descendants in document order."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants_or_self(self) -> Iterator["XMLNode"]:
        """Yield this node followed by all its descendants in document order."""
        yield self
        yield from self.iter_descendants()

    def iter_ancestors(self) -> Iterator["XMLNode"]:
        """Yield proper ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def iter_following_siblings(self) -> Iterator["XMLNode"]:
        """Yield siblings after this node, in document order."""
        if self.parent is None:
            return
        yield from self.parent.children[self._sibling_index + 1:]

    def iter_preceding_siblings(self) -> Iterator["XMLNode"]:
        """Yield siblings before this node, in **reverse** document order.

        XPath reverse axes enumerate nodes in reverse document order; the
        evaluator turns results back into document-ordered sets, so the
        iteration order here only matters for readability of traces.
        """
        if self.parent is None:
            return
        for child in reversed(self.parent.children[: self._sibling_index]):
            yield child

    def text_content(self) -> str:
        """Concatenated character data of the subtree (string value)."""
        if self.is_text:
            return self.value or ""
        return "".join(child.text_content() for child in self.children)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def label(self) -> str:
        """A short human-readable label for traces and error messages."""
        if self.is_root:
            return "#root"
        if self.is_text:
            preview = (self.value or "")[:20]
            return f"#text({preview!r})"
        return f"<{self.tag}>@{self.position}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLNode({self.label()})"
