"""Node model for the simplified XML documents of the paper (Section 2).

The paper leaves out namespaces, comments, processing instructions,
references and whitespace handling; this reproduction extends the paper's
attribute-free model with *attribute* nodes (real SDI subscription workloads
are dominated by attribute-qualified queries), so a document consists of

* exactly one *root* node (the document node of DOM / the XQuery data model,
  which is **not** the outermost element),
* *element* nodes with a tag name and an ordered list of attributes,
* *attribute* nodes (name/value pairs owned by an element), and
* *text* nodes (leaves).

Every node carries a ``position``: its index in document order (pre-order,
root = 0).  Attribute nodes occupy the positions immediately after their
owner element and before its first child, mirroring when they appear on a
SAX stream.  Document order is the basis of the ``preceding``/``following``
axes and of node identity comparisons in the streaming evaluator — with the
model's deliberate restriction that attribute nodes are reachable *only*
through the ``attribute`` axis (downward) and ``parent``/``ancestor``
(upward): they have no siblings, no descendants, and take part in neither
``preceding`` nor ``following``.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Optional, Tuple


class NodeKind(enum.Enum):
    """The four node kinds of the (attribute-extended) data model."""

    ROOT = "root"
    ELEMENT = "element"
    TEXT = "text"
    ATTRIBUTE = "attribute"


class XMLNode:
    """A node of a :class:`repro.xmlmodel.document.Document`.

    Nodes are created by the document builder and are immutable from the
    point of view of library users: the tree structure and document order are
    fixed once the document is finalized.

    Attributes
    ----------
    kind:
        One of :class:`NodeKind`.
    tag:
        The element tag name, or the attribute name for attribute nodes
        (``None`` for root and text nodes).
    value:
        The character content of text nodes and the value of attribute nodes
        (``None`` for root and element nodes).
    parent:
        The parent node, or ``None`` for the root.  The parent of an
        attribute node is its owner element.
    children:
        List of child nodes in document order.  Attribute nodes are **not**
        children; they live in :attr:`attributes`.
    attributes:
        The element's attribute nodes in document order (always empty for
        non-element nodes).
    position:
        Pre-order index of this node within its document (root is 0).
    """

    __slots__ = (
        "kind",
        "tag",
        "value",
        "parent",
        "children",
        "attributes",
        "position",
        "_subtree_end",
        "_sibling_index",
        "document",
    )

    def __init__(self, kind: NodeKind, tag: Optional[str] = None,
                 value: Optional[str] = None):
        if kind is NodeKind.ELEMENT and not tag:
            raise ValueError("element nodes require a tag name")
        if kind is NodeKind.TEXT and value is None:
            raise ValueError("text nodes require a value")
        if kind is NodeKind.ROOT and (tag or value):
            raise ValueError("the root node carries no tag and no value")
        if kind is NodeKind.ATTRIBUTE and (not tag or value is None):
            raise ValueError("attribute nodes require a name and a value")
        self.kind = kind
        self.tag = tag
        self.value = value
        self.parent: Optional[XMLNode] = None
        self.children: List[XMLNode] = []
        self.attributes: List[XMLNode] = []
        self.position: int = -1
        # Index of the last position in this node's subtree; filled in when
        # the document is finalized.  Used for O(1) descendant checks.
        self._subtree_end: int = -1
        self._sibling_index: int = -1
        self.document = None

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        """``True`` for the document root node."""
        return self.kind is NodeKind.ROOT

    @property
    def is_element(self) -> bool:
        """``True`` for element nodes."""
        return self.kind is NodeKind.ELEMENT

    @property
    def is_text(self) -> bool:
        """``True`` for text nodes."""
        return self.kind is NodeKind.TEXT

    @property
    def is_attribute(self) -> bool:
        """``True`` for attribute nodes."""
        return self.kind is NodeKind.ATTRIBUTE

    @property
    def is_leaf(self) -> bool:
        """``True`` when the node has no children (empty element or text)."""
        return not self.children

    @property
    def sibling_index(self) -> int:
        """Index of this node among its parent's children (root is 0)."""
        return self._sibling_index

    def append_child(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child of this node and return it."""
        if self.is_text or self.is_attribute:
            raise ValueError("text and attribute nodes cannot have children")
        if child.is_attribute:
            raise ValueError(
                "attribute nodes are not children; use set_attributes()")
        child.parent = self
        child._sibling_index = len(self.children)
        self.children.append(child)
        return child

    def set_attributes(self, attributes: Iterable[Tuple[str, str]]) -> None:
        """Replace this element's attributes with ``(name, value)`` pairs.

        Attribute nodes keep document order; duplicate names are rejected as
        they would be by the XML parser.
        """
        if not self.is_element:
            raise ValueError("only element nodes carry attributes")
        nodes: List[XMLNode] = []
        seen = set()
        for name, value in attributes:
            if name in seen:
                raise ValueError(f"duplicate attribute {name!r}")
            seen.add(name)
            attribute = XMLNode(NodeKind.ATTRIBUTE, tag=name, value=value)
            attribute.parent = self
            nodes.append(attribute)
        self.attributes = nodes

    def get_attribute(self, name: str) -> Optional[str]:
        """The value of the attribute ``name``, or ``None`` when absent."""
        for attribute in self.attributes:
            if attribute.tag == name:
                return attribute.value
        return None

    def attribute_items(self) -> Tuple[Tuple[str, str], ...]:
        """The attributes as ``(name, value)`` pairs in document order."""
        return tuple((attribute.tag or "", attribute.value or "")
                     for attribute in self.attributes)

    # ------------------------------------------------------------------
    # Document-order relationships (used by the axis implementations)
    # ------------------------------------------------------------------
    def is_ancestor_of(self, other: "XMLNode") -> bool:
        """Whether ``self`` is a proper ancestor of ``other``.

        Runs in O(1) using the pre-order interval of the subtree.
        """
        return self.position < other.position <= self._subtree_end

    def is_descendant_of(self, other: "XMLNode") -> bool:
        """Whether ``self`` is a proper descendant of ``other``."""
        return other.is_ancestor_of(self)

    def precedes(self, other: "XMLNode") -> bool:
        """Whether ``self`` comes strictly before ``other`` in document order."""
        return self.position < other.position

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Yield all proper descendants in document order."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants_or_self(self) -> Iterator["XMLNode"]:
        """Yield this node followed by all its descendants in document order."""
        yield self
        yield from self.iter_descendants()

    def iter_ancestors(self) -> Iterator["XMLNode"]:
        """Yield proper ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def iter_following_siblings(self) -> Iterator["XMLNode"]:
        """Yield siblings after this node, in document order.

        Attribute nodes have no siblings (they are not children of their
        owner), so the iterator is empty for them.
        """
        if self.parent is None or self.is_attribute:
            return
        yield from self.parent.children[self._sibling_index + 1:]

    def iter_preceding_siblings(self) -> Iterator["XMLNode"]:
        """Yield siblings before this node, in **reverse** document order.

        XPath reverse axes enumerate nodes in reverse document order; the
        evaluator turns results back into document-ordered sets, so the
        iteration order here only matters for readability of traces.
        """
        if self.parent is None or self.is_attribute:
            return
        for child in reversed(self.parent.children[: self._sibling_index]):
            yield child

    def text_content(self) -> str:
        """Concatenated character data of the subtree (string value).

        The string value of an attribute node is its value; attribute values
        do not contribute to their owner element's string value (XPath 1.0).
        """
        if self.is_text or self.is_attribute:
            return self.value or ""
        return "".join(child.text_content() for child in self.children)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def label(self) -> str:
        """A short human-readable label for traces and error messages."""
        if self.is_root:
            return "#root"
        if self.is_text:
            preview = (self.value or "")[:20]
            return f"#text({preview!r})"
        if self.is_attribute:
            return f"@{self.tag}={(self.value or '')[:20]!r}"
        return f"<{self.tag}>@{self.position}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLNode({self.label()})"
