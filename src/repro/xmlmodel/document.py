"""The :class:`Document` container and a literal-style document builder.

A document owns its nodes and assigns document-order positions.  The
``element``/``text`` helpers let tests and examples write documents as nested
Python expressions that read almost like the XML they stand for::

    doc = Document.from_tree(
        element(
            "journal",
            element("title", text("databases")),
            element("editor", text("anna")),
            element(
                "authors",
                element("name", text("anna")),
                element("name", text("bob")),
            ),
            element("price"),
        )
    )

which is exactly the document of Figure 1 in the paper (see
:mod:`repro.datasets`).
"""

from __future__ import annotations

from typing import (
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.xmlmodel.node import NodeKind, XMLNode

TreeSpec = Union[XMLNode, str]
AttributeSpec = Union[None, Mapping[str, str], Sequence[Tuple[str, str]]]


def element(tag: str, *children: TreeSpec,
            attributes: AttributeSpec = None) -> XMLNode:
    """Create a detached element node with the given children.

    Children may be :class:`XMLNode` instances or plain strings (which are
    converted to text nodes), mirroring how XML nests elements and character
    data.  ``attributes`` takes ``(name, value)`` pairs or a mapping, in
    document order::

        element("item", element("price", text("9")),
                attributes={"id": "42"})
    """
    node = XMLNode(NodeKind.ELEMENT, tag=tag)
    if attributes:
        items = (attributes.items()
                 if isinstance(attributes, Mapping) else attributes)
        node.set_attributes(items)
    for child in children:
        if isinstance(child, str):
            child = text(child)
        node.append_child(child)
    return node


def text(value: str) -> XMLNode:
    """Create a detached text node."""
    return XMLNode(NodeKind.TEXT, value=value)


class Document:
    """An immutable XML document with a global document order.

    The document root corresponds to the *document node*: it is not an
    element itself and has the outermost element as its single element child
    (Section 2 of the paper).
    """

    def __init__(self, root: XMLNode):
        if not root.is_root:
            raise ValueError("Document requires a root node of kind ROOT")
        self.root = root
        self._nodes: List[XMLNode] = []
        self._finalize()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, *top_level: TreeSpec) -> "Document":
        """Build a document whose root has the given top-level children.

        Typically a single element (the document element) is passed, but the
        model also tolerates text at top level for synthetic corner cases in
        tests.
        """
        root = XMLNode(NodeKind.ROOT)
        for item in top_level:
            if isinstance(item, str):
                item = text(item)
            root.append_child(item)
        return cls(root)

    def _finalize(self) -> None:
        """Assign document-order positions and subtree intervals.

        Attribute nodes take the positions immediately after their owner
        element and before its first child — exactly where they appear on a
        SAX stream — so streaming node ids and document positions agree
        without the streaming side ever materializing attribute nodes.
        """
        position = 0
        order: List[XMLNode] = []

        def visit(node: XMLNode) -> int:
            nonlocal position
            node.position = position
            node.document = self
            order.append(node)
            position += 1
            last = node.position
            for attribute in node.attributes:
                attribute.position = position
                attribute.document = self
                attribute._subtree_end = position
                order.append(attribute)
                last = position
                position += 1
            for index, child in enumerate(node.children):
                child._sibling_index = index
                last = visit(child)
            node._subtree_end = last
            return last

        visit(self.root)
        self._nodes = order

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[XMLNode]:
        return iter(self._nodes)

    @property
    def nodes(self) -> Sequence[XMLNode]:
        """All nodes in document order (root first)."""
        return tuple(self._nodes)

    @property
    def document_element(self) -> Optional[XMLNode]:
        """The outermost element, or ``None`` for an empty document."""
        for child in self.root.children:
            if child.is_element:
                return child
        return None

    def node_at(self, position: int) -> XMLNode:
        """Return the node with the given document-order position."""
        return self._nodes[position]

    def elements(self, tag: Optional[str] = None) -> Iterator[XMLNode]:
        """Iterate over element nodes, optionally restricted to one tag."""
        for node in self._nodes:
            if node.is_element and (tag is None or node.tag == tag):
                yield node

    def sorted_in_document_order(self, nodes: Iterable[XMLNode]) -> List[XMLNode]:
        """Return ``nodes`` as a list sorted by document order, deduplicated."""
        unique = {node.position: node for node in nodes}
        return [unique[pos] for pos in sorted(unique)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Simple size statistics used by benchmarks and reports."""
        element_count = sum(1 for node in self._nodes if node.is_element)
        text_count = sum(1 for node in self._nodes if node.is_text)
        attribute_count = sum(1 for node in self._nodes if node.is_attribute)
        depth = 0
        for node in self._nodes:
            node_depth = sum(1 for _ in node.iter_ancestors())
            depth = max(depth, node_depth)
        return {
            "nodes": len(self._nodes),
            "elements": element_count,
            "texts": text_count,
            "attributes": attribute_count,
            "max_depth": depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        doc_elem = self.document_element
        tag = doc_elem.tag if doc_elem is not None else "<empty>"
        return f"Document(<{tag}>, {len(self._nodes)} nodes)"
