"""Conversions between event streams and documents.

``build_document`` replays a stream of SAX-like events into an in-memory
:class:`Document` (this is what a DOM-based processor does, and it is the
baseline the paper argues against for large inputs).  ``document_events``
goes the other way: it walks an existing document and emits the event stream
a SAX parser would have produced, which lets benchmarks stream synthetic
documents without serializing them to text first.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.errors import XMLSyntaxError
from repro.xmlmodel.document import Document
from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlmodel.node import NodeKind, XMLNode


def build_document(events: Iterable[Event]) -> Document:
    """Materialize an event stream into a :class:`Document`.

    The builder checks the minimal structural invariants (events nest
    properly, text occurs inside elements) and assigns document order anew,
    so streams from any producer can be materialized.
    """
    root = XMLNode(NodeKind.ROOT)
    stack: List[XMLNode] = [root]
    saw_start = False
    saw_end = False
    for event in events:
        if isinstance(event, StartDocument):
            saw_start = True
        elif isinstance(event, EndDocument):
            saw_end = True
        elif isinstance(event, StartElement):
            node = XMLNode(NodeKind.ELEMENT, tag=event.tag)
            if event.attributes:
                node.set_attributes(event.attributes)
            stack[-1].append_child(node)
            stack.append(node)
        elif isinstance(event, EndElement):
            if len(stack) == 1:
                raise XMLSyntaxError(
                    f"end element </{event.tag}> without matching start element"
                )
            node = stack.pop()
            if node.tag != event.tag:
                raise XMLSyntaxError(
                    f"mismatched end element </{event.tag}>, expected </{node.tag}>"
                )
        elif isinstance(event, Text):
            stack[-1].append_child(XMLNode(NodeKind.TEXT, value=event.value))
        else:
            raise TypeError(f"not an event: {event!r}")
    if len(stack) != 1:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}> at end of stream")
    if saw_start and not saw_end:
        raise XMLSyntaxError("event stream started a document but never ended it")
    return Document(root)


def document_events(document: Document) -> Iterator[Event]:
    """Yield the SAX-like event stream corresponding to ``document``.

    Node ids in the stream are the document-order positions of the nodes, so
    answers computed by the streaming evaluator can be compared 1:1 with the
    in-memory evaluator's answers.
    """
    yield StartDocument(node_id=document.root.position)

    def walk(node: XMLNode) -> Iterator[Event]:
        if node.is_text:
            yield Text(value=node.value or "", node_id=node.position)
            return
        # Attribute nodes occupy the positions right after their element in
        # the finalized document, so the attribute payload of the start event
        # implicitly carries their ids (position + 1, position + 2, ...).
        yield StartElement(tag=node.tag or "", node_id=node.position,
                           attributes=node.attribute_items())
        for child in node.children:
            yield from walk(child)
        yield EndElement(tag=node.tag or "", node_id=node.position)

    for child in document.root.children:
        yield from walk(child)
    yield EndDocument(node_id=document.root.position)
