"""Serialization of documents back to XML text."""

from __future__ import annotations

from typing import List

from repro.xmlmodel.document import Document
from repro.xmlmodel.node import XMLNode

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}

_ATTRIBUTE_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    # Whitespace as character references: a literal tab/newline would be
    # normalized to a space on re-parse, corrupting the value round-trip.
    "\t": "&#9;",
    "\n": "&#10;",
    "\r": "&#13;",
}


def escape_text(value: str) -> str:
    """Escape character data for inclusion in XML text."""
    out = value
    for char, entity in _ESCAPES.items():
        out = out.replace(char, entity)
    return out


def escape_attribute(value: str) -> str:
    """Escape an attribute value for inclusion in a double-quoted literal."""
    out = value
    for char, entity in _ATTRIBUTE_ESCAPES.items():
        out = out.replace(char, entity)
    return out


def _start_tag_body(node: XMLNode) -> str:
    """The inside of a start tag: tag name plus serialized attributes."""
    parts = [node.tag or ""]
    for attribute in node.attributes:
        parts.append(
            f'{attribute.tag}="{escape_attribute(attribute.value or "")}"')
    return " ".join(parts)


def to_xml(document: Document, indent: int = 2) -> str:
    """Serialize ``document`` to XML text.

    ``indent`` controls pretty printing; pass 0 for compact output (useful
    when the serialized text is re-parsed in round-trip tests, because the
    model drops whitespace-only text nodes either way).
    """
    lines: List[str] = []

    def render(node: XMLNode, depth: int) -> None:
        pad = " " * (indent * depth) if indent else ""
        if node.is_text:
            lines.append(f"{pad}{escape_text(node.value or '')}")
            return
        tag = node.tag or ""
        body = _start_tag_body(node)
        if not node.children:
            lines.append(f"{pad}<{body} />")
            return
        only_text = all(child.is_text for child in node.children)
        if only_text:
            content = "".join(escape_text(child.value or "") for child in node.children)
            lines.append(f"{pad}<{body}>{content}</{tag}>")
            return
        lines.append(f"{pad}<{body}>")
        for child in node.children:
            render(child, depth + 1)
        lines.append(f"{pad}</{tag}>")

    for child in document.root.children:
        render(child, 0)
    joiner = "\n" if indent else ""
    return joiner.join(lines)
