"""Serialization of documents back to XML text."""

from __future__ import annotations

from typing import List

from repro.xmlmodel.document import Document
from repro.xmlmodel.node import XMLNode

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}

_ATTRIBUTE_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    # Whitespace as character references: a literal tab/newline would be
    # normalized to a space on re-parse, corrupting the value round-trip.
    "\t": "&#9;",
    "\n": "&#10;",
    "\r": "&#13;",
}


def escape_text(value: str) -> str:
    """Escape character data for inclusion in XML text."""
    out = value
    for char, entity in _ESCAPES.items():
        out = out.replace(char, entity)
    return out


def escape_attribute(value: str) -> str:
    """Escape an attribute value for inclusion in a double-quoted literal."""
    out = value
    for char, entity in _ATTRIBUTE_ESCAPES.items():
        out = out.replace(char, entity)
    return out


def _start_tag_body(node: XMLNode) -> str:
    """The inside of a start tag: tag name plus serialized attributes."""
    parts = [node.tag or ""]
    for attribute in node.attributes:
        parts.append(
            f'{attribute.tag}="{escape_attribute(attribute.value or "")}"')
    return " ".join(parts)


def _inline(node: XMLNode) -> str:
    """Render ``node``'s whole subtree on one line, children in document
    order with no whitespace injected between them.

    This is the only faithful rendering for mixed content: pretty-printing
    would put text children on their own padded lines, and the padding (or
    the line break itself) changes the character data on re-parse.
    """
    if node.is_text:
        return escape_text(node.value or "")
    body = _start_tag_body(node)
    if not node.children:
        return f"<{body} />"
    content = "".join(_inline(child) for child in node.children)
    return f"<{body}>{content}</{node.tag or ''}>"


def to_xml(document: Document, indent: int = 2) -> str:
    """Serialize ``document`` to XML text.

    ``indent`` controls pretty printing; pass 0 for compact output, which
    round-trips: re-parsing it yields the event stream of the original
    document (whitespace-padded text needs ``keep_whitespace=True`` on the
    parser, and adjacent text siblings merge — both parser behaviours, not
    serializer ones).  Pretty printing only ever breaks lines *between*
    element children; any subtree containing character data is rendered
    inline via :func:`_inline` so indentation never corrupts mixed content.
    """
    lines: List[str] = []

    def render(node: XMLNode, depth: int) -> None:
        pad = " " * (indent * depth) if indent else ""
        if (node.is_text or not node.children
                or any(child.is_text for child in node.children)):
            lines.append(pad + _inline(node))
            return
        body = _start_tag_body(node)
        lines.append(f"{pad}<{body}>")
        for child in node.children:
            render(child, depth + 1)
        lines.append(f"{pad}</{node.tag or ''}>")

    for child in document.root.children:
        render(child, 0)
    joiner = "\n" if indent else ""
    return joiner.join(lines)
