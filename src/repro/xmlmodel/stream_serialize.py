"""Event-stream → XML text re-serialization (the substream payload encoder).

:func:`repro.xmlmodel.serialize.to_xml` walks an in-memory document; this
module is its streaming counterpart: it turns a *slice of the event stream*
back into XML bytes without ever materializing nodes, in the style of
genshi's ``markup/output.py`` — a start tag is held back one event so empty
elements self-close, character data and attribute values are escaped through
the shared :func:`~repro.xmlmodel.serialize.escape_text` /
:func:`~repro.xmlmodel.serialize.escape_attribute` tables, and no pretty
printing whitespace is ever injected (the re-parsed stream must be the
stream that was serialized).

This is what substream delivery (:mod:`repro.streaming.delivery`) uses to
re-emit a matched subtree's events as payload bytes: the captured slice
``StartElement .. EndElement`` round-trips byte-for-byte with what
``to_xml(..., indent=0)`` would produce for the same subtree.

Three entry points, lowest level first:

* :class:`StreamSerializer` — incremental ``feed(event) -> str`` fragments
  plus a final ``close()``; fragments concatenate to the serialization.
* :func:`iter_serialized` — chunked ``bytes`` production: fragments are
  accumulated and yielded in UTF-8 chunks of roughly ``chunk_size`` bytes,
  the shape a broker hands to a network socket.
* :func:`serialize_events` — the whole serialization as one ``bytes``.

Fragments of a document's *interior* are legal input: a lone ``Text`` event
serializes to its escaped character data, which is how text- and
attribute-node matches are rendered as payloads.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlmodel.serialize import escape_attribute, escape_text

#: Default target size (in characters) of the chunks
#: :func:`iter_serialized` yields.
DEFAULT_CHUNK_SIZE = 4096


class StreamSerializer:
    """Incremental event → XML text serializer.

    ``feed`` returns the text fragment each event contributes; ``close``
    flushes the one-event lookahead (a start tag still waiting to learn
    whether it is empty).  Start/EndDocument events contribute nothing, so
    whole-document streams and subtree slices serialize alike.

    The single piece of state is the pending start tag: it is emitted as a
    self-closing ``<tag />`` when the very next event closes it, and as an
    open ``<tag>`` otherwise — the same forms ``to_xml`` produces, so the
    two serializers agree byte-for-byte on the same tree.
    """

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        #: Text of a start tag held back one event, without the closing
        #: ``>`` — decided self-closing or open by the event that follows.
        self._pending: Optional[str] = None

    def feed(self, event: Event) -> str:
        """Consume one event; return the text it contributes (maybe ``""``)."""
        if isinstance(event, StartElement):
            out = self._flush()
            if event.attributes:
                rendered = " ".join(
                    f'{name}="{escape_attribute(value)}"'
                    for name, value in event.attributes)
                self._pending = f"<{event.tag} {rendered}"
            else:
                self._pending = f"<{event.tag}"
            return out
        if isinstance(event, EndElement):
            pending = self._pending
            if pending is not None:
                # No content arrived between start and end: self-close.
                self._pending = None
                return pending + " />"
            return f"</{event.tag}>"
        if isinstance(event, Text):
            return self._flush() + escape_text(event.value)
        if isinstance(event, (StartDocument, EndDocument)):
            return self._flush() if isinstance(event, EndDocument) else ""
        raise TypeError(f"not an event: {event!r}")

    def close(self) -> str:
        """Flush the lookahead at end of input.

        A well-formed slice ends on an :class:`EndElement` (or a leaf
        event), leaving nothing pending; a truncated fragment gets its last
        start tag emitted open, faithful to the events that were seen.
        """
        return self._flush()

    def _flush(self) -> str:
        pending = self._pending
        if pending is None:
            return ""
        self._pending = None
        return pending + ">"


def iter_serialized(events: Iterable[Event],
                    chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
    """Serialize ``events`` to UTF-8 chunks of roughly ``chunk_size`` bytes.

    Chunk boundaries are placed between event fragments only — never inside
    a multi-byte UTF-8 sequence — and the concatenation of all chunks is
    exactly :func:`serialize_events` of the same stream, regardless of
    ``chunk_size``.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    serializer = StreamSerializer()
    parts: List[str] = []
    size = 0
    for event in events:
        fragment = serializer.feed(event)
        if fragment:
            parts.append(fragment)
            size += len(fragment)
            if size >= chunk_size:
                yield "".join(parts).encode("utf-8")
                parts = []
                size = 0
    tail = serializer.close()
    if tail:
        parts.append(tail)
    if parts:
        yield "".join(parts).encode("utf-8")


def serialize_events(events: Iterable[Event]) -> bytes:
    """The UTF-8 serialization of ``events`` as a single ``bytes``."""
    serializer = StreamSerializer()
    parts = [serializer.feed(event) for event in events]
    parts.append(serializer.close())
    return "".join(parts).encode("utf-8")
