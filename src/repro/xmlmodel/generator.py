"""Synthetic document generators (System S3).

The paper motivates streamed processing with large, data-centric documents
(natural-language corpora, biological and astronomical data, SDI message
streams).  None of those corpora ship with the paper, so the benchmarks use
synthetic documents with controllable size and shape:

* :func:`journal_document` — the Figure 1 journal catalogue scaled up to an
  arbitrary number of journals; this is the workload used for the worked
  examples and the streaming benchmarks,
* :func:`random_document` — random trees over a small tag alphabet, used by
  the property-based equivalence tests,
* :func:`deep_chain_document` / :func:`wide_document` — extreme shapes used
  to probe buffering behaviour of the streaming evaluator.

All generators are deterministic given their ``seed`` so experiments are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.node import XMLNode

DEFAULT_TAGS = ("a", "b", "c", "d")
FIRST_NAMES = (
    "anna", "bob", "carla", "dan", "eve", "frank", "grete", "holger",
    "ines", "jan", "klara", "lars", "mona", "nils",
)
TOPICS = (
    "databases", "streams", "xml", "xpath", "xquery", "optimization",
    "semistructured data", "information retrieval", "query rewriting",
)


@dataclass
class DocumentSpec:
    """Parameters of a generated journal catalogue document.

    Attributes
    ----------
    journals:
        Number of ``journal`` elements under the catalogue root.
    articles_per_journal:
        Number of ``article`` children per journal.
    authors_per_article:
        Number of ``name`` entries inside each article's ``authors`` element.
    with_price:
        Whether journals carry an empty ``price`` element (needed by the
        worked examples of the paper, which query names preceding a price).
    with_attributes:
        Whether journals carry ``id`` and ``tier`` attributes (the attribute
        extension; off by default so the paper's attribute-free documents —
        and their node positions — stay exactly as before).
    seed:
        Random seed used for names/topics, making documents reproducible.
    """

    journals: int = 10
    articles_per_journal: int = 5
    authors_per_article: int = 3
    with_price: bool = True
    with_attributes: bool = False
    seed: int = 7


def journal_document(spec: Optional[DocumentSpec] = None, **overrides) -> Document:
    """Generate a journal catalogue shaped like Figure 1, scaled by ``spec``.

    Keyword overrides are applied on top of the spec, so callers can write
    ``journal_document(journals=100)``.
    """
    if spec is None:
        spec = DocumentSpec()
    if overrides:
        spec = DocumentSpec(**{**spec.__dict__, **overrides})
    rng = random.Random(spec.seed)
    journals: List[XMLNode] = []
    for j in range(spec.journals):
        children: List[XMLNode] = [
            element("title", text(rng.choice(TOPICS))),
            element("editor", text(rng.choice(FIRST_NAMES))),
        ]
        for _ in range(spec.articles_per_journal):
            authors = element(
                "authors",
                *[element("name", text(rng.choice(FIRST_NAMES)))
                  for _ in range(spec.authors_per_article)],
            )
            children.append(
                element(
                    "article",
                    element("title", text(rng.choice(TOPICS))),
                    authors,
                )
            )
        if spec.with_price:
            children.append(element("price"))
        attributes = None
        if spec.with_attributes:
            attributes = {"id": f"j{j}",
                          "tier": ("gold", "silver", "bronze")[j % 3]}
        journals.append(element("journal", *children, attributes=attributes))
    return Document.from_tree(element("catalogue", *journals))


#: Attribute vocabulary of the random generator; deliberately small so
#: attribute node tests and value joins actually hit.
DEFAULT_ATTRIBUTE_NAMES = ("id", "kind", "lang")
DEFAULT_ATTRIBUTE_VALUES = ("1", "2", "x", "y")


def random_document(max_depth: int = 4, max_children: int = 4,
                    tags: Sequence[str] = DEFAULT_TAGS,
                    text_probability: float = 0.2,
                    attribute_probability: float = 0.0,
                    seed: int = 0) -> Document:
    """Generate a random document over a small tag alphabet.

    The property-based tests evaluate both sides of each paper equivalence on
    many such documents; small alphabets maximize the chance of node-test
    matches while random shapes exercise all axis relationships.  With
    ``attribute_probability`` > 0 each element independently gains up to two
    attributes over a small name/value vocabulary, which is how the
    attribute-extension tests get documents where attribute steps actually
    select something.
    """
    rng = random.Random(seed)

    def attributes() -> dict:
        out = {}
        if attribute_probability <= 0:
            return out
        for name in rng.sample(DEFAULT_ATTRIBUTE_NAMES, 2):
            if rng.random() < attribute_probability:
                out[name] = rng.choice(DEFAULT_ATTRIBUTE_VALUES)
        return out

    def build(depth: int) -> XMLNode:
        tag = rng.choice(list(tags))
        if depth >= max_depth:
            return element(tag, attributes=attributes())
        children: List[XMLNode] = []
        for _ in range(rng.randint(0, max_children)):
            if rng.random() < text_probability:
                children.append(text(rng.choice(FIRST_NAMES)))
            else:
                children.append(build(depth + 1))
        return element(tag, *children, attributes=attributes())

    return Document.from_tree(build(0))


def deep_chain_document(depth: int = 50, tag_cycle: Sequence[str] = DEFAULT_TAGS,
                        leaf_text: str = "leaf") -> Document:
    """A single path of nested elements: depth-heavy, breadth-1.

    Useful for stressing ancestor/descendant relationships and the stack
    depth of the streaming evaluator.
    """
    node = element(tag_cycle[(depth - 1) % len(tag_cycle)], text(leaf_text))
    for level in range(depth - 2, -1, -1):
        node = element(tag_cycle[level % len(tag_cycle)], node)
    return Document.from_tree(node)


def wide_document(width: int = 1000, tag: str = "item",
                  child_tag: str = "value") -> Document:
    """A root with ``width`` flat children: breadth-heavy, depth-2.

    Useful for stressing sibling axes and the candidate buffers of the
    streaming evaluator.
    """
    items = [element(tag, element(child_tag, text(str(i)))) for i in range(width)]
    return Document.from_tree(element("collection", *items))


def tagged_sections_document(sections: int = 120,
                             tags: Optional[Sequence[str]] = None,
                             children_per_section: int = 4,
                             depth: int = 3,
                             seed: int = 0) -> Document:
    """A document over a *wide* tag vocabulary: many distinct element names.

    The root holds ``sections`` subtrees whose tags cycle through ``tags``;
    inside each section, nesting continues for ``depth`` levels with random
    vocabulary tags and occasional text leaves.  Together with the
    low-overlap subscription workload this stresses per-event expectation
    dispatch: most events are relevant to only a few subscriptions, which a
    tag-indexed engine can exploit and a linear scan cannot.
    """
    if tags is None:
        tags = tuple(f"t{index:02d}" for index in range(48))
    rng = random.Random(seed)

    def build(level: int) -> XMLNode:
        tag = rng.choice(list(tags))
        if level >= depth:
            return element(tag, text(rng.choice(FIRST_NAMES)))
        children: List[XMLNode] = [
            build(level + 1) for _ in range(rng.randint(1, children_per_section))
        ]
        return element(tag, *children)

    section_nodes = [
        element(tags[index % len(tags)],
                *[build(1) for _ in range(children_per_section)])
        for index in range(sections)
    ]
    return Document.from_tree(element("db", *section_nodes))


#: Categories of the item-feed workload (YFilter-style publish/subscribe
#: messages); subscriptions qualify on them with ``[@category="..."]``.
ITEM_CATEGORIES = ("books", "music", "tools", "games", "news")
ITEM_CURRENCIES = ("EUR", "USD", "GBP")


def item_feed_document(items: int = 50,
                       categories: Sequence[str] = ITEM_CATEGORIES,
                       seed: int = 0) -> Document:
    """An attribute-heavy publish/subscribe message: a feed of ``item``\\ s.

    Every ``item`` carries ``id`` (unique, dense) and ``category``
    attributes; its ``price`` child carries a ``currency`` attribute and a
    numeric text value; roughly every third item adds a ``featured`` flag.
    This is the document side of the attribute-qualified SDI workload
    (:func:`repro.workloads.queries.attribute_subscription_workload`): the
    shapes real YFilter-style subscription sets are dominated by —
    ``//item[@id="42"]/price`` and friends — actually select here.
    """
    rng = random.Random(seed)
    nodes: List[XMLNode] = []
    for index in range(items):
        attributes = {
            "id": str(index),
            "category": categories[index % len(categories)],
        }
        if index % 3 == 0:
            attributes["featured"] = "yes"
        price = element(
            "price",
            text(str(rng.randint(1, 99))),
            attributes={"currency": rng.choice(ITEM_CURRENCIES)},
        )
        nodes.append(
            element(
                "item",
                element("title", text(rng.choice(TOPICS))),
                price,
                attributes=attributes,
            )
        )
    return Document.from_tree(element("feed", *nodes))


@dataclass
class RandomDocumentPool:
    """A reproducible pool of random documents for equivalence testing.

    The equivalence checker evaluates candidate paths on every document in
    the pool; a modest pool of varied shapes catches essentially all
    erroneous rewrites while keeping tests fast.
    """

    seeds: Sequence[int] = field(default_factory=lambda: tuple(range(8)))
    max_depth: int = 4
    max_children: int = 4
    tags: Sequence[str] = DEFAULT_TAGS
    #: With > 0, pool documents carry random attributes — used by the
    #: attribute-extension equivalence tests.
    attribute_probability: float = 0.0

    def documents(self) -> List[Document]:
        """Materialize the pool (documents are rebuilt on every call)."""
        docs = [
            random_document(
                max_depth=self.max_depth,
                max_children=self.max_children,
                tags=self.tags,
                attribute_probability=self.attribute_probability,
                seed=seed,
            )
            for seed in self.seeds
        ]
        docs.append(deep_chain_document(depth=6, tag_cycle=self.tags))
        docs.append(wide_document(width=5, tag=self.tags[0], child_tag=self.tags[1]))
        return docs
