"""SAX-like events used by the streaming substrate (System S2).

The streaming evaluator of :mod:`repro.streaming` consumes a flat sequence of
these events instead of a materialized tree, which is the whole point of the
paper: once a location path is reverse-axis-free it can be answered while the
events fly by.

Every structural event carries the *document-order position* of the node it
opens (``node_id``), assigned incrementally by whatever produces the stream.
Positions are what query answers refer to, and they allow checking that the
streaming evaluator selects exactly the same nodes as the in-memory
evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

#: Attribute payload of a :class:`StartElement`: ``(name, value)`` pairs in
#: document order.  A tuple (not a dict) so events stay frozen and hashable.
Attributes = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class StartDocument:
    """Marks the beginning of the stream; opens the root node (id 0)."""

    node_id: int = 0


@dataclass(frozen=True)
class EndDocument:
    """Marks the end of the stream; closes the root node."""

    node_id: int = 0


@dataclass(frozen=True)
class StartElement:
    """Opens an element node.

    ``attributes`` holds the element's attributes as ``(name, value)`` pairs
    in document order.  Attribute *nodes* occupy the document-order positions
    immediately after their owner element (``node_id + 1`` ...
    ``node_id + len(attributes)``), so producers advance their id counter
    past them; the whole attribute list is complete at this event, which is
    what lets the streaming engine decide attribute steps and ``[@a]``
    qualifiers instantly.
    """

    tag: str
    node_id: int
    attributes: Attributes = ()


@dataclass(frozen=True)
class EndElement:
    """Closes the element node opened by the matching :class:`StartElement`."""

    tag: str
    node_id: int


@dataclass(frozen=True)
class Text:
    """A text node.  Text nodes are leaves, so a single event suffices."""

    value: str
    node_id: int


Event = Union[StartDocument, EndDocument, StartElement, EndElement, Text]


def describe(event: Event) -> str:
    """One-line rendering of an event, used in traces and error messages."""
    if isinstance(event, StartDocument):
        return "start-document"
    if isinstance(event, EndDocument):
        return "end-document"
    if isinstance(event, StartElement):
        if event.attributes:
            rendered = " ".join(f'{name}="{value}"'
                                for name, value in event.attributes)
            return f"<{event.tag} {rendered}> (node {event.node_id})"
        return f"<{event.tag}> (node {event.node_id})"
    if isinstance(event, EndElement):
        return f"</{event.tag}> (node {event.node_id})"
    if isinstance(event, Text):
        return f"text {event.value!r} (node {event.node_id})"
    raise TypeError(f"not an event: {event!r}")
