"""SAX-like events used by the streaming substrate (System S2).

The streaming evaluator of :mod:`repro.streaming` consumes a flat sequence of
these events instead of a materialized tree, which is the whole point of the
paper: once a location path is reverse-axis-free it can be answered while the
events fly by.

Every structural event carries the *document-order position* of the node it
opens (``node_id``), assigned incrementally by whatever produces the stream.
Positions are what query answers refer to, and they allow checking that the
streaming evaluator selects exactly the same nodes as the in-memory
evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class StartDocument:
    """Marks the beginning of the stream; opens the root node (id 0)."""

    node_id: int = 0


@dataclass(frozen=True)
class EndDocument:
    """Marks the end of the stream; closes the root node."""

    node_id: int = 0


@dataclass(frozen=True)
class StartElement:
    """Opens an element node."""

    tag: str
    node_id: int


@dataclass(frozen=True)
class EndElement:
    """Closes the element node opened by the matching :class:`StartElement`."""

    tag: str
    node_id: int


@dataclass(frozen=True)
class Text:
    """A text node.  Text nodes are leaves, so a single event suffices."""

    value: str
    node_id: int


Event = Union[StartDocument, EndDocument, StartElement, EndElement, Text]


def describe(event: Event) -> str:
    """One-line rendering of an event, used in traces and error messages."""
    if isinstance(event, StartDocument):
        return "start-document"
    if isinstance(event, EndDocument):
        return "end-document"
    if isinstance(event, StartElement):
        return f"<{event.tag}> (node {event.node_id})"
    if isinstance(event, EndElement):
        return f"</{event.tag}> (node {event.node_id})"
    if isinstance(event, Text):
        return f"text {event.value!r} (node {event.node_id})"
    raise TypeError(f"not an event: {event!r}")
