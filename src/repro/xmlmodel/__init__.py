"""XML data model and event-stream substrate (System S1/S2/S3 in DESIGN.md).

This subpackage provides everything the paper's formal model of Section 2
needs:

* :mod:`repro.xmlmodel.node` — the node model (root, element and text nodes)
  with parent/child/sibling structure and a global document order,
* :mod:`repro.xmlmodel.document` — the :class:`Document` container and a
  convenience builder for constructing documents from nested Python tuples,
* :mod:`repro.xmlmodel.events` — SAX-like event dataclasses,
* :mod:`repro.xmlmodel.parser` — a hand-written well-formedness-checking XML
  tokenizer plus an :mod:`xml.sax` adapter, both producing event streams,
* :mod:`repro.xmlmodel.builder` — event stream ⇄ document conversions,
* :mod:`repro.xmlmodel.generator` — synthetic document generators used by the
  workloads and benchmarks,
* :mod:`repro.xmlmodel.serialize` — document → XML text serialization,
* :mod:`repro.xmlmodel.stream_serialize` — event stream → XML bytes
  re-serialization (substream payload encoding).
"""

from repro.xmlmodel.node import NodeKind, XMLNode
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlmodel.parser import PushTokenizer, iter_events, parse_xml
from repro.xmlmodel.builder import build_document, document_events
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.stream_serialize import (
    StreamSerializer,
    iter_serialized,
    serialize_events,
)
from repro.xmlmodel.generator import (
    DocumentSpec,
    deep_chain_document,
    item_feed_document,
    journal_document,
    random_document,
    wide_document,
)

__all__ = [
    "NodeKind",
    "XMLNode",
    "Document",
    "element",
    "text",
    "Event",
    "StartDocument",
    "EndDocument",
    "StartElement",
    "EndElement",
    "Text",
    "PushTokenizer",
    "iter_events",
    "parse_xml",
    "build_document",
    "document_events",
    "to_xml",
    "StreamSerializer",
    "iter_serialized",
    "serialize_events",
    "DocumentSpec",
    "journal_document",
    "random_document",
    "deep_chain_document",
    "wide_document",
    "item_feed_document",
]
