"""Compiled-query cache: parse + reverse-axis rewriting, memoized.

Selective dissemination of information (the paper's Section 1 use case)
confronts the system with *many* subscriptions, most of which repeat popular
query shapes.  Parsing and — far more costly — reverse-axis removal are pure
functions of the query text and the rule set, so they are memoized here.
:class:`repro.streaming.engine.SubscriptionIndex` compiles every subscription
through this cache; repeated subscription texts are parsed and rewritten
exactly once.

The cache is a small LRU keyed on ``(query, ruleset)``.  Keys may be query
strings or AST nodes (both are hashable); values are the reverse-axis-free
:class:`~repro.xpath.ast.PathExpr` ready for the streaming engine.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Tuple, Union as TypingUnion

from repro.xpath.analysis import has_reverse_steps
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_xpath

DEFAULT_MAXSIZE = 2048


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of a cache's effectiveness counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryCache:
    """LRU memoization of query compilation (parse + reverse-axis removal)."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[Hashable, Hashable], PathExpr]" = (
            OrderedDict())
        self._hits = 0
        self._misses = 0

    def compile(self, query: TypingUnion[str, PathExpr],
                ruleset: Hashable = "ruleset2") -> PathExpr:
        """Return the reverse-axis-free AST of ``query``.

        String queries are parsed; queries containing reverse axes are
        rewritten with :func:`repro.rewrite.remove_reverse_axes` using the
        given rule set.  Results are memoized, so compiling the same
        subscription text twice costs one dictionary lookup.
        """
        key = (query, ruleset)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            return cached
        self._misses += 1
        # Imported lazily: repro.rewrite itself imports repro.xpath.
        from repro.rewrite import remove_reverse_axes

        path = parse_xpath(query) if isinstance(query, str) else query
        if has_reverse_steps(path):
            path = remove_reverse_axes(path, ruleset=ruleset)
        self._entries[key] = path
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return path

    def info(self) -> CacheInfo:
        """Hit/miss counters and current size."""
        return CacheInfo(hits=self._hits, misses=self._misses,
                         size=len(self._entries), maxsize=self.maxsize)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide default cache shared by ``compile_query`` and the
#: subscription index.
_DEFAULT_CACHE = QueryCache()


def default_cache() -> QueryCache:
    """The process-wide cache used when no explicit cache is supplied."""
    return _DEFAULT_CACHE


def compile_query(query: TypingUnion[str, PathExpr],
                  ruleset: Hashable = "ruleset2") -> PathExpr:
    """Compile through the default cache (see :meth:`QueryCache.compile`)."""
    return _DEFAULT_CACHE.compile(query, ruleset=ruleset)


def compile_cache_info() -> CacheInfo:
    """Counters of the default cache."""
    return _DEFAULT_CACHE.info()


def clear_compile_cache() -> None:
    """Empty the default cache (mainly for tests and benchmarks)."""
    _DEFAULT_CACHE.clear()
