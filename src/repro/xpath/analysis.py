"""Structural analysis of xPath expressions.

These helpers implement the definitions of Sections 2.1 and 4 that the
rewriting algorithm and the benchmarks rely on:

* the *length* of a path — the number of location steps it contains outside
  and inside qualifiers (Section 2.1),
* detection of *reverse steps* and where the first one occurs,
* detection of *RR joins* (Definition 4.2) which delimit the input class of
  ``rare``,
* join counting and other size metrics used by the RuleSet1/RuleSet2
  comparison experiment (E8).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    Literal,
    LocationPath,
    NodeTestKind,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
    iter_union_members,
)
from repro.xpath.axes import Axis


# ---------------------------------------------------------------------------
# Iteration over every step of an expression (spine and qualifiers)
# ---------------------------------------------------------------------------

def iter_steps(path: PathExpr) -> Iterator[Step]:
    """Yield every step of ``path``, including steps inside qualifiers.

    Steps are yielded in left-to-right reading order: for each spine step,
    the step itself first, then the steps of its qualifiers.  This is the
    order in which ``rare`` eliminates reverse steps.  String literals
    (comparison operands of the attribute extension) contain no steps.
    """
    if isinstance(path, (Bottom, Literal)):
        return
    if isinstance(path, Union):
        for member in path.members:
            yield from iter_steps(member)
        return
    if isinstance(path, LocationPath):
        for spine_step in path.steps:
            yield spine_step
            for qual in spine_step.qualifiers:
                yield from _iter_qualifier_steps(qual)
        return
    raise TypeError(f"not a path expression: {path!r}")


def _iter_qualifier_steps(qual: Qualifier) -> Iterator[Step]:
    if isinstance(qual, PathQualifier):
        yield from iter_steps(qual.path)
    elif isinstance(qual, (AndExpr, OrExpr)):
        yield from _iter_qualifier_steps(qual.left)
        yield from _iter_qualifier_steps(qual.right)
    elif isinstance(qual, Comparison):
        yield from iter_steps(qual.left)
        yield from iter_steps(qual.right)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not a qualifier: {qual!r}")


# ---------------------------------------------------------------------------
# Size metrics
# ---------------------------------------------------------------------------

def path_length(path: PathExpr) -> int:
    """The length of a location path (Section 2.1).

    The number of location steps it contains outside and inside qualifiers,
    summed over all union members.
    """
    return sum(1 for _ in iter_steps(path))


def spine_length(path: PathExpr) -> int:
    """Number of steps on the main spine only (maximum over union members)."""
    if isinstance(path, (Bottom, Literal)):
        return 0
    if isinstance(path, Union):
        return max(spine_length(member) for member in path.members)
    if isinstance(path, LocationPath):
        return len(path.steps)
    raise TypeError(f"not a path expression: {path!r}")


def union_term_count(path: PathExpr) -> int:
    """Number of top-level union members (1 for a plain path, 0 for ⊥)."""
    if isinstance(path, (Bottom, Literal)):
        return 0
    if isinstance(path, Union):
        return sum(union_term_count(member) or 1 for member in path.members)
    return 1


def count_reverse_steps(path: PathExpr) -> int:
    """Number of reverse steps anywhere in the expression."""
    return sum(1 for step in iter_steps(path) if step.is_reverse)


def count_forward_steps(path: PathExpr) -> int:
    """Number of forward steps anywhere in the expression."""
    return sum(1 for step in iter_steps(path) if step.is_forward)


def has_reverse_steps(path: PathExpr) -> bool:
    """Whether any reverse step occurs in the expression."""
    return any(step.is_reverse for step in iter_steps(path))


def count_attribute_steps(path: PathExpr) -> int:
    """Number of attribute-axis steps anywhere in the expression."""
    return sum(1 for step in iter_steps(path) if step.axis is Axis.ATTRIBUTE)


def has_attribute_steps(path: PathExpr) -> bool:
    """Whether the expression uses the attribute extension anywhere.

    True when any step navigates the attribute axis *or* any comparison
    operand is a string literal — both lie outside the paper's fragment.
    """
    if any(step.axis is Axis.ATTRIBUTE for step in iter_steps(path)):
        return True
    return any(
        isinstance(comparison.left, Literal)
        or isinstance(comparison.right, Literal)
        for comparison in iter_comparisons(path))


def count_joins(path: PathExpr) -> int:
    """Number of join comparisons (``=`` or ``==``) anywhere in the expression.

    The Section 4 "Comparison" paragraph observes that RuleSet1 output
    contains as many joins as the input had reverse steps while RuleSet2
    output contains none; experiment E8 reproduces that observation with this
    counter.
    """
    count = 0
    if isinstance(path, (Bottom, Literal)):
        return 0
    if isinstance(path, Union):
        return sum(count_joins(member) for member in path.members)
    if isinstance(path, LocationPath):
        for spine_step in path.steps:
            for qual in spine_step.qualifiers:
                count += _count_joins_in_qualifier(qual)
        return count
    raise TypeError(f"not a path expression: {path!r}")


def _count_joins_in_qualifier(qual: Qualifier) -> int:
    if isinstance(qual, PathQualifier):
        return count_joins(qual.path)
    if isinstance(qual, (AndExpr, OrExpr)):
        return _count_joins_in_qualifier(qual.left) + _count_joins_in_qualifier(qual.right)
    if isinstance(qual, Comparison):
        return 1 + count_joins(qual.left) + count_joins(qual.right)
    raise TypeError(f"not a qualifier: {qual!r}")


# ---------------------------------------------------------------------------
# Absolute / relative, RR joins (Definition 4.2)
# ---------------------------------------------------------------------------

def is_absolute(path: PathExpr) -> bool:
    """Whether the path is absolute in the sense of Section 2.1.

    A union is absolute iff all of its members are; ⊥ is treated as absolute
    (it is the canonical equivalent of absolute paths selecting nothing), and
    so are string literals (their value never depends on the context node).
    """
    if isinstance(path, (Bottom, Literal)):
        return True
    if isinstance(path, Union):
        return all(is_absolute(member) for member in path.members)
    if isinstance(path, LocationPath):
        return path.absolute
    raise TypeError(f"not a path expression: {path!r}")


def is_rr_join(comparison: Comparison) -> bool:
    """Whether a comparison is an RR join (Definition 4.2).

    ``p1 θ p2`` is an RR join when both operands are *relative* paths and at
    least one of them contains a reverse step.
    """
    left_relative = not is_absolute(comparison.left)
    right_relative = not is_absolute(comparison.right)
    if not (left_relative and right_relative):
        return False
    return has_reverse_steps(comparison.left) or has_reverse_steps(comparison.right)


def iter_comparisons(path: PathExpr) -> Iterator[Comparison]:
    """Yield every comparison qualifier anywhere in the expression."""
    if isinstance(path, (Bottom, Literal)):
        return
    if isinstance(path, Union):
        for member in path.members:
            yield from iter_comparisons(member)
        return
    if isinstance(path, LocationPath):
        for spine_step in path.steps:
            for qual in spine_step.qualifiers:
                yield from _iter_comparisons_in_qualifier(qual)
        return
    raise TypeError(f"not a path expression: {path!r}")


def _iter_comparisons_in_qualifier(qual: Qualifier) -> Iterator[Comparison]:
    if isinstance(qual, PathQualifier):
        yield from iter_comparisons(qual.path)
    elif isinstance(qual, (AndExpr, OrExpr)):
        yield from _iter_comparisons_in_qualifier(qual.left)
        yield from _iter_comparisons_in_qualifier(qual.right)
    elif isinstance(qual, Comparison):
        yield qual
        yield from iter_comparisons(qual.left)
        yield from iter_comparisons(qual.right)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not a qualifier: {qual!r}")


def has_rr_joins(path: PathExpr) -> bool:
    """Whether any qualifier of the expression contains an RR join."""
    return any(is_rr_join(comparison) for comparison in iter_comparisons(path))


def is_rare_input(path: PathExpr) -> Tuple[bool, Optional[str]]:
    """Check whether ``path`` is in the input class of ``rare``.

    Returns ``(True, None)`` if the path is absolute and free of RR joins,
    otherwise ``(False, reason)`` with a human-readable reason.
    """
    if not is_absolute(path):
        return False, "rare requires an absolute location path"
    if has_rr_joins(path):
        return False, "qualifiers contain an RR join (Definition 4.2)"
    return True, None


# ---------------------------------------------------------------------------
# Automaton compilability (lazy-DFA backend classification)
# ---------------------------------------------------------------------------

#: Spine axes the lazy-DFA backend compiles into automaton transitions.
#: The ancestor-chain axes (``self``/``child``/``descendant``/
#: ``descendant-or-self``/``attribute``) are decided by a run over the
#: root-to-node tag sequence alone; ``following``/``following-sibling``
#: compile into *sibling windows* — NFA states armed by the anchor's close
#: event (the automaton's alphabet includes EndElement) and expired when
#: the anchor's parent closes.
AUTOMATON_SPINE_AXES = frozenset({
    Axis.SELF,
    Axis.CHILD,
    Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF,
    Axis.ATTRIBUTE,
    Axis.FOLLOWING,
    Axis.FOLLOWING_SIBLING,
})


#: Spine alternatives per union member before the automaton compiler gives
#: up and routes the member to the expectation engine.  ``//`` descents
#: (``descendant-or-self::node()``) fold into the next consuming item, so
#: only *named* ``descendant-or-self`` steps fork a self/descendant
#: alternative each — the limit is a safety valve for adversarial chains of
#: those, not something realistic pools reach.
AUTOMATON_ALTERNATIVE_LIMIT = 64

#: Internal node-test categories of the automaton's consuming transitions:
#: element by name, any element, any node, text, attribute by name, any
#: attribute.  Exposed for :mod:`repro.streaming.automaton`, which builds
#: its NFA edges from exactly these.
K_NAME, K_WILD, K_NODE, K_TEXT, K_ATTR, K_ATTR_ANY = range(6)

#: Categories matching only leaf nodes: nothing can be consumed below them.
LEAF_TEST_KINDS = (K_TEXT, K_ATTR, K_ATTR_ANY)

#: Item modes of a compiled alternative.  ``M_CHILD`` consumes one child
#: level, ``M_DESC`` consumes after a skip-any-elements loop, and the four
#: window modes consume from a *sibling window* armed by the previous
#: item's close event: ``following-sibling``/``following`` anchored at the
#: item itself (``M_SIB``/``M_FOL``) or at any of its descendants
#: (``M_SIB_DEEP``/``M_FOL_DEEP``, produced by a pending ``//`` descent in
#: front of the window step).  ``M_CHILD == False`` and ``M_DESC == True``
#: so window-free items keep their historical ``(loop, test)`` reading.
M_CHILD, M_DESC, M_SIB, M_SIB_DEEP, M_FOL, M_FOL_DEEP = range(6)

#: Modes whose item consumes from a close-event-armed window.
WINDOW_MODES = frozenset({M_SIB, M_SIB_DEEP, M_FOL, M_FOL_DEEP})


def automaton_test_of(spine_step: Step):
    """The consumable test category of a spine step, as ``(kind, name)``.

    ``None`` means the step can never match anything on its axis (e.g.
    ``attribute::text()``), which drops the alternative.
    """
    kind = spine_step.node_test.kind
    name = spine_step.node_test.name
    if kind is NodeTestKind.ATTRIBUTE:
        return (K_ATTR, name) if name is not None else (K_ATTR_ANY, None)
    if spine_step.axis is Axis.ATTRIBUTE:
        # The parser normalizes attribute-axis tests to ATTRIBUTE kind; map
        # the remaining spellings defensively.
        if kind in (NodeTestKind.WILDCARD, NodeTestKind.NODE):
            return (K_ATTR_ANY, None)
        if kind is NodeTestKind.NAME:
            return (K_ATTR, name)
        return None
    if kind is NodeTestKind.NAME:
        return (K_NAME, name)
    if kind is NodeTestKind.WILDCARD:
        return (K_WILD, None)
    if kind is NodeTestKind.TEXT:
        return (K_TEXT, None)
    return (K_NODE, None)


def intersect_automaton_tests(a, b):
    """Intersection of two test categories (``self`` steps folded into the
    preceding consuming transition); ``None`` is the empty intersection."""
    ka, na = a
    kb, nb = b
    if ka == K_NODE:
        return b
    if kb == K_NODE:
        return a
    if ka == K_ATTR_ANY:
        return b if kb in (K_ATTR, K_ATTR_ANY) else None
    if kb == K_ATTR_ANY:
        return a if ka == K_ATTR else None
    if ka == K_ATTR or kb == K_ATTR:
        return a if (ka == kb and na == nb) else None
    if ka == K_TEXT or kb == K_TEXT:
        return a if ka == kb else None
    if ka == K_WILD:
        return b
    if kb == K_WILD:
        return a
    return a if na == nb else None


def _fold_self_test(items, test):
    """Fold a ``self`` step into the preceding consuming item (or the root)."""
    if not items:
        # The anchor is the document root, which only node() matches.
        return () if test[0] == K_NODE else None
    loop, last = items[-1]
    merged = intersect_automaton_tests(last, test)
    if merged is None:
        return None
    return items[:-1] + ((loop, merged),)


def automaton_spine_alternatives(steps: Tuple[Step, ...],
                                 limit: int = AUTOMATON_ALTERNATIVE_LIMIT):
    """Compile a qualifier-free spine into consuming alternatives.

    Each alternative is a tuple of ``(mode, test)`` items: consume one tree
    level matching ``test`` (a category from :func:`automaton_test_of`),
    either as a child (``M_CHILD``), after a skip-any-elements loop
    (``M_DESC``), or inside a sibling window armed by the previous item's
    close event (the :data:`WINDOW_MODES`).  A ``//`` descent
    (``descendant-or-self::node()``) does not fork alternatives: it is
    carried as a *pending* flag and folded into the next item's mode, so
    ``//a//b`` compiles to the single alternative
    ``((M_DESC, a), (M_DESC, b))`` and only *named*
    ``descendant-or-self::t`` steps fork self/descendant pairs.  Returns
    ``None`` when the alternatives still explode past ``limit`` (the
    automaton compiler then falls back to the expectation engine) and
    ``[]`` when nothing can ever match.  This is the exact computation
    :mod:`repro.streaming.automaton` threads into its NFA, so the
    classifiers below can never drift from compiler behavior.
    """
    # (items, pending): ``pending`` records a ``//`` descent not yet
    # folded into a consuming item.
    alternatives = [((), False)]
    for spine_step in steps:
        test = automaton_test_of(spine_step)
        axis = spine_step.axis
        fresh = []
        for items, pending in alternatives:
            if test is None:
                continue
            at_leaf = bool(items) and items[-1][1][0] in LEAF_TEST_KINDS
            if axis is Axis.DESCENDANT_OR_SELF and test[0] == K_NODE:
                # ``//`` desugaring: defer the descent into the next
                # item's mode instead of forking here.  At a leaf the
                # descendant branch is empty and the step is the identity.
                fresh.append((items, pending or not at_leaf))
                continue
            if axis is Axis.SELF or axis is Axis.DESCENDANT_OR_SELF:
                # ``self::t`` on a pending descent (and any named
                # ``descendant-or-self::t``) splits into the zero-descent
                # fold and a consuming descendant item.
                folded = _fold_self_test(items, test)
                if folded is not None:
                    fresh.append((folded, False))
                if (axis is Axis.DESCENDANT_OR_SELF or pending) \
                        and not at_leaf:
                    fresh.append((items + ((M_DESC, test),), False))
                continue
            if axis in (Axis.FOLLOWING, Axis.FOLLOWING_SIBLING):
                # Attribute nodes neither appear on nor anchor the sibling
                # axes in this model: such windows are empty.
                if test[0] in (K_ATTR, K_ATTR_ANY):
                    continue
                if items and items[-1][1][0] in (K_ATTR, K_ATTR_ANY):
                    continue
                if axis is Axis.FOLLOWING:
                    mode = M_FOL_DEEP if pending else M_FOL
                else:
                    mode = M_SIB_DEEP if pending else M_SIB
                fresh.append((items + ((mode, test),), False))
                continue
            if at_leaf:
                # Text and attribute nodes have nothing below them.
                continue
            loop = pending or axis is Axis.DESCENDANT
            fresh.append((items + ((M_DESC if loop else M_CHILD, test),),
                          False))
        seen = set()
        alternatives = []
        for pair in fresh:
            if pair not in seen:
                seen.add(pair)
                alternatives.append(pair)
        if not alternatives:
            return []
        if len(alternatives) > limit:
            return None
    final = []
    closed = set()
    for items, pending in alternatives:
        # A trailing ``//`` selects the reached nodes *and* all their
        # descendants; expand it now that no item is left to fold into.
        expansion = (items, items + ((M_DESC, (K_NODE, None)),)) \
            if pending else (items,)
        for expanded in expansion:
            if expanded not in closed:
                closed.add(expanded)
                final.append(expanded)
    if len(final) > limit:
        return None
    return final


def automaton_spine_cut(member: LocationPath) -> Optional[int]:
    """Index of the first spine step the automaton cannot carry past.

    The lazy-DFA backend compiles the qualifier-free prefix of a member's
    spine into automaton transitions and hands the rest to the expectation
    engine at a *gate*.  The cut is the first step that either carries
    qualifiers or navigates an axis outside :data:`AUTOMATON_SPINE_AXES`;
    ``None`` means the whole spine compiles (the member is structurally
    decided by DFA accept sets alone, unless its alternatives explode —
    see :func:`automaton_spine_alternatives`).
    """
    for index, spine_step in enumerate(member.steps):
        if spine_step.axis not in AUTOMATON_SPINE_AXES or spine_step.qualifiers:
            return index
    return None


def automaton_split_member(member: LocationPath):
    """Split a member's spine at the automaton's hand-off point.

    Returns ``(prefix_steps, gate_qualifiers, remaining_steps)``:
    ``gate_qualifiers is None`` marks a structurally decided member (no
    gate; the whole spine compiles), an empty tuple a hand-off at an
    unsupported axis.  Returns ``None`` when the member cannot be compiled
    at all (its very first step is already unsupported).  This is the one
    place the hand-off is defined — the automaton compiler
    (:mod:`repro.streaming.automaton`) and the classifiers below both
    consume it, so they can never drift apart.
    """
    steps = member.steps
    cut = automaton_spine_cut(member)
    if cut is None:
        return steps, None, ()
    at = steps[cut]
    if at.axis not in AUTOMATON_SPINE_AXES:
        if cut == 0:
            return None
        return steps[:cut], (), steps[cut:]
    return (steps[:cut] + (at.without_qualifiers(),),
            at.qualifiers, steps[cut + 1:])


def is_automaton_compilable(member: LocationPath) -> bool:
    """Whether the lazy-DFA backend serves this member without falling back
    to the expectation engine from the very first step.

    Exact: mirrors the compiler — the member must split
    (:func:`automaton_split_member`) and the compiled prefix's alternatives
    must stay within :data:`AUTOMATON_ALTERNATIVE_LIMIT`.
    """
    split = automaton_split_member(member)
    if split is None:
        return False
    return automaton_spine_alternatives(split[0]) is not None


def is_structurally_decided(path: PathExpr) -> bool:
    """Whether the lazy-DFA backend answers ``path`` by accept sets alone.

    True when every union member's spine uses only
    :data:`AUTOMATON_SPINE_AXES`, no step anywhere carries a qualifier,
    and the compiled alternatives stay within
    :data:`AUTOMATON_ALTERNATIVE_LIMIT` — no expectations, no conditions,
    one dictionary lookup per event.
    """
    for member in iter_union_members(path):
        if isinstance(member, Bottom):
            continue
        if not isinstance(member, LocationPath):
            return False
        if automaton_spine_cut(member) is not None:
            return False
        if automaton_spine_alternatives(member.steps) is None:
            return False
    return True


# ---------------------------------------------------------------------------
# Structural prefixes (multi-subscription sharing analysis)
# ---------------------------------------------------------------------------

def spine_sequences(path: PathExpr) -> List[Tuple[Step, ...]]:
    """The spine step sequences of every union member, in order.

    ``⊥`` contributes no sequence (it matches nothing).  Each sequence is a
    chain that the multi-subscription engine inserts into its prefix trie;
    two subscriptions share matching state exactly on the common prefixes of
    these sequences.
    """
    if isinstance(path, (Bottom, Literal)):
        return []
    if isinstance(path, Union):
        sequences: List[Tuple[Step, ...]] = []
        for member in path.members:
            sequences.extend(spine_sequences(member))
        return sequences
    if isinstance(path, LocationPath):
        return [tuple(path.steps)]
    raise TypeError(f"not a path expression: {path!r}")


def common_spine_prefix(paths: Iterable[PathExpr]) -> Tuple[Step, ...]:
    """Longest step prefix shared by *every* union member of every path.

    Steps compare structurally (axis, node test and qualifiers), matching
    the sharing criterion of the subscription trie.
    """
    sequences: List[Tuple[Step, ...]] = []
    for path in paths:
        sequences.extend(spine_sequences(path))
    if not sequences:
        return ()
    prefix = sequences[0]
    for sequence in sequences[1:]:
        limit = min(len(prefix), len(sequence))
        shared = 0
        while shared < limit and prefix[shared] == sequence[shared]:
            shared += 1
        prefix = prefix[:shared]
        if not prefix:
            break
    return prefix


def prefix_sharing_summary(paths: Iterable[PathExpr]) -> dict:
    """How much leading-step structure a batch of paths shares.

    Returns the total number of spine steps across all paths, the number of
    distinct step prefixes (the node count of a prefix trie over the batch),
    and the number of steps saved by sharing.  Used by
    :class:`repro.streaming.engine.SubscriptionIndex` to report how much
    per-event work the shared trie avoids.  Under live churn the index
    feeds this the *surviving* subscriptions only, so the ratio always
    describes the set actually being matched — retired ordinals awaiting
    ``vacuum()`` contribute nothing, even though their trie nodes linger
    until compaction.
    """
    total_steps = 0
    prefixes = set()
    path_count = 0
    for path in paths:
        path_count += 1
        for sequence in spine_sequences(path):
            total_steps += len(sequence)
            for stop in range(1, len(sequence) + 1):
                prefixes.add(sequence[:stop])
    shared = total_steps - len(prefixes)
    return {
        "paths": path_count,
        "spine_steps": total_steps,
        "trie_nodes": len(prefixes),
        "shared_steps": shared,
        "sharing_ratio": shared / total_steps if total_steps else 0.0,
    }


def summarize(path: PathExpr) -> dict:
    """Size summary used by benchmark reports."""
    return {
        "length": path_length(path),
        "spine_length": spine_length(path),
        "union_terms": union_term_count(path),
        "reverse_steps": count_reverse_steps(path),
        "forward_steps": count_forward_steps(path),
        "attribute_steps": count_attribute_steps(path),
        "joins": count_joins(path),
        "absolute": is_absolute(path),
    }
