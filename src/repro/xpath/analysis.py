"""Structural analysis of xPath expressions.

These helpers implement the definitions of Sections 2.1 and 4 that the
rewriting algorithm and the benchmarks rely on:

* the *length* of a path — the number of location steps it contains outside
  and inside qualifiers (Section 2.1),
* detection of *reverse steps* and where the first one occurs,
* detection of *RR joins* (Definition 4.2) which delimit the input class of
  ``rare``,
* join counting and other size metrics used by the RuleSet1/RuleSet2
  comparison experiment (E8).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    Literal,
    LocationPath,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
)
from repro.xpath.axes import Axis


# ---------------------------------------------------------------------------
# Iteration over every step of an expression (spine and qualifiers)
# ---------------------------------------------------------------------------

def iter_steps(path: PathExpr) -> Iterator[Step]:
    """Yield every step of ``path``, including steps inside qualifiers.

    Steps are yielded in left-to-right reading order: for each spine step,
    the step itself first, then the steps of its qualifiers.  This is the
    order in which ``rare`` eliminates reverse steps.  String literals
    (comparison operands of the attribute extension) contain no steps.
    """
    if isinstance(path, (Bottom, Literal)):
        return
    if isinstance(path, Union):
        for member in path.members:
            yield from iter_steps(member)
        return
    if isinstance(path, LocationPath):
        for spine_step in path.steps:
            yield spine_step
            for qual in spine_step.qualifiers:
                yield from _iter_qualifier_steps(qual)
        return
    raise TypeError(f"not a path expression: {path!r}")


def _iter_qualifier_steps(qual: Qualifier) -> Iterator[Step]:
    if isinstance(qual, PathQualifier):
        yield from iter_steps(qual.path)
    elif isinstance(qual, (AndExpr, OrExpr)):
        yield from _iter_qualifier_steps(qual.left)
        yield from _iter_qualifier_steps(qual.right)
    elif isinstance(qual, Comparison):
        yield from iter_steps(qual.left)
        yield from iter_steps(qual.right)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not a qualifier: {qual!r}")


# ---------------------------------------------------------------------------
# Size metrics
# ---------------------------------------------------------------------------

def path_length(path: PathExpr) -> int:
    """The length of a location path (Section 2.1).

    The number of location steps it contains outside and inside qualifiers,
    summed over all union members.
    """
    return sum(1 for _ in iter_steps(path))


def spine_length(path: PathExpr) -> int:
    """Number of steps on the main spine only (maximum over union members)."""
    if isinstance(path, (Bottom, Literal)):
        return 0
    if isinstance(path, Union):
        return max(spine_length(member) for member in path.members)
    if isinstance(path, LocationPath):
        return len(path.steps)
    raise TypeError(f"not a path expression: {path!r}")


def union_term_count(path: PathExpr) -> int:
    """Number of top-level union members (1 for a plain path, 0 for ⊥)."""
    if isinstance(path, (Bottom, Literal)):
        return 0
    if isinstance(path, Union):
        return sum(union_term_count(member) or 1 for member in path.members)
    return 1


def count_reverse_steps(path: PathExpr) -> int:
    """Number of reverse steps anywhere in the expression."""
    return sum(1 for step in iter_steps(path) if step.is_reverse)


def count_forward_steps(path: PathExpr) -> int:
    """Number of forward steps anywhere in the expression."""
    return sum(1 for step in iter_steps(path) if step.is_forward)


def has_reverse_steps(path: PathExpr) -> bool:
    """Whether any reverse step occurs in the expression."""
    return any(step.is_reverse for step in iter_steps(path))


def count_attribute_steps(path: PathExpr) -> int:
    """Number of attribute-axis steps anywhere in the expression."""
    return sum(1 for step in iter_steps(path) if step.axis is Axis.ATTRIBUTE)


def has_attribute_steps(path: PathExpr) -> bool:
    """Whether the expression uses the attribute extension anywhere.

    True when any step navigates the attribute axis *or* any comparison
    operand is a string literal — both lie outside the paper's fragment.
    """
    if any(step.axis is Axis.ATTRIBUTE for step in iter_steps(path)):
        return True
    return any(
        isinstance(comparison.left, Literal)
        or isinstance(comparison.right, Literal)
        for comparison in iter_comparisons(path))


def count_joins(path: PathExpr) -> int:
    """Number of join comparisons (``=`` or ``==``) anywhere in the expression.

    The Section 4 "Comparison" paragraph observes that RuleSet1 output
    contains as many joins as the input had reverse steps while RuleSet2
    output contains none; experiment E8 reproduces that observation with this
    counter.
    """
    count = 0
    if isinstance(path, (Bottom, Literal)):
        return 0
    if isinstance(path, Union):
        return sum(count_joins(member) for member in path.members)
    if isinstance(path, LocationPath):
        for spine_step in path.steps:
            for qual in spine_step.qualifiers:
                count += _count_joins_in_qualifier(qual)
        return count
    raise TypeError(f"not a path expression: {path!r}")


def _count_joins_in_qualifier(qual: Qualifier) -> int:
    if isinstance(qual, PathQualifier):
        return count_joins(qual.path)
    if isinstance(qual, (AndExpr, OrExpr)):
        return _count_joins_in_qualifier(qual.left) + _count_joins_in_qualifier(qual.right)
    if isinstance(qual, Comparison):
        return 1 + count_joins(qual.left) + count_joins(qual.right)
    raise TypeError(f"not a qualifier: {qual!r}")


# ---------------------------------------------------------------------------
# Absolute / relative, RR joins (Definition 4.2)
# ---------------------------------------------------------------------------

def is_absolute(path: PathExpr) -> bool:
    """Whether the path is absolute in the sense of Section 2.1.

    A union is absolute iff all of its members are; ⊥ is treated as absolute
    (it is the canonical equivalent of absolute paths selecting nothing), and
    so are string literals (their value never depends on the context node).
    """
    if isinstance(path, (Bottom, Literal)):
        return True
    if isinstance(path, Union):
        return all(is_absolute(member) for member in path.members)
    if isinstance(path, LocationPath):
        return path.absolute
    raise TypeError(f"not a path expression: {path!r}")


def is_rr_join(comparison: Comparison) -> bool:
    """Whether a comparison is an RR join (Definition 4.2).

    ``p1 θ p2`` is an RR join when both operands are *relative* paths and at
    least one of them contains a reverse step.
    """
    left_relative = not is_absolute(comparison.left)
    right_relative = not is_absolute(comparison.right)
    if not (left_relative and right_relative):
        return False
    return has_reverse_steps(comparison.left) or has_reverse_steps(comparison.right)


def iter_comparisons(path: PathExpr) -> Iterator[Comparison]:
    """Yield every comparison qualifier anywhere in the expression."""
    if isinstance(path, (Bottom, Literal)):
        return
    if isinstance(path, Union):
        for member in path.members:
            yield from iter_comparisons(member)
        return
    if isinstance(path, LocationPath):
        for spine_step in path.steps:
            for qual in spine_step.qualifiers:
                yield from _iter_comparisons_in_qualifier(qual)
        return
    raise TypeError(f"not a path expression: {path!r}")


def _iter_comparisons_in_qualifier(qual: Qualifier) -> Iterator[Comparison]:
    if isinstance(qual, PathQualifier):
        yield from iter_comparisons(qual.path)
    elif isinstance(qual, (AndExpr, OrExpr)):
        yield from _iter_comparisons_in_qualifier(qual.left)
        yield from _iter_comparisons_in_qualifier(qual.right)
    elif isinstance(qual, Comparison):
        yield qual
        yield from iter_comparisons(qual.left)
        yield from iter_comparisons(qual.right)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not a qualifier: {qual!r}")


def has_rr_joins(path: PathExpr) -> bool:
    """Whether any qualifier of the expression contains an RR join."""
    return any(is_rr_join(comparison) for comparison in iter_comparisons(path))


def is_rare_input(path: PathExpr) -> Tuple[bool, Optional[str]]:
    """Check whether ``path`` is in the input class of ``rare``.

    Returns ``(True, None)`` if the path is absolute and free of RR joins,
    otherwise ``(False, reason)`` with a human-readable reason.
    """
    if not is_absolute(path):
        return False, "rare requires an absolute location path"
    if has_rr_joins(path):
        return False, "qualifiers contain an RR join (Definition 4.2)"
    return True, None


# ---------------------------------------------------------------------------
# Structural prefixes (multi-subscription sharing analysis)
# ---------------------------------------------------------------------------

def spine_sequences(path: PathExpr) -> List[Tuple[Step, ...]]:
    """The spine step sequences of every union member, in order.

    ``⊥`` contributes no sequence (it matches nothing).  Each sequence is a
    chain that the multi-subscription engine inserts into its prefix trie;
    two subscriptions share matching state exactly on the common prefixes of
    these sequences.
    """
    if isinstance(path, (Bottom, Literal)):
        return []
    if isinstance(path, Union):
        sequences: List[Tuple[Step, ...]] = []
        for member in path.members:
            sequences.extend(spine_sequences(member))
        return sequences
    if isinstance(path, LocationPath):
        return [tuple(path.steps)]
    raise TypeError(f"not a path expression: {path!r}")


def common_spine_prefix(paths: Iterable[PathExpr]) -> Tuple[Step, ...]:
    """Longest step prefix shared by *every* union member of every path.

    Steps compare structurally (axis, node test and qualifiers), matching
    the sharing criterion of the subscription trie.
    """
    sequences: List[Tuple[Step, ...]] = []
    for path in paths:
        sequences.extend(spine_sequences(path))
    if not sequences:
        return ()
    prefix = sequences[0]
    for sequence in sequences[1:]:
        limit = min(len(prefix), len(sequence))
        shared = 0
        while shared < limit and prefix[shared] == sequence[shared]:
            shared += 1
        prefix = prefix[:shared]
        if not prefix:
            break
    return prefix


def prefix_sharing_summary(paths: Iterable[PathExpr]) -> dict:
    """How much leading-step structure a batch of paths shares.

    Returns the total number of spine steps across all paths, the number of
    distinct step prefixes (the node count of a prefix trie over the batch),
    and the number of steps saved by sharing.  Used by
    :class:`repro.streaming.engine.SubscriptionIndex` to report how much
    per-event work the shared trie avoids.
    """
    total_steps = 0
    prefixes = set()
    path_count = 0
    for path in paths:
        path_count += 1
        for sequence in spine_sequences(path):
            total_steps += len(sequence)
            for stop in range(1, len(sequence) + 1):
                prefixes.add(sequence[:stop])
    shared = total_steps - len(prefixes)
    return {
        "paths": path_count,
        "spine_steps": total_steps,
        "trie_nodes": len(prefixes),
        "shared_steps": shared,
        "sharing_ratio": shared / total_steps if total_steps else 0.0,
    }


def summarize(path: PathExpr) -> dict:
    """Size summary used by benchmark reports."""
    return {
        "length": path_length(path),
        "spine_length": spine_length(path),
        "union_terms": union_term_count(path),
        "reverse_steps": count_reverse_steps(path),
        "forward_steps": count_forward_steps(path),
        "attribute_steps": count_attribute_steps(path),
        "joins": count_joins(path),
        "absolute": is_absolute(path),
    }
