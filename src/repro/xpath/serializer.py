"""Serialization of xPath ASTs back to (unabbreviated) expression text.

The output uses the exact notation of the paper: explicit axes, ``[...]``
qualifiers, ``|`` unions, ``==`` node-identity joins and ``⊥`` for the empty
path.  ``parse_xpath(to_string(p))`` always reproduces ``p`` (round-trip
property tested in ``tests/property/test_parser_roundtrip.py``).
"""

from __future__ import annotations

from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    Literal,
    LocationPath,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
)

BOTTOM_SYMBOL = "⊥"


def to_string(path: PathExpr) -> str:
    """Render a path expression as unabbreviated xPath text.

    Attribute steps render with the explicit axis (``attribute::price``)
    like every other step; string literals pick whichever quote style does
    not occur in the value (XPath 1.0 literals have no escapes).
    """
    if isinstance(path, Bottom):
        return BOTTOM_SYMBOL
    if isinstance(path, Literal):
        return _literal(path)
    if isinstance(path, Union):
        return " | ".join(to_string(member) for member in path.members)
    if isinstance(path, LocationPath):
        return _location_path(path)
    raise TypeError(f"not a path expression: {path!r}")


def _literal(literal: Literal) -> str:
    if '"' not in literal.value:
        return f'"{literal.value}"'
    if "'" not in literal.value:
        return f"'{literal.value}'"
    raise ValueError(
        f"string literal {literal.value!r} mixes both quote styles and "
        f"cannot be written as an XPath 1.0 literal")


def step_to_string(step: Step) -> str:
    """Render a single location step."""
    rendered = f"{step.axis.xpath_name}::{step.node_test}"
    for qual in step.qualifiers:
        rendered += f"[{qualifier_to_string(qual)}]"
    return rendered


def qualifier_to_string(qual: Qualifier) -> str:
    """Render a qualifier expression."""
    if isinstance(qual, PathQualifier):
        return to_string(qual.path)
    if isinstance(qual, AndExpr):
        return f"{_operand(qual.left)} and {_operand(qual.right)}"
    if isinstance(qual, OrExpr):
        return f"{_operand(qual.left)} or {_operand(qual.right)}"
    if isinstance(qual, Comparison):
        return (f"{_comparison_operand(qual.left)} {qual.op} "
                f"{_comparison_operand(qual.right)}")
    raise TypeError(f"not a qualifier: {qual!r}")


def _comparison_operand(path: PathExpr) -> str:
    """Render a join operand, parenthesizing unions to keep precedence."""
    rendered = to_string(path)
    if isinstance(path, Union):
        return f"({rendered})"
    return rendered


def _operand(qual: Qualifier) -> str:
    """Render an and/or operand, parenthesizing nested boolean operators."""
    rendered = qualifier_to_string(qual)
    if isinstance(qual, (AndExpr, OrExpr)):
        return f"({rendered})"
    return rendered


def _location_path(path: LocationPath) -> str:
    if path.is_root_only:
        return "/"
    body = "/".join(step_to_string(step) for step in path.steps)
    return f"/{body}" if path.absolute else body
