"""xPath language front end (System S4 in DESIGN.md).

Implements the location path language of Section 2.1 of the paper: abstract
syntax, a lexer and recursive-descent parser accepting both abbreviated and
unabbreviated XPath syntax, a serializer producing unabbreviated syntax, and
structural analysis helpers (path length, reverse-step detection, RR-join
detection).

Supported grammar — the paper's fragment::

    path     ::= path | path  |  / path  |  path / path  |  path [ qualif ]
              |  axis :: nodetest  |  ⊥
    qualif   ::= qualif and qualif  |  qualif or qualif  |  ( qualif )
              |  path = path  |  path == path  |  path
    axis     ::= self | child | descendant | descendant-or-self | following
              |  following-sibling | parent | ancestor | ancestor-or-self
              |  preceding | preceding-sibling
    nodetest ::= tagname | * | text() | node()

plus the **attribute extension** (beyond the paper's fragment, motivated by
real SDI subscription workloads; see
:func:`repro.xpath.analysis.has_attribute_steps` to detect its use)::

    axis     ::= ... | attribute            (abbreviated @)
    nodetest ::= ... | @tagname | @*        (on the attribute axis)
    qualif   ::= ... | path = "literal" | "literal" = path

Abbreviations ``//``, ``.``, ``..``, ``@name`` and bare tag names expand
during parsing.  The namespace axis stays outside the model and is rejected
with an error naming the offending token.
"""

from repro.xpath.axes import Axis
from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    Literal,
    LocationPath,
    NodeTest,
    NodeTestKind,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string
from repro.xpath import analysis
from repro.xpath.cache import (
    CacheInfo,
    QueryCache,
    clear_compile_cache,
    compile_cache_info,
    compile_query,
    default_cache,
)

__all__ = [
    "CacheInfo",
    "QueryCache",
    "compile_query",
    "compile_cache_info",
    "clear_compile_cache",
    "default_cache",
    "Axis",
    "NodeTest",
    "NodeTestKind",
    "Step",
    "LocationPath",
    "Union",
    "Bottom",
    "Literal",
    "PathExpr",
    "Qualifier",
    "PathQualifier",
    "AndExpr",
    "OrExpr",
    "Comparison",
    "parse_xpath",
    "to_string",
    "analysis",
]
