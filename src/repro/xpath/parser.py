"""Recursive-descent parser for xPath expressions.

The parser accepts both the unabbreviated syntax used throughout the paper
(``/descendant::price/preceding::name``) and the common abbreviated syntax
(``//price``, ``.``, ``..``, bare tag names for ``child::``).  Abbreviations
are expanded during parsing, so the AST only ever contains explicit axes.

Beyond the paper's fragment, the parser supports the attribute extension:
``@name`` / ``@*`` (abbreviations for ``attribute::name`` /
``attribute::*``), the explicit ``attribute::`` axis, and string literals as
value-comparison operands (``[@id = "42"]``).  Node tests on the attribute
axis are normalized to the attribute node-test kind, so ``@price`` and
``attribute::price`` produce identical ASTs.  The namespace axis stays
outside the model and is rejected with an error naming the offending token.
"""

from __future__ import annotations

from typing import List

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    Literal,
    LocationPath,
    NodeTest,
    NodeTestKind,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
)
from repro.xpath.axes import Axis
from repro.xpath.lexer import Token, TokenType, tokenize

_STEP_START_TOKENS = {
    TokenType.NAME,
    TokenType.STAR,
    TokenType.DOT,
    TokenType.DOTDOT,
    TokenType.AT,
}


def _descendant_or_self_node() -> Step:
    """The step ``descendant-or-self::node()`` that ``//`` abbreviates."""
    return Step(axis=Axis.DESCENDANT_OR_SELF, node_test=NodeTest.node())


class _Parser:
    """Single-use recursive-descent parser over a token list."""

    def __init__(self, expression: str):
        self.expression = expression
        self.tokens: List[Token] = tokenize(expression)
        self.index = 0

    # Token helpers ----------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self.index += 1
        return token

    def expect(self, token_type: TokenType) -> Token:
        if self.current.type is not token_type:
            raise self.error(f"expected {token_type.value!r}, found {self.current.value!r}")
        return self.advance()

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.current.position, self.expression)

    # Grammar ----------------------------------------------------------------
    def parse(self) -> PathExpr:
        path = self.parse_union()
        if self.current.type is not TokenType.END:
            raise self.error(f"unexpected trailing input {self.current.value!r}")
        return path

    def parse_union(self) -> PathExpr:
        members = [self.parse_path()]
        while self.current.type is TokenType.PIPE:
            self.advance()
            members.append(self.parse_path())
        if len(members) == 1:
            return members[0]
        return Union(members=tuple(members))

    def parse_path(self) -> PathExpr:
        if self.current.type is TokenType.BOTTOM:
            self.advance()
            return Bottom()
        if self.current.type is TokenType.SLASH:
            self.advance()
            if self.current.type in _STEP_START_TOKENS:
                steps = self.parse_step_sequence()
                return LocationPath(absolute=True, steps=tuple(steps))
            return LocationPath(absolute=True, steps=())
        if self.current.type is TokenType.DOUBLE_SLASH:
            self.advance()
            steps = [_descendant_or_self_node()]
            steps.extend(self.parse_step_sequence())
            return LocationPath(absolute=True, steps=tuple(steps))
        if self.current.type in _STEP_START_TOKENS:
            steps = self.parse_step_sequence()
            return LocationPath(absolute=False, steps=tuple(steps))
        raise self.error(f"expected a location path, found {self.current.value!r}")

    def parse_step_sequence(self) -> List[Step]:
        steps = [self.parse_step()]
        while self.current.type in (TokenType.SLASH, TokenType.DOUBLE_SLASH):
            separator = self.advance()
            if separator.type is TokenType.DOUBLE_SLASH:
                steps.append(_descendant_or_self_node())
            steps.append(self.parse_step())
        return steps

    def parse_step(self) -> Step:
        token = self.current
        if token.type is TokenType.AT:
            # ``@name`` / ``@*`` abbreviate ``attribute::name`` / ``@*``.
            self.advance()
            node_test = self._attribute_node_test(self.parse_node_test())
            return self._with_predicates(
                Step(axis=Axis.ATTRIBUTE, node_test=node_test))
        if token.type is TokenType.DOT:
            self.advance()
            return self._with_predicates(Step(axis=Axis.SELF, node_test=NodeTest.node()))
        if token.type is TokenType.DOTDOT:
            self.advance()
            return self._with_predicates(Step(axis=Axis.PARENT, node_test=NodeTest.node()))
        axis = Axis.CHILD
        if token.type is TokenType.NAME and self.peek().type is TokenType.AXIS_SEP:
            try:
                axis = Axis.from_name(token.value)
            except KeyError:
                # Genuinely unsupported constructs keep a rejection message
                # that names the offending token (the attribute axis is an
                # accepted extension and no longer lands here).
                raise self.error(
                    f"the axis {token.value!r} is outside the supported "
                    f"language (paper fragment plus the attribute "
                    f"extension)") from None
            self.advance()
            self.advance()  # '::'
        node_test = self.parse_node_test()
        if axis is Axis.ATTRIBUTE:
            node_test = self._attribute_node_test(node_test)
        return self._with_predicates(Step(axis=axis, node_test=node_test))

    def _attribute_node_test(self, node_test: NodeTest) -> NodeTest:
        """Normalize a node test on the attribute axis.

        A bare name selects the attribute with that name; ``*`` and
        ``node()`` select any attribute (the axis only holds attribute
        nodes); ``text()`` can never match and is rejected.
        """
        if node_test.kind is NodeTestKind.NAME:
            return NodeTest.attribute(node_test.name)
        if node_test.kind in (NodeTestKind.WILDCARD, NodeTestKind.NODE):
            return NodeTest.attribute(None)
        if node_test.kind is NodeTestKind.ATTRIBUTE:  # pragma: no cover
            return node_test
        raise self.error("text() cannot occur on the attribute axis")

    def parse_node_test(self) -> NodeTest:
        token = self.current
        if token.type is TokenType.STAR:
            self.advance()
            return NodeTest.any_element()
        if token.type is TokenType.NAME:
            name = token.value
            if self.peek().type is TokenType.LPAREN:
                if name not in ("node", "text"):
                    raise self.error(
                        f"unsupported node test or function {name!r} (only node() and text())"
                    )
                self.advance()  # name
                self.expect(TokenType.LPAREN)
                self.expect(TokenType.RPAREN)
                return NodeTest.node() if name == "node" else NodeTest.text()
            self.advance()
            return NodeTest.tag(name)
        raise self.error(f"expected a node test, found {token.value!r}")

    def _with_predicates(self, step: Step) -> Step:
        qualifiers = []
        while self.current.type is TokenType.LBRACKET:
            self.advance()
            qualifiers.append(self.parse_qualifier())
            self.expect(TokenType.RBRACKET)
        if qualifiers:
            return step.with_qualifiers(qualifiers)
        return step

    # Qualifiers --------------------------------------------------------------
    def parse_qualifier(self) -> Qualifier:
        return self.parse_or()

    def parse_or(self) -> Qualifier:
        left = self.parse_and()
        while self.current.type is TokenType.NAME and self.current.value == "or":
            self.advance()
            right = self.parse_and()
            left = OrExpr(left=left, right=right)
        return left

    def parse_and(self) -> Qualifier:
        left = self.parse_comparison()
        while self.current.type is TokenType.NAME and self.current.value == "and":
            self.advance()
            right = self.parse_comparison()
            left = AndExpr(left=left, right=right)
        return left

    def parse_comparison(self) -> Qualifier:
        if self.current.type is TokenType.LITERAL:
            # A literal can only be the operand of a value comparison.
            left: PathExpr = Literal(self.advance().value)
            if self.current.type is TokenType.NODE_EQUALS:
                raise self.error(
                    "'==' is node identity; string literals only compare "
                    "with '='")
            if self.current.type is not TokenType.EQUALS:
                raise self.error(
                    "a string literal must be compared with '=' "
                    "(bare literals are not qualifiers)")
            self.advance()
            return Comparison(left=left, op="=",
                              right=self._parse_operand("="))
        if self.current.type is TokenType.LPAREN:
            self.advance()
            inner = self.parse_qualifier()
            self.expect(TokenType.RPAREN)
            # "(p1 | p2) == p3": a parenthesized *path* may still be the left
            # operand of a comparison.
            if (self.current.type in (TokenType.EQUALS, TokenType.NODE_EQUALS)
                    and isinstance(inner, PathQualifier)):
                op = "==" if self.current.type is TokenType.NODE_EQUALS else "="
                self.advance()
                return Comparison(left=inner.path, op=op,
                                  right=self._parse_operand(op))
            return inner
        left = self.parse_union()
        if self.current.type in (TokenType.EQUALS, TokenType.NODE_EQUALS):
            op = "==" if self.current.type is TokenType.NODE_EQUALS else "="
            self.advance()
            return Comparison(left=left, op=op, right=self._parse_operand(op))
        return PathQualifier(path=left)

    def _parse_operand(self, op: str) -> PathExpr:
        """The right operand of a comparison: a union path or a literal."""
        if self.current.type is TokenType.LITERAL:
            if op == "==":
                raise self.error(
                    "'==' is node identity; string literals only compare "
                    "with '='")
            return Literal(self.advance().value)
        return self.parse_union()


def parse_xpath(expression: str) -> PathExpr:
    """Parse an xPath expression into its AST.

    Examples
    --------
    >>> from repro.xpath.serializer import to_string
    >>> to_string(parse_xpath("//price"))
    '/descendant-or-self::node()/child::price'
    >>> to_string(parse_xpath("/descendant::editor[parent::journal]"))
    '/descendant::editor[parent::journal]'
    """
    if not expression or not expression.strip():
        raise XPathSyntaxError("empty xPath expression", 0, expression)
    return _Parser(expression).parse()
