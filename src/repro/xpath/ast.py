"""Abstract syntax of the location path language xPath (Section 2.1).

The grammar of the paper::

    path   ::= path | path  |  / path  |  path / path  |  path [ qualif ]
             |  axis :: nodetest  |  ⊥
    qualif ::= qualif and qualif  |  qualif or qualif  |  ( qualif )
             |  path = path  |  path == path  |  path
    axis   ::= reverse_axis | forward_axis
    nodetest ::= tagname | * | text() | node()

The AST normalizes the concrete syntax in the standard way: a path is either
``⊥`` (:class:`Bottom`), a union of paths (:class:`Union`), or a
:class:`LocationPath` — a possibly absolute sequence of :class:`Step` objects
where each step carries its axis, node test and qualifiers.  Qualifiers are
boolean formulas (:class:`AndExpr`/:class:`OrExpr`) over path existence tests
(:class:`PathQualifier`) and joins (:class:`Comparison` with ``=`` for value
equality and ``==`` for node identity).

All nodes are immutable (frozen dataclasses over tuples) and hashable, so the
rewrite engine can share subtrees freely and tests can compare rewritten
paths structurally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional, Tuple, Union as TypingUnion

from repro.xpath.axes import Axis


class NodeTestKind(enum.Enum):
    """The four node tests of xPath, plus the attribute extension."""

    NAME = "name"        # a tag name
    WILDCARD = "*"       # any element
    TEXT = "text()"      # any text node
    NODE = "node()"      # any node
    #: Extension: an attribute node, optionally restricted to one name
    #: (``@price`` / ``attribute::price``) or any (``@*``).
    ATTRIBUTE = "attribute"


@dataclass(frozen=True)
class NodeTest:
    """A node test: tag name, ``*``, ``text()``, ``node()`` or ``@name``."""

    kind: NodeTestKind
    name: Optional[str] = None

    def __post_init__(self):
        if self.kind is NodeTestKind.NAME and not self.name:
            raise ValueError("NAME node tests require a tag name")
        if (self.kind not in (NodeTestKind.NAME, NodeTestKind.ATTRIBUTE)
                and self.name is not None):
            raise ValueError(f"{self.kind} node tests carry no name")

    # Convenience constructors ------------------------------------------------
    @staticmethod
    def tag(name: str) -> "NodeTest":
        """Node test matching elements with the given tag name."""
        return NodeTest(NodeTestKind.NAME, name)

    @staticmethod
    def any_element() -> "NodeTest":
        """The ``*`` node test (any element)."""
        return NodeTest(NodeTestKind.WILDCARD)

    @staticmethod
    def text() -> "NodeTest":
        """The ``text()`` node test."""
        return NodeTest(NodeTestKind.TEXT)

    @staticmethod
    def node() -> "NodeTest":
        """The ``node()`` node test (any node)."""
        return NodeTest(NodeTestKind.NODE)

    @staticmethod
    def attribute(name: Optional[str] = None) -> "NodeTest":
        """An attribute node test: ``@name``, or ``@*`` when ``name`` is None."""
        return NodeTest(NodeTestKind.ATTRIBUTE, name)

    @property
    def is_node(self) -> bool:
        """``True`` for the ``node()`` test."""
        return self.kind is NodeTestKind.NODE

    @property
    def is_attribute(self) -> bool:
        """``True`` for attribute node tests (named or ``@*``)."""
        return self.kind is NodeTestKind.ATTRIBUTE

    def __str__(self) -> str:
        if self.kind is NodeTestKind.NAME:
            return self.name or ""
        if self.kind is NodeTestKind.ATTRIBUTE:
            return self.name or "*"
        return self.kind.value


# ---------------------------------------------------------------------------
# Qualifiers
# ---------------------------------------------------------------------------

class Qualifier:
    """Marker base class for qualifier (predicate) expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class PathQualifier(Qualifier):
    """A path used as an existence test: true iff the path selects a node."""

    path: "PathExpr"


@dataclass(frozen=True)
class AndExpr(Qualifier):
    """Conjunction of two qualifiers."""

    left: Qualifier
    right: Qualifier


@dataclass(frozen=True)
class OrExpr(Qualifier):
    """Disjunction of two qualifiers."""

    left: Qualifier
    right: Qualifier


@dataclass(frozen=True)
class Comparison(Qualifier):
    """A join ``left θ right`` with θ ∈ {``=``, ``==``}.

    ``==`` is node-identity equality (the XPath 2.0 ``is``/general ``==`` of
    the paper); ``=`` is XPath 1.0 value equality on string values.
    """

    left: "PathExpr"
    op: str
    right: "PathExpr"

    def __post_init__(self):
        if self.op not in ("=", "=="):
            raise ValueError(f"unsupported comparison operator {self.op!r}")


# ---------------------------------------------------------------------------
# Paths and steps
# ---------------------------------------------------------------------------

class PathExpr:
    """Marker base class for path expressions (location paths, unions, ⊥)."""

    __slots__ = ()


@dataclass(frozen=True)
class Step:
    """A location step ``axis::nodetest[q1][q2]...``."""

    axis: Axis
    node_test: NodeTest
    qualifiers: Tuple[Qualifier, ...] = ()

    @property
    def is_reverse(self) -> bool:
        """Whether the step's axis is a reverse axis."""
        return self.axis.is_reverse

    @property
    def is_forward(self) -> bool:
        """Whether the step's axis is a forward axis."""
        return self.axis.is_forward

    def with_qualifiers(self, qualifiers: Iterable[Qualifier]) -> "Step":
        """Return a copy of the step with ``qualifiers`` replacing the current ones."""
        return replace(self, qualifiers=tuple(qualifiers))

    def add_qualifiers(self, *qualifiers: Qualifier) -> "Step":
        """Return a copy of the step with ``qualifiers`` appended."""
        return replace(self, qualifiers=self.qualifiers + tuple(qualifiers))

    def without_qualifiers(self) -> "Step":
        """Return a copy of the step with no qualifiers."""
        return replace(self, qualifiers=())


@dataclass(frozen=True)
class LocationPath(PathExpr):
    """A (possibly absolute) sequence of location steps.

    ``absolute=True`` with no steps denotes the path ``/`` which selects
    exactly the document root.
    """

    absolute: bool
    steps: Tuple[Step, ...] = ()

    def __post_init__(self):
        if not self.absolute and not self.steps:
            raise ValueError("a relative path needs at least one step")

    # Functional updates ------------------------------------------------------
    def with_steps(self, steps: Iterable[Step]) -> "LocationPath":
        """Return a copy with the given steps."""
        return LocationPath(absolute=self.absolute, steps=tuple(steps))

    def append(self, *steps: Step) -> "LocationPath":
        """Return a copy with ``steps`` appended at the end."""
        return LocationPath(absolute=self.absolute, steps=self.steps + tuple(steps))

    def prepend(self, *steps: Step) -> "LocationPath":
        """Return a copy with ``steps`` inserted at the front."""
        return LocationPath(absolute=self.absolute, steps=tuple(steps) + self.steps)

    def concat(self, other: "LocationPath") -> "LocationPath":
        """Return ``self/other`` (``other`` must be relative)."""
        if other.absolute:
            raise ValueError("cannot concatenate an absolute path on the right")
        return LocationPath(absolute=self.absolute, steps=self.steps + other.steps)

    def slice(self, start: int, stop: Optional[int] = None) -> "LocationPath":
        """Return the sub-path ``steps[start:stop]``.

        The result keeps the ``absolute`` flag only when the slice starts at
        step 0; otherwise it is a relative path.
        """
        steps = self.steps[start:stop]
        absolute = self.absolute and start == 0
        if not steps and not absolute:
            raise ValueError("slice would produce an empty relative path")
        return LocationPath(absolute=absolute, steps=steps)

    @property
    def is_root_only(self) -> bool:
        """``True`` for the path ``/`` (absolute, no steps)."""
        return self.absolute and not self.steps

    @property
    def last(self) -> Step:
        """The last step of the path."""
        return self.steps[-1]


@dataclass(frozen=True)
class Union(PathExpr):
    """A union ``p1 | p2 | ... | pk`` of path expressions."""

    members: Tuple[PathExpr, ...]

    def __post_init__(self):
        if len(self.members) < 2:
            raise ValueError("a union needs at least two members")


@dataclass(frozen=True)
class Bottom(PathExpr):
    """The canonical empty path ``⊥`` which never selects any node."""


@dataclass(frozen=True)
class Literal(PathExpr):
    """A string literal, usable only as a ``=`` comparison operand.

    Part of the attribute extension: qualifiers like ``[@id = "42"]``
    compare a node set's string values against a constant.  A literal is not
    a node-selecting path — the parser only accepts it as an operand of a
    value comparison, never on the spine, in a union, or beside ``==``
    (node-identity needs nodes on both sides).  It is context-independent,
    so the analysis helpers treat it like an absolute operand.
    """

    value: str


# ---------------------------------------------------------------------------
# Convenience constructors used pervasively by the rewrite rules and tests
# ---------------------------------------------------------------------------

def step(axis: Axis, node_test: TypingUnion[NodeTest, str],
         *qualifiers: Qualifier) -> Step:
    """Build a step; string node tests are interpreted like the parser does.

    ``"*"`` becomes the wildcard test, ``"node()"`` / ``"text()"`` the
    corresponding kind tests, ``"@name"`` / ``"@*"`` attribute tests, and
    anything else a tag-name test.  On the attribute axis a bare name or
    ``*`` is normalized to the attribute test, as the parser does.
    """
    if isinstance(node_test, str):
        if node_test.startswith("@"):
            name = node_test[1:]
            node_test = NodeTest.attribute(None if name in ("", "*") else name)
        elif axis is Axis.ATTRIBUTE:
            node_test = NodeTest.attribute(None if node_test in ("*", "node()")
                                           else node_test)
        elif node_test == "*":
            node_test = NodeTest.any_element()
        elif node_test == "node()":
            node_test = NodeTest.node()
        elif node_test == "text()":
            node_test = NodeTest.text()
        else:
            node_test = NodeTest.tag(node_test)
    return Step(axis=axis, node_test=node_test, qualifiers=tuple(qualifiers))


def relative(*steps: Step) -> LocationPath:
    """Build a relative location path from steps."""
    return LocationPath(absolute=False, steps=tuple(steps))


def absolute(*steps: Step) -> LocationPath:
    """Build an absolute location path from steps (``/`` when empty)."""
    return LocationPath(absolute=True, steps=tuple(steps))


def root() -> LocationPath:
    """The path ``/`` selecting only the document root."""
    return LocationPath(absolute=True, steps=())


def union_of(*members: PathExpr) -> PathExpr:
    """Build a union, flattening nested unions and dropping ⊥ members.

    Returns ⊥ if every member is ⊥ and the single member when only one
    remains, so callers can use this as a smart constructor.
    """
    flat = []
    for member in members:
        if isinstance(member, Bottom):
            continue
        if isinstance(member, Union):
            flat.extend(m for m in member.members if not isinstance(m, Bottom))
        else:
            flat.append(member)
    if not flat:
        return Bottom()
    if len(flat) == 1:
        return flat[0]
    return Union(members=tuple(flat))


def qualifier(path: PathExpr) -> PathQualifier:
    """Wrap a path as an existence qualifier."""
    return PathQualifier(path=path)


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------

def iter_union_members(path: PathExpr) -> Iterator[PathExpr]:
    """Yield the top-level members of a (possibly non-union) path expression."""
    if isinstance(path, Union):
        for member in path.members:
            yield from iter_union_members(member)
    else:
        yield path


def qualifier_paths(qual: Qualifier) -> Iterator[PathExpr]:
    """Yield every path expression mentioned by a qualifier (recursively
    through ``and``/``or`` but *not* into nested qualifiers of steps)."""
    if isinstance(qual, PathQualifier):
        yield qual.path
    elif isinstance(qual, (AndExpr, OrExpr)):
        yield from qualifier_paths(qual.left)
        yield from qualifier_paths(qual.right)
    elif isinstance(qual, Comparison):
        yield qual.left
        yield qual.right
    else:  # pragma: no cover - defensive
        raise TypeError(f"not a qualifier: {qual!r}")
