"""The eleven XPath axes of the paper plus the ``attribute`` extension.

The paper (Section 2.1) partitions axes into *reverse* axes, which select
nodes occurring before the context node in document order (or ancestors), and
*forward* axes.  It also relies on the notion of *symmetry* between axes
(parent/child, ancestor/descendant, preceding/following, ...), which is the
engine behind the general equivalences of Section 3.1.

This reproduction adds the ``attribute`` axis — an extension beyond the
paper's fragment, motivated by real SDI subscription workloads.  It is a
forward axis (attributes arrive complete on the StartElement event, so it
streams for free), but it has **no symmetric axis** in the Section 2.1 table:
the rewrite driver treats reverse steps adjacent to attribute steps with
dedicated attribute lemmas instead of axis symmetry.  The namespace axis
remains outside the model.
"""

from __future__ import annotations

import enum


class Axis(enum.Enum):
    """Navigation axes of xPath."""

    # Forward axes
    SELF = "self"
    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    FOLLOWING = "following"
    FOLLOWING_SIBLING = "following-sibling"
    #: Extension beyond the paper's fragment: selects the attribute nodes of
    #: an element context node.  Forward (streamable), no symmetric axis.
    ATTRIBUTE = "attribute"
    # Reverse axes
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    PRECEDING = "preceding"
    PRECEDING_SIBLING = "preceding-sibling"

    # ------------------------------------------------------------------
    @property
    def is_forward(self) -> bool:
        """Whether the axis only selects nodes at or after the context node."""
        return self in _FORWARD_AXES

    @property
    def is_reverse(self) -> bool:
        """Whether the axis selects nodes before the context node (or ancestors)."""
        return self in _REVERSE_AXES

    @property
    def symmetric(self) -> "Axis":
        """The symmetric axis in the sense of Section 2.1.

        parent ↔ child, ancestor ↔ descendant, ancestor-or-self ↔
        descendant-or-self, preceding ↔ following, preceding-sibling ↔
        following-sibling, self ↔ self.  The attribute axis has no symmetric
        axis ("owner" is not an XPath axis); the rewrite rules never request
        it because the driver handles attribute-adjacent reverse steps with
        dedicated lemmas.
        """
        try:
            return _SYMMETRY[self]
        except KeyError:
            raise ValueError(
                f"the {self.value} axis has no symmetric axis in the "
                f"Section 2.1 table") from None

    @property
    def xpath_name(self) -> str:
        """The axis name as written in XPath expressions."""
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "Axis":
        """Look an axis up by its XPath name.

        Raises :class:`KeyError` for names outside the paper's language
        (``attribute``, ``namespace``) — the parser converts this into an
        :class:`repro.errors.XPathSyntaxError` with position information.
        """
        return _BY_NAME[name]


_FORWARD_AXES = frozenset({
    Axis.SELF,
    Axis.CHILD,
    Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF,
    Axis.FOLLOWING,
    Axis.FOLLOWING_SIBLING,
    Axis.ATTRIBUTE,
})

_REVERSE_AXES = frozenset({
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.ANCESTOR_OR_SELF,
    Axis.PRECEDING,
    Axis.PRECEDING_SIBLING,
})

_SYMMETRY = {
    Axis.SELF: Axis.SELF,
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.DESCENDANT_OR_SELF,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
}

_BY_NAME = {axis.value: axis for axis in Axis}

#: The *paper's* axes in stable order, handy for tests that want to
#: enumerate "every reverse axis interacts with every forward axis".  The
#: attribute extension is deliberately excluded from these tuples: the
#: Section 3 rule tables (and their symmetry arguments) are stated over the
#: paper's eleven axes only.
FORWARD_AXES = tuple(sorted(_FORWARD_AXES - {Axis.ATTRIBUTE},
                            key=lambda a: a.value))
REVERSE_AXES = tuple(sorted(_REVERSE_AXES, key=lambda a: a.value))
