"""Tokenizer for xPath expressions.

The lexer recognizes the tokens of the paper's grammar plus the abbreviated
XPath syntax (``//``, ``.``, ``..``) which the parser expands into
unabbreviated steps, as the paper assumes ("every abbreviated XPath
expression can easily be translated into an unabbreviated XPath expression").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import XPathSyntaxError


class TokenType(enum.Enum):
    """Token categories produced by the lexer."""

    SLASH = "/"
    DOUBLE_SLASH = "//"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    PIPE = "|"
    AXIS_SEP = "::"
    EQUALS = "="
    NODE_EQUALS = "=="
    DOT = "."
    DOTDOT = ".."
    STAR = "*"
    AT = "@"
    NAME = "name"
    LITERAL = "literal"
    BOTTOM = "bottom"
    END = "end"


@dataclass(frozen=True)
class Token:
    """A single token with its position in the source expression."""

    type: TokenType
    value: str
    position: int


_SIMPLE_TOKENS = {
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "|": TokenType.PIPE,
    "*": TokenType.STAR,
    "@": TokenType.AT,
}


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_-."


def tokenize(expression: str) -> List[Token]:
    """Tokenize ``expression`` into a list ending with an END token.

    Quoted string literals (``"v"`` or ``'v'``, no escapes — XPath 1.0
    style) are produced as ``LITERAL`` tokens; the parser only accepts them
    as value-comparison operands.  This is part of the attribute extension
    (``[@id = "42"]``), beyond the paper's fragment.

    Raises
    ------
    XPathSyntaxError
        On characters outside the language and on unterminated literals.
    """
    tokens: List[Token] = []
    i = 0
    length = len(expression)
    while i < length:
        char = expression[i]
        if char.isspace():
            i += 1
            continue
        if char == "/":
            if expression.startswith("//", i):
                tokens.append(Token(TokenType.DOUBLE_SLASH, "//", i))
                i += 2
            else:
                tokens.append(Token(TokenType.SLASH, "/", i))
                i += 1
            continue
        if char == ":":
            if expression.startswith("::", i):
                tokens.append(Token(TokenType.AXIS_SEP, "::", i))
                i += 2
                continue
            raise XPathSyntaxError("single ':' is not valid", i, expression)
        if char == "=":
            if expression.startswith("==", i):
                tokens.append(Token(TokenType.NODE_EQUALS, "==", i))
                i += 2
            else:
                tokens.append(Token(TokenType.EQUALS, "=", i))
                i += 1
            continue
        if char == ".":
            if expression.startswith("..", i):
                tokens.append(Token(TokenType.DOTDOT, "..", i))
                i += 2
            else:
                tokens.append(Token(TokenType.DOT, ".", i))
                i += 1
            continue
        if char in _SIMPLE_TOKENS:
            tokens.append(Token(_SIMPLE_TOKENS[char], char, i))
            i += 1
            continue
        if char in "\"'":
            end = expression.find(char, i + 1)
            if end == -1:
                raise XPathSyntaxError("unterminated string literal", i,
                                       expression)
            tokens.append(Token(TokenType.LITERAL, expression[i + 1:end], i))
            i = end + 1
            continue
        if char == "⊥":  # ⊥
            tokens.append(Token(TokenType.BOTTOM, char, i))
            i += 1
            continue
        if char == "#" and expression.startswith("#bottom", i):
            tokens.append(Token(TokenType.BOTTOM, "#bottom", i))
            i += len("#bottom")
            continue
        if _is_name_start(char):
            start = i
            while i < length and _is_name_char(expression[i]):
                i += 1
            tokens.append(Token(TokenType.NAME, expression[start:i], start))
            continue
        raise XPathSyntaxError(f"unexpected character {char!r}", i, expression)
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def iter_tokens(expression: str) -> Iterator[Token]:
    """Iterator variant of :func:`tokenize` (mainly for tests)."""
    return iter(tokenize(expression))
