"""Reporting helpers shared by the benchmark modules.

The paper reports no absolute measurements, so what the benchmarks print are
small tables (rewrite sizes, join counts, memory units, time series) and the
derived *shape* indicators the theorems predict: a linear fit for RuleSet1's
output size (Theorem 4.1) and successive growth ratios for RuleSet2's
worst case (Theorem 4.2).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple


@dataclass
class Table:
    """A tiny plain-text table used by benchmark reports and EXPERIMENTS.md."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(values)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned plain-text table."""
    rows = [[str(value) for value in row] for row in rows]
    headers = [str(column) for column in columns]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


#: File name of the multi-subscription SDI trajectory artifact; both the
#: SDI scaling benchmark and the dispatch document-shapes benchmark merge
#: their sections into this one file (and CI uploads exactly this name).
MULTI_QUERY_SDI_ARTIFACT = "BENCH_multi_query_sdi.json"


def artifact_path(filename: str) -> str:
    """Absolute path of a ``BENCH_*.json`` artifact at the repository root."""
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))  # .../src
    return os.path.join(os.path.dirname(package_root), filename)


def update_bench_artifact(path: str, section: str, payload) -> dict:
    """Merge ``payload`` under ``section`` into the JSON artifact at ``path``.

    Benchmark modules call this to persist machine-readable results
    (``BENCH_*.json``) so the performance trajectory can be compared across
    revisions.  The artifact is read-merge-written so independent benchmark
    runs (different pytest parametrizations, different modules) each
    contribute their own section without clobbering the others.
    """
    document: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            document = {}
    document[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares fit ``y = a*x + b``; returns ``(a, b, r_squared)``.

    Used to check Theorem 4.1: RuleSet1's output length against input length
    should fit a line almost perfectly (r² ≈ 1).
    """
    n = len(xs)
    if n < 2 or len(ys) != n:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r_squared


def growth_ratios(values: Sequence[float]) -> List[float]:
    """Successive ratios ``values[i+1] / values[i]``.

    Used to check Theorem 4.2: for the ``following``/reverse interaction
    chains the ratios stay above 1 and do not die down, the signature of
    super-linear (in the worst case exponential) growth.
    """
    ratios: List[float] = []
    for previous, current in zip(values, values[1:]):
        if previous == 0:
            ratios.append(float("inf"))
        else:
            ratios.append(current / previous)
    return ratios
