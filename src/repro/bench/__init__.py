"""Benchmark harness helpers (System S13)."""

from repro.bench.reporting import Table, format_table, linear_fit, growth_ratios

__all__ = ["Table", "format_table", "linear_fit", "growth_ratios"]
