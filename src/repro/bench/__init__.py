"""Benchmark harness helpers (System S13).

The CI regression gate lives in :mod:`repro.bench.regression`; it is not
re-exported here so that ``python -m repro.bench.regression`` runs without a
double-import warning.
"""

from repro.bench.reporting import Table, format_table, growth_ratios, linear_fit

__all__ = ["Table", "format_table", "linear_fit", "growth_ratios"]
