"""Benchmark regression gate for the CI pipeline.

CI runs the multi-subscription SDI benchmark smoke on every build, which
rewrites ``BENCH_multi_query_sdi.json``.  This module compares the fresh
artifact against the baseline committed at the previous revision and fails
(exit code 1) when throughput collapsed on any gated metric: the
expectation engine's indexed events/sec (``multi_query_sdi``) and the lazy
DFA's warm events/sec (``automaton_sdi``), both at the N=1000 scale,
dropping by more than the tolerance (25% by default).  The substream
extraction throughput (``substream_extraction``) is tracked the same way
but as an *advisory* gate: reported on every run, never failing the build —
see :data:`ADVISORY_GATES`.

The tolerance absorbs runner noise within one CI runner class; it does *not*
make numbers comparable across machine generations — when the committed
baseline was produced on very different hardware, re-baseline by committing
a fresh artifact in the same change that explains why.

Usage (what the CI job runs, after copying the committed artifact aside
*before* the smoke overwrites it)::

    python -m repro.bench.regression /tmp/bench-baseline.json \\
        BENCH_multi_query_sdi.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Relative drop in events/sec beyond which the gate fails.
DEFAULT_TOLERANCE = 0.25

#: The default artifact section, metric and scale (kept for direct callers;
#: the CI entry point checks every gate in :data:`GATES`).  N=1000 is the
#: scale where dispatch regressions actually show; the small scales are
#: dominated by fixed setup cost and timer noise.
SECTION = "multi_query_sdi"
METRIC = "events_per_sec_indexed"
SUBSCRIPTIONS = 1000

#: Every ``(section, metric)`` pair the CI gate pins, all at
#: :data:`SUBSCRIPTIONS`: the expectation engine's indexed throughput and
#: the lazy DFA's warm throughput (the default backend's steady state).
GATES: Tuple[Tuple[str, str], ...] = (
    (SECTION, METRIC),
    ("automaton_sdi", "events_per_sec_dfa"),
)

#: Advisory gates: compared and reported exactly like :data:`GATES`, but
#: never fail the build, and a missing section (older baselines predate it)
#: is skipped rather than an error.  ``substream_extraction`` is advisory
#: while its trajectory accumulates — serialization-bound throughput has a
#: different noise profile than pure matching; ``subscription_churn``
#: (warm throughput after live add/remove churn) likewise while its
#: trajectory accumulates.  Promote either into :data:`GATES` once a few
#: runner generations of data exist.
ADVISORY_GATES: Tuple[Tuple[str, str], ...] = (
    ("substream_extraction", "events_per_sec_substream"),
    ("subscription_churn", "events_per_sec_churned"),
)


class RegressionGateError(ValueError):
    """Raised when an artifact is missing a gated section or scale."""


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of one baseline/fresh comparison."""

    baseline: float
    fresh: float
    tolerance: float
    subscriptions: int = SUBSCRIPTIONS
    section: str = SECTION
    metric: str = METRIC

    @property
    def ratio(self) -> float:
        """fresh / baseline (1.0 = unchanged, < 1.0 = slower)."""
        return self.fresh / self.baseline if self.baseline else float("inf")

    @property
    def ok(self) -> bool:
        """Whether the fresh run is within tolerance of the baseline."""
        return self.ratio >= 1.0 - self.tolerance

    def describe(self) -> str:
        verdict = "OK" if self.ok else "REGRESSION"
        return (
            f"{verdict}: {self.section}/{self.metric} at "
            f"N={self.subscriptions} "
            f"baseline={self.baseline:.0f} fresh={self.fresh:.0f} "
            f"({self.ratio:.2%} of baseline, tolerance "
            f"-{self.tolerance:.0%})"
        )


def extract_events_per_sec(artifact: dict,
                           subscriptions: int = SUBSCRIPTIONS,
                           section: str = SECTION,
                           metric: str = METRIC) -> float:
    """One gated metric from a parsed ``BENCH_multi_query_sdi.json``."""
    try:
        scales = artifact[section]["scales"]
    except (KeyError, TypeError):
        raise RegressionGateError(
            f"artifact has no '{section}' section with 'scales'") from None
    for row in scales:
        if row.get("subscriptions") == subscriptions:
            try:
                return float(row[metric])
            except (KeyError, TypeError, ValueError):
                raise RegressionGateError(
                    f"scale N={subscriptions} carries no numeric "
                    f"'{metric}' under '{section}'") from None
    raise RegressionGateError(
        f"artifact has no N={subscriptions} row under '{section}'")


def check_regression(baseline: dict, fresh: dict,
                     tolerance: float = DEFAULT_TOLERANCE,
                     subscriptions: int = SUBSCRIPTIONS,
                     section: str = SECTION,
                     metric: str = METRIC) -> RegressionReport:
    """Compare two parsed artifacts on one gate; never raises on a mere
    slowdown.

    Raises :class:`RegressionGateError` only when either artifact lacks the
    gated section — a broken pipeline should fail loudly, not vacuously
    pass.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must lie in [0, 1)")
    return RegressionReport(
        baseline=extract_events_per_sec(baseline, subscriptions, section,
                                        metric),
        fresh=extract_events_per_sec(fresh, subscriptions, section, metric),
        tolerance=tolerance,
        subscriptions=subscriptions,
        section=section,
        metric=metric,
    )


def check_all_gates(baseline: dict, fresh: dict,
                    tolerance: float = DEFAULT_TOLERANCE,
                    subscriptions: int = SUBSCRIPTIONS,
                    gates: Sequence[Tuple[str, str]] = GATES,
                    ) -> List[RegressionReport]:
    """One :class:`RegressionReport` per gate, in :data:`GATES` order."""
    return [check_regression(baseline, fresh, tolerance=tolerance,
                             subscriptions=subscriptions, section=section,
                             metric=metric)
            for section, metric in gates]


def check_advisory_gates(baseline: dict, fresh: dict,
                         tolerance: float = DEFAULT_TOLERANCE,
                         subscriptions: int = SUBSCRIPTIONS,
                         gates: Sequence[Tuple[str, str]] = ADVISORY_GATES,
                         ) -> List[RegressionReport]:
    """Reports for the advisory gates; sections absent from either artifact
    are skipped (a baseline committed before the section existed must not
    break the pipeline)."""
    reports: List[RegressionReport] = []
    for section, metric in gates:
        try:
            reports.append(check_regression(
                baseline, fresh, tolerance=tolerance,
                subscriptions=subscriptions, section=section, metric=metric))
        except RegressionGateError:
            continue
    return reports


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark throughput regressed beyond the "
                    "tolerance on any gated metric.")
    parser.add_argument("baseline", help="committed BENCH_multi_query_sdi.json")
    parser.add_argument("fresh", help="freshly generated artifact")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="maximum allowed relative drop (default 0.25)")
    parser.add_argument("--subscriptions", type=int, default=SUBSCRIPTIONS,
                        help="gated scale (default 1000)")
    args = parser.parse_args(argv)
    try:
        baseline, fresh = _load(args.baseline), _load(args.fresh)
        reports = check_all_gates(baseline, fresh,
                                  tolerance=args.tolerance,
                                  subscriptions=args.subscriptions)
    except (OSError, ValueError) as exc:
        print(f"benchmark regression gate: {exc}", file=sys.stderr)
        return 2
    for report in reports:
        print(report.describe())
    # Advisory gates are reported for the trajectory record but never
    # affect the exit code (see ADVISORY_GATES).
    for report in check_advisory_gates(baseline, fresh,
                                       tolerance=args.tolerance,
                                       subscriptions=args.subscriptions):
        print(f"{report.describe()} (advisory)")
    return 0 if all(report.ok for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
