"""Benchmark regression gate for the CI pipeline.

CI runs the multi-subscription SDI benchmark smoke on every build, which
rewrites ``BENCH_multi_query_sdi.json``.  This module compares the fresh
artifact against the baseline committed at the previous revision and fails
(exit code 1) when throughput collapsed: events/sec at the N=1000 scale
dropping by more than the tolerance (25% by default).

The tolerance absorbs runner noise within one CI runner class; it does *not*
make numbers comparable across machine generations — when the committed
baseline was produced on very different hardware, re-baseline by committing
a fresh artifact in the same change that explains why.

Usage (what the CI job runs, after copying the committed artifact aside
*before* the smoke overwrites it)::

    python -m repro.bench.regression /tmp/bench-baseline.json \\
        BENCH_multi_query_sdi.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Optional, Sequence

#: Relative drop in events/sec beyond which the gate fails.
DEFAULT_TOLERANCE = 0.25

#: The artifact section and scale the gate pins.  N=1000 is the scale where
#: dispatch-index regressions actually show; the small scales are dominated
#: by fixed setup cost and timer noise.
SECTION = "multi_query_sdi"
METRIC = "events_per_sec_indexed"
SUBSCRIPTIONS = 1000


class RegressionGateError(ValueError):
    """Raised when an artifact is missing the gated section or scale."""


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of one baseline/fresh comparison."""

    baseline: float
    fresh: float
    tolerance: float
    subscriptions: int = SUBSCRIPTIONS

    @property
    def ratio(self) -> float:
        """fresh / baseline (1.0 = unchanged, < 1.0 = slower)."""
        return self.fresh / self.baseline if self.baseline else float("inf")

    @property
    def ok(self) -> bool:
        """Whether the fresh run is within tolerance of the baseline."""
        return self.ratio >= 1.0 - self.tolerance

    def describe(self) -> str:
        verdict = "OK" if self.ok else "REGRESSION"
        return (
            f"{verdict}: events/sec at N={self.subscriptions} "
            f"baseline={self.baseline:.0f} fresh={self.fresh:.0f} "
            f"({self.ratio:.2%} of baseline, tolerance "
            f"-{self.tolerance:.0%})"
        )


def extract_events_per_sec(artifact: dict,
                           subscriptions: int = SUBSCRIPTIONS) -> float:
    """The gated metric from a parsed ``BENCH_multi_query_sdi.json``."""
    try:
        scales = artifact[SECTION]["scales"]
    except (KeyError, TypeError):
        raise RegressionGateError(
            f"artifact has no '{SECTION}' section with 'scales'") from None
    for row in scales:
        if row.get("subscriptions") == subscriptions:
            try:
                return float(row[METRIC])
            except (KeyError, TypeError, ValueError):
                raise RegressionGateError(
                    f"scale N={subscriptions} carries no numeric "
                    f"'{METRIC}'") from None
    raise RegressionGateError(
        f"artifact has no N={subscriptions} row under '{SECTION}'")


def check_regression(baseline: dict, fresh: dict,
                     tolerance: float = DEFAULT_TOLERANCE,
                     subscriptions: int = SUBSCRIPTIONS) -> RegressionReport:
    """Compare two parsed artifacts; never raises on a mere slowdown.

    Raises :class:`RegressionGateError` only when either artifact lacks the
    gated section — a broken pipeline should fail loudly, not vacuously
    pass.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must lie in [0, 1)")
    return RegressionReport(
        baseline=extract_events_per_sec(baseline, subscriptions),
        fresh=extract_events_per_sec(fresh, subscriptions),
        tolerance=tolerance,
        subscriptions=subscriptions,
    )


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark throughput regressed beyond the "
                    "tolerance.")
    parser.add_argument("baseline", help="committed BENCH_multi_query_sdi.json")
    parser.add_argument("fresh", help="freshly generated artifact")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="maximum allowed relative drop (default 0.25)")
    parser.add_argument("--subscriptions", type=int, default=SUBSCRIPTIONS,
                        help="gated scale (default 1000)")
    args = parser.parse_args(argv)
    try:
        report = check_regression(_load(args.baseline), _load(args.fresh),
                                  tolerance=args.tolerance,
                                  subscriptions=args.subscriptions)
    except (OSError, ValueError) as exc:
        print(f"benchmark regression gate: {exc}", file=sys.stderr)
        return 2
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
