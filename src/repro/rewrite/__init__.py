"""Reverse-axis-removal rewriting (Systems S6–S10 in DESIGN.md).

This package contains the paper's contribution: the location path
equivalences of Section 3 used as rewriting rules, and the ``rare`` algorithm
of Section 4 that removes every reverse axis from an absolute location path.

* :mod:`repro.rewrite.ruleset1` — the general equivalences (1), (2), (2a),
* :mod:`repro.rewrite.ruleset2` — the specific equivalences (3)–(42),
* :mod:`repro.rewrite.rewriter` — the driver applying one rule to the first
  reverse step (Definition 4.1 plus the supporting lemmas),
* :mod:`repro.rewrite.rare` — the stack-based algorithm of Figure 2 with
  tracing,
* :mod:`repro.rewrite.lemmas` — the equivalences of Lemma 3.1/3.2 as data,
  for testing and documentation,
* :mod:`repro.rewrite.errata` — the literal paper form of the four corrected
  rules together with counterexample finders,
* :mod:`repro.rewrite.variables` — the variable-based extension for relative
  paths and RR joins,
* :mod:`repro.rewrite.simplify` — optional cosmetic clean-ups.
"""

from repro.rewrite.rare import (
    DEFAULT_MAX_APPLICATIONS,
    RareResult,
    RewriteTrace,
    TraceEntry,
    rare,
    remove_reverse_axes,
    resolve_ruleset,
)
from repro.rewrite.rules import RuleApplication, RuleSetBase
from repro.rewrite.ruleset1 import RuleSet1
from repro.rewrite.ruleset2 import RuleSet2
from repro.rewrite.rewriter import apply_once
from repro.rewrite.simplify import simplify
from repro.rewrite.unionflatten import flatten_unions, union_terms

__all__ = [
    "rare",
    "remove_reverse_axes",
    "RareResult",
    "RewriteTrace",
    "TraceEntry",
    "RuleApplication",
    "RuleSetBase",
    "RuleSet1",
    "RuleSet2",
    "apply_once",
    "simplify",
    "flatten_unions",
    "union_terms",
    "resolve_ruleset",
    "DEFAULT_MAX_APPLICATIONS",
]
