"""Shared infrastructure of the rewrite engine.

A *rule application* (Definition 4.1) replaces a portion of a location path
according to one of the equivalences of Section 3; the driver in
:mod:`repro.rewrite.rewriter` locates the first reverse step, the rule-set
objects below produce the replacement, and :class:`RuleApplication` records
what happened for the trace (Figures 3 and 4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.xpath.ast import LocationPath, PathExpr


@dataclass(frozen=True)
class RuleApplication:
    """The outcome of applying one rewriting rule or lemma.

    Attributes
    ----------
    result:
        The path expression that replaces the rewritten one.  May be a
        :class:`~repro.xpath.ast.Union` (several rules produce unions), a
        plain location path or ``⊥``.
    rule:
        A short label identifying the rule, matching the numbering of the
        paper — e.g. ``"Rule (2a)"``, ``"Rule (8)"``, ``"Lemma 3.2"``,
        ``"Lemma 3.1.5"``.
    note:
        Optional free-text detail (which axis interaction was resolved, which
        erratum correction applies, ...), surfaced in traces.
    """

    result: PathExpr
    rule: str
    note: str = ""


class RuleSetBase(abc.ABC):
    """Interface of a rewriting rule set usable by ``rare``.

    Two implementations exist, mirroring Section 4 of the paper:
    :class:`repro.rewrite.ruleset1.RuleSet1` (general, join-introducing) and
    :class:`repro.rewrite.ruleset2.RuleSet2` (specific, join-free).

    The driver guarantees the following preconditions when it calls the two
    hooks:

    * ``spine_rule(path, index)`` — ``path.steps[index]`` is the first
      reverse step of the whole expression and every earlier spine step is
      forward.  For absolute paths ``index >= 1`` (reverse first steps are
      eliminated by Lemma 3.2 before rule sets are consulted); the driver has
      also already eliminated the degenerate "all preceding steps are
      ``self``" absolute prefixes.
    * ``qualifier_head_rule(path, step_index, qual_index)`` — the carrier
      step ``path.steps[step_index]`` is forward, and its qualifier at
      ``qual_index`` is a :class:`~repro.xpath.ast.PathQualifier` whose path
      is relative and starts with a reverse step.
    """

    #: Human-readable rule-set name used in traces and benchmark reports.
    name: str = "ruleset"

    #: Whether the driver should decompose ``*-or-self`` axes (Lemma
    #: 3.1.6/3.1.7) before consulting the rule set.  RuleSet2's specific
    #: rules only cover the five plain reverse axes and the five plain
    #: forward predecessors; RuleSet1's general rules handle every axis via
    #: symmetry, so no decomposition is required there.
    requires_or_self_decomposition: bool = False

    #: Whether the driver should split boolean qualifiers (``and``/``or``)
    #: and self-headed qualifier paths so that the reverse step ends up
    #: heading a *direct* qualifier of a forward carrier step.  Needed by
    #: RuleSet2, whose qualifier rules mention the carrier; RuleSet1 rewrites
    #: path qualifiers locally and can descend into boolean structure.
    requires_carrier_exposure: bool = False

    #: Whether a reverse step at spine position >= 1 of a *relative*
    #: qualifier path should first be pushed into a nested qualifier with
    #: Lemma 3.1.5 (RuleSet1) instead of being handled by a relative spine
    #: rule (RuleSet2).
    flatten_relative_spine: bool = False

    @abc.abstractmethod
    def spine_rule(self, path: LocationPath, index: int) -> RuleApplication:
        """Rewrite the reverse step at ``path.steps[index]``."""

    @abc.abstractmethod
    def qualifier_head_rule(self, path: LocationPath, step_index: int,
                            qual_index: int) -> RuleApplication:
        """Rewrite the reverse step heading the given qualifier."""

    def local_qualifier_rule(self, qualifier_path: LocationPath):
        """Rewrite a reverse-headed qualifier path *locally* (no carrier).

        Only rule sets with ``requires_carrier_exposure = False`` (RuleSet1)
        implement this; it returns a ``(qualifier, rule_label, note)`` triple
        that replaces the existence qualifier ``[qualifier_path]`` wherever it
        occurs.
        """
        raise NotImplementedError(
            f"{self.name} rewrites qualifiers through their carrier step")


def rule_label(number) -> str:
    """Format a rule label the way the paper numbers its equivalences."""
    return f"Rule ({number})"
