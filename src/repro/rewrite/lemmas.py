"""The equivalences of Lemma 3.1 and Lemma 3.2 as testable data.

The rewriting driver applies these lemmas *on demand* (see
:mod:`repro.rewrite.rewriter`); this module exposes each lemma as an explicit
pair of equivalent expressions so the property-based test suite can validate
every one of them empirically on randomized documents, and so that the
documentation can point to a single place listing them.

Lemma 3.2's second bullet (``/child::m/a::n`` collapses for ``a`` in
{ancestor, preceding}) additionally assumes that the document root has a
single element child — true for well-formed XML documents but not for every
tree the permissive test model can build — so those equivalences are kept
here for completeness and tested on single-rooted documents, while the
algorithm itself relies only on the generally valid cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.xpath.ast import Bottom, PathExpr
from repro.xpath.parser import parse_xpath


@dataclass(frozen=True)
class Equivalence:
    """A named pair of equivalent path expressions."""

    name: str
    left: PathExpr
    right: PathExpr
    requires_single_document_element: bool = False


def _p(expression: str) -> PathExpr:
    return parse_xpath(expression)


def lemma_3_1_equivalences() -> List[Equivalence]:
    """Concrete instances of Lemma 3.1 (1)–(8) used by the test suite.

    The lemma statements are schematic (they hold for all paths p, p1, p2 and
    qualifiers q); the instances below choose small representative paths over
    the test tag alphabet {a, b, c, d} so that random documents exercise both
    the "selected" and "not selected" outcomes.
    """
    instances: List[Equivalence] = []

    # (1) Right step adjunction: if p1 ≡ p2 then p1/p ≡ p2/p.
    instances.append(Equivalence(
        "Lemma 3.1.1 (right step adjunction)",
        _p("/descendant-or-self::a/child::b"),
        _p("/descendant::a/child::b | /self::a/child::b"),
    ))
    # (2) Left step adjunction: if p1 ≡ p2 (relative) then p/p1 ≡ p/p2.
    instances.append(Equivalence(
        "Lemma 3.1.2 (left step adjunction)",
        _p("/child::a/descendant-or-self::b"),
        _p("/child::a/descendant::b | /child::a/self::b"),
    ))
    # (3) Qualifier adjunction.
    instances.append(Equivalence(
        "Lemma 3.1.3 (qualifier adjunction)",
        _p("/descendant::a[descendant-or-self::b][child::c]"),
        _p("/descendant::a[descendant::b or self::b][child::c]"),
    ))
    # (4) Relative/absolute conversion.
    instances.append(Equivalence(
        "Lemma 3.1.4 (relative/absolute conversion)",
        _p("/descendant-or-self::a"),
        _p("/descendant::a | /self::a"),
    ))
    # (5) Qualifier flattening: p[p1/p2] ≡ p[p1[p2]].
    instances.append(Equivalence(
        "Lemma 3.1.5 (qualifier flattening)",
        _p("/descendant::a[child::b/child::c]"),
        _p("/descendant::a[child::b[child::c]]"),
    ))
    # (6) ancestor-or-self decomposition.
    instances.append(Equivalence(
        "Lemma 3.1.6 (ancestor-or-self decomposition)",
        _p("/descendant::a/ancestor-or-self::b"),
        _p("/descendant::a/ancestor::b | /descendant::a/self::b"),
    ))
    # (7) descendant-or-self decomposition.
    instances.append(Equivalence(
        "Lemma 3.1.7 (descendant-or-self decomposition)",
        _p("/child::a/descendant-or-self::b"),
        _p("/child::a/descendant::b | /child::a/self::b"),
    ))
    # (8) Qualifiers with joins: p[p1 θ /p2] ≡ p[p1[self::node() θ /p2]].
    instances.append(Equivalence(
        "Lemma 3.1.8 (qualifiers with joins, ==)",
        _p("/descendant::a[child::b == /descendant::c/child::b]"),
        _p("/descendant::a[child::b[self::node() == /descendant::c/child::b]]"),
    ))
    instances.append(Equivalence(
        "Lemma 3.1.8 (qualifiers with joins, =)",
        _p("/descendant::a[child::b = /descendant::c]"),
        _p("/descendant::a[child::b[self::node() = /descendant::c]]"),
    ))
    return instances


def lemma_3_2_equivalences() -> List[Equivalence]:
    """Concrete instances of Lemma 3.2 (root simplifications)."""
    instances: List[Equivalence] = []
    for axis in ("parent", "ancestor", "preceding", "preceding-sibling",
                 "following", "following-sibling"):
        for test in ("a", "*", "node()"):
            instances.append(Equivalence(
                f"Lemma 3.2 (/{axis}::{test} ≡ ⊥)",
                _p(f"/{axis}::{test}"),
                Bottom(),
            ))
    instances.append(Equivalence(
        "Lemma 3.2 (/self::node() ≡ /)",
        _p("/self::node()"),
        _p("/"),
    ))
    instances.append(Equivalence(
        "Lemma 3.2 (/self::a ≡ ⊥)",
        _p("/self::a"),
        Bottom(),
    ))
    # Second bullet: /child::m/a::n forms; they additionally assume a single
    # document element (standard XML), see the module docstring.
    instances.append(Equivalence(
        "Lemma 3.2 (/child::a/ancestor::node())",
        _p("/child::a/ancestor::node()"),
        _p("/self::node()[child::a]"),
    ))
    instances.append(Equivalence(
        "Lemma 3.2 (/child::a/ancestor::b ≡ ⊥)",
        _p("/child::a/ancestor::b"),
        Bottom(),
    ))
    instances.append(Equivalence(
        "Lemma 3.2 (/child::a/preceding::node() ≡ ⊥)",
        _p("/child::a/preceding::node()"),
        Bottom(),
        requires_single_document_element=True,
    ))
    instances.append(Equivalence(
        "Lemma 3.2 (/child::a[ancestor::node()])",
        _p("/child::a[ancestor::node()]"),
        _p("/child::a"),
    ))
    instances.append(Equivalence(
        "Lemma 3.2 (/child::a[preceding::b] ≡ ⊥)",
        _p("/child::a[preceding::b]"),
        Bottom(),
        requires_single_document_element=True,
    ))
    return instances


def driver_lemma_equivalences() -> List[Equivalence]:
    """Congruences applied by the driver that the short paper leaves implicit.

    These are the "complex qualifier" lemmas referenced in Section 3 but only
    spelled out in the full version: splitting ``and``/``or`` qualifiers,
    turning union qualifiers into disjunctions, hoisting self-headed
    qualifier paths, and distributing joins over union operands.
    """
    instances: List[Equivalence] = []
    instances.append(Equivalence(
        "and-split: p[q1 and q2] ≡ p[q1][q2]",
        _p("/descendant::a[child::b and child::c]"),
        _p("/descendant::a[child::b][child::c]"),
    ))
    instances.append(Equivalence(
        "or-split: p/F::n[q1 or q2] ≡ p/F::n[q1] | p/F::n[q2]",
        _p("/descendant::a/child::b[child::c or child::d]"),
        _p("/descendant::a/child::b[child::c] | /descendant::a/child::b[child::d]"),
    ))
    instances.append(Equivalence(
        "union qualifier: p[u1 | u2] ≡ p[u1 or u2]",
        _p("/descendant::a[child::b | descendant::c]"),
        _p("/descendant::a[child::b or descendant::c]"),
    ))
    instances.append(Equivalence(
        "self-headed qualifier hoisting: p[self::b[q]/r] ≡ p[self::b][q][r]",
        _p("/descendant::a[self::a[child::b]/descendant::c]"),
        _p("/descendant::a[self::a][child::b][descendant::c]"),
    ))
    instances.append(Equivalence(
        "join distributed over a union operand",
        _p("/descendant::a[(child::b | child::c) == /descendant::b]"),
        _p("/descendant::a[child::b == /descendant::b or child::c == /descendant::b]"),
    ))
    instances.append(Equivalence(
        "self push-left: p/self::n[q] ≡ p[q]/self::n",
        _p("/descendant::a/self::a[child::b]"),
        _p("/descendant::a[child::b]/self::a"),
    ))
    return instances


def all_equivalences() -> List[Equivalence]:
    """Every lemma instance exposed by this module."""
    return (lemma_3_1_equivalences()
            + lemma_3_2_equivalences()
            + driver_lemma_equivalences())
