"""RuleSet2 — the specific axis-interaction equivalences (Rules (3)–(42)).

For every reverse axis (``parent``, ``ancestor``, ``preceding-sibling``,
``preceding``; ``ancestor-or-self`` is first decomposed with Lemma 3.1.6) and
every forward axis that can precede it (``child``, ``descendant``, ``self``,
``following-sibling``, ``following``; ``descendant-or-self`` is decomposed
with Lemma 3.1.7), Propositions 3.2–3.5 of the paper give an equivalence
that either removes the reverse step outright, pushes it further to the left
of the path, or — for interactions with ``following`` — replaces it by a
union of such paths.  Unlike RuleSet1, the rewritten paths contain **no
joins**, which is what makes them attractive for streaming evaluation; the
price is a worst-case exponential number of union terms (Theorem 4.2).

The implementation mirrors the paper rule by rule.  Four rules are corrected
relative to the printed text (errata demonstrated by counterexample in
``tests/test_errata.py`` and documented in DESIGN.md):

* Rule (30): the printed right-hand side selects sibling nodes instead of the
  context node; the structurally consistent push-left form
  ``p[preceding-sibling::m]/self::n`` is used.
* Rule (32): the third union term is garbled in the paper; the term
  ``p/ancestor-or-self::m/following-sibling::n`` (mirroring Rule (27)) is used.
* Rules (33)/(38): the union term starting with ``child::*`` misses matches
  whose branch point lies below the children of the context node;
  ``descendant::*`` is used instead.
* Rules (37)/(42): the printed union misses ``preceding`` nodes that are
  ancestors of the context node; the terms ``p/ancestor::m[following::n]``
  and ``p/ancestor::m/following::n`` are added.

Qualifiers of the matched steps are carried along: the qualifiers of the
forward step stay attached to the ``n`` node test and the qualifiers of the
reverse step stay attached to the ``m`` node test on every right-hand side.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import RewriteError
from repro.rewrite.builders import (
    assemble_union,
    node_wildcard,
    rel,
    self_node,
    with_appended_qualifier,
)
from repro.rewrite.rules import RuleApplication, RuleSetBase
from repro.xpath.ast import (
    Bottom,
    LocationPath,
    NodeTest,
    PathQualifier,
    Qualifier,
    Step,
)
from repro.xpath.axes import Axis

# Shorthands keeping the rule bodies close to the paper's notation.
_CHILD = Axis.CHILD
_DESC = Axis.DESCENDANT
_DOS = Axis.DESCENDANT_OR_SELF
_SELF = Axis.SELF
_FOLLOWING = Axis.FOLLOWING
_FS = Axis.FOLLOWING_SIBLING
_PARENT = Axis.PARENT
_ANC = Axis.ANCESTOR
_AOS = Axis.ANCESTOR_OR_SELF
_PREC = Axis.PRECEDING
_PS = Axis.PRECEDING_SIBLING

Variant = Tuple[Step, ...]


def _step(axis: Axis, test: NodeTest, *qualifiers: Qualifier) -> Step:
    return Step(axis=axis, node_test=test, qualifiers=tuple(qualifiers))


def _exists(*steps: Step) -> PathQualifier:
    return PathQualifier(path=rel(*steps))


def _push(prefix: Sequence[Step], qualifier: Qualifier) -> Tuple[Step, ...]:
    """``prefix`` with ``qualifier`` appended to its last step."""
    return with_appended_qualifier(tuple(prefix), qualifier)


class RuleSet2(RuleSetBase):
    """The specific, join-free rule set (Rules (3)–(42))."""

    name = "RuleSet2"
    requires_or_self_decomposition = True
    requires_carrier_exposure = True
    flatten_relative_spine = False

    # ==================================================================
    # Case A — reverse step on the spine:  p/Lf/Lr/rest
    # ==================================================================
    def spine_rule(self, path: LocationPath, index: int) -> RuleApplication:
        steps = path.steps
        reverse_step = steps[index]
        forward_step = steps[index - 1]
        rest = steps[index + 1:]
        prefix = steps[:index - 1]
        absolute = path.absolute
        root_prefix = absolute and not prefix

        if root_prefix and forward_step.axis in (_FOLLOWING, _FS):
            return RuleApplication(
                Bottom(), "Lemma 3.2",
                note=f"/{forward_step.axis.xpath_name}::... selects nothing at the root")

        p_push: Tuple[Step, ...] = tuple(prefix) if prefix else (self_node(),)
        p_append: Tuple[Step, ...] = tuple(prefix)

        builder = {
            _PARENT: self._parent_spine,
            _ANC: self._ancestor_spine,
            _PS: self._preceding_sibling_spine,
            _PREC: self._preceding_spine,
        }.get(reverse_step.axis)
        if builder is None:
            raise RewriteError(
                f"unexpected reverse axis {reverse_step.axis.xpath_name} "
                f"(or-self axes are decomposed before RuleSet2 rules apply)")

        variants, rule, note = builder(p_push, p_append, forward_step,
                                       reverse_step, root_prefix)
        result = assemble_union(absolute, variants, rest)
        return RuleApplication(result, rule, note)

    # -- parent: Rules (3)-(7) -----------------------------------------
    def _parent_spine(self, p_push: Variant, p: Variant, lf: Step, lr: Step,
                      root_prefix: bool):
        n, qf = lf.node_test, lf.qualifiers
        m, qr = lr.node_test, lr.qualifiers
        axis = lf.axis
        if axis is _DESC:
            variant = p + (_step(_DOS, m, *qr, _exists(_step(_CHILD, n, *qf))),)
            return [variant], "Rule (3)", "descendant/parent"
        if axis is _CHILD:
            variant = p + (_step(_SELF, m, *qr, _exists(_step(_CHILD, n, *qf))),)
            return [variant], "Rule (4)", "child/parent"
        if axis is _SELF:
            variant = _push(p_push, _exists(lf)) + (lr,)
            return [variant], "Rule (5)", "self predecessor turned into a qualifier"
        if axis is _FS:
            variant = _push(p_push, _exists(lf)) + (lr,)
            return [variant], "Rule (6)", "following-sibling predecessor turned into a qualifier"
        if axis is _FOLLOWING:
            v1 = p + (_step(_FOLLOWING, m, *qr, _exists(_step(_CHILD, n, *qf))),)
            v2 = p + (_step(_AOS, node_wildcard(), _exists(_step(_FS, n, *qf))),
                      _step(_PARENT, m, *qr))
            return [v1, v2], "Rule (7)", "following/parent interaction"
        raise RewriteError(f"unexpected forward predecessor {axis.xpath_name}")

    # -- ancestor: Rules (13)-(17) ---------------------------------------
    def _ancestor_spine(self, p_push: Variant, p: Variant, lf: Step, lr: Step,
                        root_prefix: bool):
        n, qf = lf.node_test, lf.qualifiers
        m, qr = lr.node_test, lr.qualifiers
        axis = lf.axis
        if axis is _DESC:
            inner = _step(_DOS, m, *qr, _exists(_step(_DESC, n, *qf)))
            if root_prefix:
                return [(inner,)], "Rule (13a)", "descendant/ancestor from the root"
            v1 = _push(p_push, _exists(lf)) + (lr,)
            v2 = p + (inner,)
            return [v1, v2], "Rule (13)", "descendant/ancestor"
        if axis is _CHILD:
            variant = _push(p_push, _exists(lf)) + (_step(_AOS, m, *qr),)
            return [variant], "Rule (14)", "child/ancestor"
        if axis is _SELF:
            variant = _push(p_push, _exists(lf)) + (lr,)
            return [variant], "Rule (15)", "self predecessor turned into a qualifier"
        if axis is _FS:
            variant = _push(p_push, _exists(lf)) + (lr,)
            return [variant], "Rule (16)", "following-sibling predecessor turned into a qualifier"
        if axis is _FOLLOWING:
            v1 = p + (_step(_FOLLOWING, m, *qr, _exists(_step(_DESC, n, *qf))),)
            v2 = p + (_step(_AOS, node_wildcard(),
                            _exists(_step(_FS, node_wildcard()), _step(_DOS, n, *qf))),
                      _step(_ANC, m, *qr))
            return [v1, v2], "Rule (17)", "following/ancestor interaction"
        raise RewriteError(f"unexpected forward predecessor {axis.xpath_name}")

    # -- preceding-sibling: Rules (23)-(27) -------------------------------
    def _preceding_sibling_spine(self, p_push: Variant, p: Variant, lf: Step,
                                 lr: Step, root_prefix: bool):
        n, qf = lf.node_test, lf.qualifiers
        m, qr = lr.node_test, lr.qualifiers
        axis = lf.axis
        if axis is _DESC:
            variant = p + (_step(_DESC, m, *qr, _exists(_step(_FS, n, *qf))),)
            return [variant], "Rule (23)", "descendant/preceding-sibling"
        if axis is _CHILD:
            variant = p + (_step(_CHILD, m, *qr, _exists(_step(_FS, n, *qf))),)
            return [variant], "Rule (24)", "child/preceding-sibling"
        if axis is _SELF:
            variant = _push(p_push, _exists(lf)) + (lr,)
            return [variant], "Rule (25)", "self predecessor turned into a qualifier"
        if axis is _FS:
            v1 = _push(p_push, _exists(_step(_SELF, m, *qr), _step(_FS, n, *qf)))
            v2 = _push(p_push, _exists(lf)) + (lr,)
            v3 = p + (_step(_FS, m, *qr, _exists(_step(_FS, n, *qf))),)
            return [v1, v2, v3], "Rule (26)", "following-sibling/preceding-sibling interaction"
        if axis is _FOLLOWING:
            v1 = p + (_step(_FOLLOWING, m, *qr, _exists(_step(_FS, n, *qf))),)
            v2 = p + (_step(_AOS, node_wildcard(), _exists(_step(_FS, n, *qf))),
                      _step(_PS, m, *qr))
            v3 = p + (_step(_AOS, m, *qr, _exists(_step(_FS, n, *qf))),)
            return [v1, v2, v3], "Rule (27)", "following/preceding-sibling interaction"
        raise RewriteError(f"unexpected forward predecessor {axis.xpath_name}")

    # -- preceding: Rules (33)-(37) ----------------------------------------
    def _preceding_spine(self, p_push: Variant, p: Variant, lf: Step, lr: Step,
                         root_prefix: bool):
        n, qf = lf.node_test, lf.qualifiers
        m, qr = lr.node_test, lr.qualifiers
        axis = lf.axis
        if axis is _DESC:
            if root_prefix:
                variant = (_step(_DESC, m, *qr, _exists(_step(_FOLLOWING, n, *qf))),)
                return [variant], "Rule (33a)", "descendant/preceding from the root"
            v1 = _push(p_push, _exists(lf)) + (lr,)
            v2 = p + (_step(_DESC, node_wildcard(),
                            _exists(_step(_FS, node_wildcard()), _step(_DOS, n, *qf))),
                      _step(_DOS, m, *qr))
            return [v1, v2], "Rule (33)", (
                "descendant/preceding; erratum: descendant::* replaces the "
                "paper's child::* branch-point term")
        if axis is _CHILD:
            v1 = _push(p_push, _exists(lf)) + (lr,)
            v2 = p + (_step(_CHILD, node_wildcard(), _exists(_step(_FS, n, *qf))),
                      _step(_DOS, m, *qr))
            return [v1, v2], "Rule (34)", "child/preceding"
        if axis is _SELF:
            variant = _push(p_push, _exists(lf)) + (lr,)
            return [variant], "Rule (35)", "self predecessor turned into a qualifier"
        if axis is _FS:
            v1 = _push(p_push, _exists(lf)) + (lr,)
            v2 = p + (_step(_FS, node_wildcard(), _exists(_step(_FS, n, *qf))),
                      _step(_DOS, m, *qr))
            v3 = _push(p_push, _exists(lf)) + (_step(_DOS, m, *qr),)
            return [v1, v2, v3], "Rule (36)", "following-sibling/preceding interaction"
        if axis is _FOLLOWING:
            v1 = _push(p_push, _exists(lf)) + (lr,)
            v2 = p + (_step(_FOLLOWING, m, *qr, _exists(_step(_FOLLOWING, n, *qf))),)
            v3 = _push(p_push, _exists(lf)) + (_step(_DOS, m, *qr),)
            v4 = p + (_step(_ANC, m, *qr, _exists(_step(_FOLLOWING, n, *qf))),)
            return [v1, v2, v3, v4], "Rule (37)", (
                "following/preceding interaction; erratum: the ancestor term "
                "p/ancestor::m[following::n] is added")
        raise RewriteError(f"unexpected forward predecessor {axis.xpath_name}")

    # ==================================================================
    # Case B — reverse step heading a qualifier:  p/F::n[Lr]/rest
    # ==================================================================
    def qualifier_head_rule(self, path: LocationPath, step_index: int,
                            qual_index: int) -> RuleApplication:
        steps = path.steps
        carrier = steps[step_index]
        qualifier = carrier.qualifiers[qual_index]
        if not isinstance(qualifier, PathQualifier):
            raise RewriteError("qualifier head rules expect a path qualifier")
        inner = qualifier.path
        if not isinstance(inner, LocationPath) or inner.absolute or len(inner.steps) != 1:
            raise RewriteError(
                "qualifier head rules expect a single-step relative qualifier "
                "(the driver folds longer paths with Lemma 3.1.5 first)")
        reverse_step = inner.steps[0]

        other_qualifiers = (carrier.qualifiers[:qual_index]
                            + carrier.qualifiers[qual_index + 1:])
        rest = steps[step_index + 1:]
        prefix = steps[:step_index]
        absolute = path.absolute
        root_prefix = absolute and not prefix

        if root_prefix and carrier.axis in (_FOLLOWING, _FS):
            return RuleApplication(
                Bottom(), "Lemma 3.2",
                note=f"/{carrier.axis.xpath_name}::... selects nothing at the root")

        p_push: Tuple[Step, ...] = tuple(prefix) if prefix else (self_node(),)
        p_append: Tuple[Step, ...] = tuple(prefix)

        builder = {
            _PARENT: self._parent_qualifier,
            _ANC: self._ancestor_qualifier,
            _PS: self._preceding_sibling_qualifier,
            _PREC: self._preceding_qualifier,
        }.get(reverse_step.axis)
        if builder is None:
            raise RewriteError(
                f"unexpected reverse axis {reverse_step.axis.xpath_name} "
                f"(or-self axes are decomposed before RuleSet2 rules apply)")

        variants, rule, note = builder(p_push, p_append, carrier, reverse_step,
                                       other_qualifiers, root_prefix)
        result = assemble_union(absolute, variants, rest)
        return RuleApplication(result, rule, note)

    # -- parent in a qualifier: Rules (8)-(12) -----------------------------
    def _parent_qualifier(self, p_push: Variant, p: Variant, carrier: Step,
                          lr: Step, oq: Tuple[Qualifier, ...], root_prefix: bool):
        n = carrier.node_test
        m, qr = lr.node_test, lr.qualifiers
        axis = carrier.axis
        if axis is _DESC:
            variant = p + (_step(_DOS, m, *qr), _step(_CHILD, n, *oq))
            return [variant], "Rule (8)", "descendant[parent]"
        if axis is _CHILD:
            variant = p + (_step(_SELF, m, *qr), _step(_CHILD, n, *oq))
            return [variant], "Rule (9)", "child[parent]"
        if axis is _SELF:
            variant = _push(p_push, _exists(lr)) + (_step(_SELF, n, *oq),)
            return [variant], "Rule (10)", "qualifier moved from a self step to its context"
        if axis is _FS:
            variant = _push(p_push, _exists(lr)) + (_step(_FS, n, *oq),)
            return [variant], "Rule (11)", "following-sibling[parent]"
        if axis is _FOLLOWING:
            v1 = p + (_step(_FOLLOWING, m, *qr), _step(_CHILD, n, *oq))
            v2 = p + (_step(_AOS, node_wildcard(), _exists(lr)), _step(_FS, n, *oq))
            return [v1, v2], "Rule (12)", "following[parent] interaction"
        raise RewriteError(f"unexpected carrier axis {axis.xpath_name}")

    # -- ancestor in a qualifier: Rules (18)-(22) ---------------------------
    def _ancestor_qualifier(self, p_push: Variant, p: Variant, carrier: Step,
                            lr: Step, oq: Tuple[Qualifier, ...], root_prefix: bool):
        n = carrier.node_test
        m, qr = lr.node_test, lr.qualifiers
        axis = carrier.axis
        if axis is _DESC:
            forward = (_step(_DOS, m, *qr), _step(_DESC, n, *oq))
            if root_prefix:
                return [forward], "Rule (18a)", "descendant[ancestor] from the root"
            v1 = _push(p_push, _exists(lr)) + (_step(_DESC, n, *oq),)
            v2 = p + forward
            return [v1, v2], "Rule (18)", "descendant[ancestor]"
        if axis is _CHILD:
            variant = _push(p_push, _exists(_step(_AOS, m, *qr))) + (_step(_CHILD, n, *oq),)
            return [variant], "Rule (19)", "child[ancestor]"
        if axis is _SELF:
            variant = _push(p_push, _exists(lr)) + (_step(_SELF, n, *oq),)
            return [variant], "Rule (20)", "qualifier moved from a self step to its context"
        if axis is _FS:
            variant = _push(p_push, _exists(lr)) + (_step(_FS, n, *oq),)
            return [variant], "Rule (21)", "following-sibling[ancestor]"
        if axis is _FOLLOWING:
            v1 = p + (_step(_FOLLOWING, m, *qr), _step(_DESC, n, *oq))
            v2 = p + (_step(_AOS, node_wildcard(), _exists(lr)),
                      _step(_FS, node_wildcard()), _step(_DOS, n, *oq))
            return [v1, v2], "Rule (22)", "following[ancestor] interaction"
        raise RewriteError(f"unexpected carrier axis {axis.xpath_name}")

    # -- preceding-sibling in a qualifier: Rules (28)-(32) -------------------
    def _preceding_sibling_qualifier(self, p_push: Variant, p: Variant,
                                     carrier: Step, lr: Step,
                                     oq: Tuple[Qualifier, ...], root_prefix: bool):
        n = carrier.node_test
        m, qr = lr.node_test, lr.qualifiers
        axis = carrier.axis
        if axis is _DESC:
            variant = p + (_step(_DESC, m, *qr), _step(_FS, n, *oq))
            return [variant], "Rule (28)", "descendant[preceding-sibling]"
        if axis is _CHILD:
            variant = p + (_step(_CHILD, m, *qr), _step(_FS, n, *oq))
            return [variant], "Rule (29)", "child[preceding-sibling]"
        if axis is _SELF:
            variant = _push(p_push, _exists(lr)) + (_step(_SELF, n, *oq),)
            return [variant], "Rule (30)", (
                "erratum: push-left form p[preceding-sibling::m]/self::n "
                "(the printed right-hand side selects sibling nodes)")
        if axis is _FS:
            v1 = _push(p_push, _exists(_step(_SELF, m, *qr))) + (_step(_FS, n, *oq),)
            v2 = p + (_step(_FS, m, *qr), _step(_FS, n, *oq))
            v3 = _push(p_push, _exists(lr)) + (_step(_FS, n, *oq),)
            return [v1, v2, v3], "Rule (31)", "following-sibling[preceding-sibling] interaction"
        if axis is _FOLLOWING:
            v1 = p + (_step(_FOLLOWING, m, *qr), _step(_FS, n, *oq))
            v2 = p + (_step(_AOS, node_wildcard(), _exists(lr)), _step(_FS, n, *oq))
            v3 = p + (_step(_AOS, m, *qr), _step(_FS, n, *oq))
            return [v1, v2, v3], "Rule (32)", (
                "following[preceding-sibling] interaction; erratum: the garbled "
                "third term is reconstructed as p/ancestor-or-self::m/following-sibling::n")
        raise RewriteError(f"unexpected carrier axis {axis.xpath_name}")

    # -- preceding in a qualifier: Rules (38)-(42) ----------------------------
    def _preceding_qualifier(self, p_push: Variant, p: Variant, carrier: Step,
                             lr: Step, oq: Tuple[Qualifier, ...], root_prefix: bool):
        n = carrier.node_test
        m, qr = lr.node_test, lr.qualifiers
        axis = carrier.axis
        if axis is _DESC:
            if root_prefix:
                variant = (_step(_DESC, m, *qr), _step(_FOLLOWING, n, *oq))
                return [variant], "Rule (38a)", "descendant[preceding] from the root"
            v1 = _push(p_push, _exists(lr)) + (_step(_DESC, n, *oq),)
            v2 = p + (_step(_DESC, node_wildcard(), _exists(_step(_DOS, m, *qr))),
                      _step(_FS, node_wildcard()), _step(_DOS, n, *oq))
            return [v1, v2], "Rule (38)", (
                "descendant[preceding]; erratum: descendant::* replaces the "
                "paper's child::* branch-point term")
        if axis is _CHILD:
            v1 = _push(p_push, _exists(lr)) + (_step(_CHILD, n, *oq),)
            v2 = p + (_step(_CHILD, node_wildcard(), _exists(_step(_DOS, m, *qr))),
                      _step(_FS, n, *oq))
            return [v1, v2], "Rule (39)", "child[preceding]"
        if axis is _SELF:
            variant = _push(p_push, _exists(lr)) + (_step(_SELF, n, *oq),)
            return [variant], "Rule (40)", "qualifier moved from a self step to its context"
        if axis is _FS:
            v1 = _push(p_push, _exists(lr)) + (_step(_FS, n, *oq),)
            v2 = p + (_step(_FS, node_wildcard(), _exists(_step(_DOS, m, *qr))),
                      _step(_FS, n, *oq))
            v3 = _push(p_push, _exists(_step(_DOS, m, *qr))) + (_step(_FS, n, *oq),)
            return [v1, v2, v3], "Rule (41)", "following-sibling[preceding] interaction"
        if axis is _FOLLOWING:
            v1 = _push(p_push, _exists(lr)) + (_step(_FOLLOWING, n, *oq),)
            v2 = p + (_step(_FOLLOWING, m, *qr), _step(_FOLLOWING, n, *oq))
            v3 = _push(p_push, _exists(_step(_DOS, m, *qr))) + (_step(_FOLLOWING, n, *oq),)
            v4 = p + (_step(_ANC, m, *qr), _step(_FOLLOWING, n, *oq))
            return [v1, v2, v3, v4], "Rule (42)", (
                "following[preceding] interaction; erratum: the ancestor term "
                "p/ancestor::m/following::n is added")
        raise RewriteError(f"unexpected carrier axis {axis.xpath_name}")
