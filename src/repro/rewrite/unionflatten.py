"""Union flattening (the ``union-flattening`` helper of Figure 2).

The rewriting rules are written so that unions are always distributed over
the surrounding path when they are produced (see
:func:`repro.rewrite.builders.assemble_union`), so flattening only has to
normalize nested top-level unions and drop ``⊥`` members.  Qualifier-internal
unions are left alone: a union used as an existence qualifier is equivalent
to the disjunction of its members and needs no hoisting.
"""

from __future__ import annotations

from typing import List

from repro.xpath.ast import Bottom, PathExpr, Union, union_of


def union_terms(path: PathExpr) -> List[PathExpr]:
    """The top-level union members of ``path``, with ``⊥`` members removed.

    Returns an empty list when ``path`` is ``⊥`` (or a union of ``⊥``s).
    """
    if isinstance(path, Bottom):
        return []
    if isinstance(path, Union):
        members: List[PathExpr] = []
        for member in path.members:
            members.extend(union_terms(member))
        return members
    return [path]


def flatten_unions(path: PathExpr) -> PathExpr:
    """Normalize ``path`` so that unions occur at the top level only."""
    return union_of(*union_terms(path))
