"""Small AST construction helpers shared by the rewrite rules.

The rule implementations in :mod:`repro.rewrite.ruleset1` and
:mod:`repro.rewrite.ruleset2` read much closer to the paper when the
right-hand sides can be written with compact constructors; this module
provides them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.xpath.ast import (
    Comparison,
    LocationPath,
    NodeTest,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    union_of,
)
from repro.xpath.axes import Axis


def step(axis: Axis, node_test: NodeTest, *qualifiers: Qualifier) -> Step:
    """Build a step from an axis, a node test and qualifiers."""
    return Step(axis=axis, node_test=node_test, qualifiers=tuple(qualifiers))


def rel(*steps: Step) -> LocationPath:
    """A relative location path."""
    return LocationPath(absolute=False, steps=tuple(steps))


def absolute(*steps: Step) -> LocationPath:
    """An absolute location path (``/`` when no steps are given)."""
    return LocationPath(absolute=True, steps=tuple(steps))


def exists(*steps: Step) -> PathQualifier:
    """Qualifier asserting that the relative path built from ``steps`` is non-empty."""
    return PathQualifier(path=rel(*steps))


def exists_path(path: PathExpr) -> PathQualifier:
    """Qualifier asserting that ``path`` selects at least one node."""
    return PathQualifier(path=path)


def identity_join(left: PathExpr, right: PathExpr) -> Comparison:
    """The node-identity join ``left == right`` used by RuleSet1."""
    return Comparison(left=left, op="==", right=right)


def self_node() -> Step:
    """The step ``self::node()``."""
    return Step(axis=Axis.SELF, node_test=NodeTest.node())


def node_wildcard() -> NodeTest:
    """The ``node()`` test of the rules' branch-point steps.

    The intermediate steps the rewrite rules introduce (ancestor-or-self /
    following-sibling / descendant branch points) range over *nodes*, not
    elements: a text node is somebody's preceding sibling too, and
    ``preceding::node()`` must reach it through the branch point.  Building
    ``*`` here instead silently drops non-element results from every
    ``preceding``/``following`` rewrite.
    """
    return NodeTest.node()


def spine(path: LocationPath, steps: Sequence[Step]) -> LocationPath:
    """A path with the same absoluteness as ``path`` but the given steps."""
    return LocationPath(absolute=path.absolute, steps=tuple(steps))


def replace_qualifier(step_obj: Step, qual_index: int,
                      replacements: Iterable[Qualifier]) -> Step:
    """Return ``step_obj`` with the qualifier at ``qual_index`` replaced.

    ``replacements`` may contain zero, one or several qualifiers; they are
    spliced in at the position of the replaced qualifier, preserving the
    order of the remaining ones.
    """
    quals = list(step_obj.qualifiers)
    quals[qual_index:qual_index + 1] = list(replacements)
    return step_obj.with_qualifiers(quals)


def replace_step(path: LocationPath, index: int,
                 replacements: Iterable[Step]) -> LocationPath:
    """Return ``path`` with the step at ``index`` replaced by ``replacements``."""
    steps = list(path.steps)
    steps[index:index + 1] = list(replacements)
    return path.with_steps(steps)


def with_appended_qualifier(steps: Sequence[Step], qualifier: Qualifier) -> Tuple[Step, ...]:
    """Append ``qualifier`` to the last step of ``steps`` (which must be non-empty)."""
    steps = list(steps)
    steps[-1] = steps[-1].add_qualifiers(qualifier)
    return tuple(steps)


def assemble(absolute_flag: bool, *parts: Sequence[Step]) -> LocationPath:
    """Concatenate step sequences into one location path."""
    steps: List[Step] = []
    for part in parts:
        steps.extend(part)
    return LocationPath(absolute=absolute_flag, steps=tuple(steps))


def assemble_union(absolute_flag: bool, variants: Iterable[Sequence[Step]],
                   rest: Sequence[Step] = ()) -> PathExpr:
    """Build ``variant1/rest | variant2/rest | ...`` as a path expression.

    Unions are always distributed over the trailing ``rest`` so that the
    spine of every location path stays union-free (the invariant assumed by
    ``union-flattening`` in the ``rare`` algorithm).
    """
    members = [assemble(absolute_flag, variant, rest) for variant in variants]
    return union_of(*members)
