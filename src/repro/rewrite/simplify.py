"""Optional cosmetic simplifications of rewritten paths.

``rare`` stays faithful to the paper and never simplifies its output beyond
what the rules produce (Example 3.1 explicitly notes that further
simplification "is outside the scope of this paper").  The helpers here are
a small, clearly-sound set of clean-ups used by the examples and the
comparison benchmark so that reported path sizes are not inflated by
redundant ``self::node()`` steps introduced when a rule needed an explicit
context:

* a ``self::node()`` step with no qualifiers is dropped when the path has
  other steps (``p/self::node()/q ≡ p/q``),
* qualifiers ``[self::node()]`` (trivially true) are dropped,
* union members equal to ``⊥`` are dropped and duplicate members merged.

Each transformation preserves path equivalence and is covered by
property-based tests.
"""

from __future__ import annotations

from typing import List

from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    LocationPath,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
    union_of,
)
from repro.xpath.axes import Axis


def simplify(path: PathExpr) -> PathExpr:
    """Apply the cosmetic simplifications described in the module docstring."""
    if isinstance(path, Bottom):
        return path
    if isinstance(path, Union):
        members = [simplify(member) for member in path.members]
        unique: List[PathExpr] = []
        for member in members:
            if isinstance(member, Bottom):
                continue
            if member not in unique:
                unique.append(member)
        return union_of(*unique)
    if isinstance(path, LocationPath):
        return _simplify_location_path(path)
    raise TypeError(f"not a path expression: {path!r}")


def _is_trivial_self(step: Step) -> bool:
    return (step.axis is Axis.SELF and step.node_test.is_node
            and not step.qualifiers)


def _simplify_location_path(path: LocationPath) -> PathExpr:
    steps = [_simplify_step(step) for step in path.steps]
    kept: List[Step] = []
    for index, step in enumerate(steps):
        if _is_trivial_self(step):
            # self::node() is redundant unless it is the only thing keeping a
            # relative path non-empty (or the whole path is just "/").
            remaining = len(steps) - 1
            if path.absolute and remaining >= 0 and (kept or index + 1 < len(steps)):
                continue
            if not path.absolute and (kept or index + 1 < len(steps)):
                continue
        kept.append(step)
    if not kept and not path.absolute:
        kept = [Step(axis=Axis.SELF, node_test=path.steps[0].node_test
                     if path.steps else None)]  # pragma: no cover - defensive
    return LocationPath(absolute=path.absolute, steps=tuple(kept))


def _simplify_step(step: Step) -> Step:
    qualifiers = []
    for qual in step.qualifiers:
        simplified = _simplify_qualifier(qual)
        if simplified is None:
            continue
        qualifiers.append(simplified)
    return step.with_qualifiers(qualifiers)


def _simplify_qualifier(qual: Qualifier):
    """Simplify a qualifier; ``None`` means "trivially true, drop it"."""
    if isinstance(qual, PathQualifier):
        inner = simplify(qual.path)
        if isinstance(inner, LocationPath) and not inner.absolute:
            if len(inner.steps) == 1 and _is_trivial_self(inner.steps[0]):
                return None
        if isinstance(inner, Bottom):
            return PathQualifier(inner)
        return PathQualifier(inner)
    if isinstance(qual, AndExpr):
        left = _simplify_qualifier(qual.left)
        right = _simplify_qualifier(qual.right)
        if left is None:
            return right
        if right is None:
            return left
        return AndExpr(left=left, right=right)
    if isinstance(qual, OrExpr):
        left = _simplify_qualifier(qual.left)
        right = _simplify_qualifier(qual.right)
        if left is None or right is None:
            # one side is trivially true -> the whole disjunction is
            return None
        return OrExpr(left=left, right=right)
    if isinstance(qual, Comparison):
        return Comparison(left=simplify(qual.left), op=qual.op,
                          right=simplify(qual.right))
    raise TypeError(f"not a qualifier: {qual!r}")
