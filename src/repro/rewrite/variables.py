"""Variable-based rewriting for relative paths and RR joins (Section 4).

Two classes of location paths are outside the input class of ``rare``:
relative paths, and paths whose qualifiers contain RR joins
(Definition 4.2) — in both cases a naive removal of the reverse steps would
lose the context node.  The paper sketches the solution adopted in the full
version: *remember the context in a variable* using the ``for`` binding
construct of XPath 2.0 / XQuery, and then rewrite against that variable.

This module implements that extension:

* :class:`VariableReference` — a path expression ``$x`` (optionally followed
  by forward steps) anchored at a bound variable rather than at the root,
* :class:`ForRewrite` — ``for $x in sequence return body``; the ``sequence``
  is an ordinary (reverse-axis-free) path and the ``body`` may mention
  ``$x`` inside joins,
* :func:`rewrite_with_variables` — turns a relative path, or an absolute path
  with RR joins, into a :class:`ForRewrite` whose sequence and body are
  reverse-axis free,
* :func:`evaluate_for` — reference evaluation of a :class:`ForRewrite` on a
  document, used by the tests to check equivalence with the original path.

The key identity behind the construction is::

    p   ≡   for $x in self::node() return
            /descendant-or-self::node()[self::node() == $x]/p

for any relative path ``p``: the absolute body re-locates the context node by
a node-identity join against the variable and continues with ``p`` from
there.  The body is an *absolute* path whose only unusual feature is the
``$x`` operand, so the ordinary ``rare`` algorithm applies to it; the join
``self::node() == $x`` is not an RR join because ``$x`` does not depend on
the context node of the qualifier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Union as TypingUnion

from repro.errors import UnsupportedPathError
from repro.rewrite.builders import rel, self_node
from repro.rewrite.rare import rare
from repro.semantics.axes_impl import axis_nodes, node_test_matches
from repro.xmlmodel.document import Document
from repro.xmlmodel.node import XMLNode
from repro.xpath import analysis
from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    LocationPath,
    NodeTest,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
)
from repro.xpath.axes import Axis
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


@dataclass(frozen=True)
class VariableReference(LocationPath):
    """A path anchored at a bound variable: ``$x`` or ``$x/forward-steps``.

    Implemented as an absolute :class:`LocationPath` subclass so that the
    structural analysis helpers (and the rewriting driver) treat it as an
    anchored — i.e. context-independent — path; only the dedicated evaluator
    in this module interprets the variable itself.
    """

    variable: str = "x"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return for_to_string(self)


@dataclass(frozen=True)
class ForRewrite:
    """``for $variable in sequence return body`` (a union over the bindings)."""

    variable: str
    sequence: PathExpr
    body: PathExpr


_COUNTER = itertools.count(1)


def _fresh_variable() -> str:
    return f"x{next(_COUNTER)}"


def _anchor_step(variable: str) -> Step:
    """``descendant-or-self::node()[self::node() == $variable]``."""
    join = Comparison(left=rel(self_node()), op="==",
                      right=VariableReference(absolute=True, steps=(), variable=variable))
    return Step(axis=Axis.DESCENDANT_OR_SELF, node_test=NodeTest.node(),
                qualifiers=(join,))


def rewrite_with_variables(path: TypingUnion[str, PathExpr],
                           ruleset: str = "ruleset2") -> ForRewrite:
    """Rewrite a relative path or an RR-join path using a variable binding.

    Relative paths become ``for $x in self::node() return <anchored body>``;
    absolute paths with RR joins bind ``$x`` to the nodes selected up to (and
    including) the step carrying the first RR join and re-express the join
    against ``$x``.  In both cases the returned ``sequence`` and ``body`` are
    reverse-axis free.
    """
    if isinstance(path, str):
        path = parse_xpath(path)

    if not analysis.is_absolute(path):
        if not isinstance(path, LocationPath):
            raise UnsupportedPathError(
                "variable rewriting of relative unions is not supported; "
                "rewrite each member separately")
        variable = _fresh_variable()
        anchored = LocationPath(absolute=True,
                                steps=(_anchor_step(variable),) + path.steps)
        body = rare(anchored, ruleset=ruleset).result
        return ForRewrite(variable=variable, sequence=rel(self_node()), body=body)

    if isinstance(path, LocationPath) and analysis.has_rr_joins(path):
        return _rewrite_rr_join(path, ruleset)

    # Already in the input class of rare: bind the root for uniformity.
    variable = _fresh_variable()
    return ForRewrite(variable=variable, sequence=LocationPath(absolute=True, steps=()),
                      body=rare(path, ruleset=ruleset).result)


def _rewrite_rr_join(path: LocationPath, ruleset: str) -> ForRewrite:
    """Handle an absolute path whose qualifiers contain RR joins."""
    variable = _fresh_variable()
    carrier_index = _first_rr_join_step(path)
    carrier = path.steps[carrier_index]

    # The binding sequence: the path up to the carrier step, with the RR-join
    # qualifiers removed from the carrier (they are re-checked in the body).
    kept, rr_joins = [], []
    for qual in carrier.qualifiers:
        if isinstance(qual, Comparison) and analysis.is_rr_join(qual):
            rr_joins.append(qual)
        else:
            kept.append(qual)
    sequence_path = LocationPath(
        absolute=True,
        steps=path.steps[:carrier_index] + (carrier.with_qualifiers(kept),),
    )
    sequence = rare(sequence_path, ruleset=ruleset).result

    # The body: re-locate $x, re-check the joins against $x, continue with the
    # rest of the original path.
    anchored_joins = [
        Comparison(left=_anchor_operand(join.left, variable), op=join.op,
                   right=_anchor_operand(join.right, variable))
        for join in rr_joins
    ]
    anchor = _anchor_step(variable)
    anchor = anchor.add_qualifiers(*anchored_joins)
    body_path = LocationPath(absolute=True,
                             steps=(anchor,) + path.steps[carrier_index + 1:])
    body = rare(body_path, ruleset=ruleset).result
    return ForRewrite(variable=variable, sequence=sequence, body=body)


def _anchor_operand(operand: PathExpr, variable: str) -> PathExpr:
    """Re-anchor a relative join operand at ``$variable``."""
    if analysis.is_absolute(operand):
        return operand
    if not isinstance(operand, LocationPath):
        raise UnsupportedPathError(
            "variable rewriting supports plain relative paths as join operands")
    return LocationPath(absolute=True,
                        steps=(_anchor_step(variable),) + operand.steps)


def _first_rr_join_step(path: LocationPath) -> int:
    """Index of the first spine step whose qualifiers contain an RR join."""
    for index, step in enumerate(path.steps):
        for qual in step.qualifiers:
            for comparison in _comparisons_in(qual):
                if analysis.is_rr_join(comparison):
                    return index
    raise UnsupportedPathError("path contains no RR join")


def _comparisons_in(qual: Qualifier) -> Iterable[Comparison]:
    if isinstance(qual, Comparison):
        yield qual
    elif isinstance(qual, (AndExpr, OrExpr)):
        yield from _comparisons_in(qual.left)
        yield from _comparisons_in(qual.right)
    elif isinstance(qual, PathQualifier):
        yield from analysis.iter_comparisons(qual.path)


# ---------------------------------------------------------------------------
# Reference evaluation of ForRewrite (used by tests)
# ---------------------------------------------------------------------------

def evaluate_for(expr: ForRewrite, document: Document,
                 context: Optional[XMLNode] = None) -> List[XMLNode]:
    """Evaluate ``for $x in sequence return body`` on a document."""
    if context is None:
        context = document.root
    bindings = _eval_path(expr.sequence, document, context, {})
    result: Set[XMLNode] = set()
    for binding in sorted(bindings, key=lambda node: node.position):
        result |= _eval_path(expr.body, document, context,
                             {expr.variable: binding})
    return document.sorted_in_document_order(result)


def _eval_path(path: PathExpr, document: Document, context: XMLNode,
               env: Dict[str, XMLNode]) -> Set[XMLNode]:
    if isinstance(path, Bottom):
        return set()
    if isinstance(path, Union):
        result: Set[XMLNode] = set()
        for member in path.members:
            result |= _eval_path(member, document, context, env)
        return result
    if isinstance(path, VariableReference):
        try:
            current: Set[XMLNode] = {env[path.variable]}
        except KeyError:
            raise UnsupportedPathError(f"unbound variable ${path.variable}") from None
    elif isinstance(path, LocationPath):
        current = {document.root} if path.absolute else {context}
    else:
        raise UnsupportedPathError(f"not a path expression: {path!r}")
    for step in path.steps:
        next_nodes: Set[XMLNode] = set()
        for node in current:
            for candidate in axis_nodes(node, step.axis):
                if not node_test_matches(step.node_test, candidate):
                    continue
                if candidate in next_nodes:
                    continue
                if all(_eval_qualifier(q, document, candidate, env)
                       for q in step.qualifiers):
                    next_nodes.add(candidate)
        current = next_nodes
        if not current:
            break
    return current


def _eval_qualifier(qual: Qualifier, document: Document, context: XMLNode,
                    env: Dict[str, XMLNode]) -> bool:
    if isinstance(qual, PathQualifier):
        return bool(_eval_path(qual.path, document, context, env))
    if isinstance(qual, AndExpr):
        return (_eval_qualifier(qual.left, document, context, env)
                and _eval_qualifier(qual.right, document, context, env))
    if isinstance(qual, OrExpr):
        return (_eval_qualifier(qual.left, document, context, env)
                or _eval_qualifier(qual.right, document, context, env))
    if isinstance(qual, Comparison):
        left = _eval_path(qual.left, document, context, env)
        right = _eval_path(qual.right, document, context, env)
        if qual.op == "==":
            return bool(left & right)
        return bool({n.text_content() for n in left}
                    & {n.text_content() for n in right})
    raise UnsupportedPathError(f"not a qualifier: {qual!r}")


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def for_to_string(expr: TypingUnion[ForRewrite, PathExpr]) -> str:
    """Render a ForRewrite (or variable-containing path) as XPath 2.0-like text."""
    if isinstance(expr, ForRewrite):
        return (f"for ${expr.variable} in {for_to_string(expr.sequence)} "
                f"return {for_to_string(expr.body)}")
    if isinstance(expr, VariableReference):
        suffix = "/".join(
            f"{step.axis.xpath_name}::{step.node_test}" for step in expr.steps)
        return f"${expr.variable}" + (f"/{suffix}" if suffix else "")
    if isinstance(expr, Union):
        return " | ".join(for_to_string(member) for member in expr.members)
    if isinstance(expr, LocationPath):
        # Delegate to the standard serializer for plain paths; it cannot see
        # VariableReference objects nested inside qualifiers, so render those
        # by substitution.
        rendered = to_string(expr)
        return rendered
    return to_string(expr)
