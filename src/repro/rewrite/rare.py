"""The ``rare`` algorithm (reverse axis removal) of Figure 2.

``rare`` takes an absolute location path whose qualifiers contain no RR
joins, repeatedly applies one rewriting rule to the first reverse location
step of the current union term (delegating to RuleSet1 or RuleSet2), keeps
the resulting union terms on a stack, and assembles the reverse-axis-free
result.  The structure follows Figure 2 of the paper:

1. ``apply-lemmas`` — in this implementation the lemmas of Section 3.1/3.2
   are applied *on demand* by the driver (see :mod:`repro.rewrite.rewriter`),
   so the explicit call reduces to a no-op pre-pass;
2. ``union-flattening`` — the top-level union terms are pushed on a stack;
3. the inner loop rewrites one union term until it has no reverse steps,
   pushing any new union terms produced by a rule application;
4. terms are accumulated into the output union.

Every intermediate state is recorded in a :class:`RewriteTrace`, which is how
the worked examples of Figures 3 and 4 are reproduced verbatim by
``benchmarks/bench_fig3_ruleset1_trace.py`` and
``benchmarks/bench_fig4_ruleset2_trace.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union as TypingUnion

from repro.errors import RewriteLimitExceeded, RRJoinError, UnsupportedPathError
from repro.rewrite.rewriter import apply_once
from repro.rewrite.rules import RuleApplication, RuleSetBase
from repro.rewrite.ruleset1 import RuleSet1
from repro.rewrite.ruleset2 import RuleSet2
from repro.rewrite.unionflatten import union_terms
from repro.xpath import analysis
from repro.xpath.ast import Bottom, PathExpr, union_of
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string

#: Default safety budget for rule applications.  RuleSet2 is worst-case
#: exponential (Theorem 4.2); practical paths stay far below this bound.
DEFAULT_MAX_APPLICATIONS = 20_000

_RULESETS = {
    "ruleset1": RuleSet1,
    "ruleset2": RuleSet2,
}


@dataclass(frozen=True)
class TraceEntry:
    """One step of a ``rare`` run, mirroring the rows of Figures 3 and 4."""

    action: str          # "pop", "match", "push", "emit", "input", "output"
    rule: str = ""       # rule or lemma label for "match" entries
    detail: str = ""     # the path (or term) after the action, rendered as text
    note: str = ""

    def describe(self) -> str:
        """Render the entry the way the paper's figures narrate a run."""
        if self.action == "match":
            suffix = f"  {{{self.rule}}}" if self.rule else ""
            return f"U ← match(U) = {self.detail}{suffix}"
        if self.action == "pop":
            return f"U ← pop(S) = {self.detail}"
        if self.action == "push":
            return f"push({self.detail}, S)"
        if self.action == "emit":
            return f"p′ ← p′ | {self.detail}"
        if self.action == "input":
            return f"input: {self.detail}"
        if self.action == "output":
            return f"output: {self.detail}"
        return f"{self.action}: {self.detail}"


@dataclass
class RewriteTrace:
    """The full trace of a ``rare`` run."""

    ruleset: str
    entries: List[TraceEntry] = field(default_factory=list)

    def add(self, action: str, rule: str = "", detail: str = "", note: str = "") -> None:
        self.entries.append(TraceEntry(action=action, rule=rule, detail=detail, note=note))

    def rules_applied(self) -> List[str]:
        """The sequence of rule labels applied during the run."""
        return [entry.rule for entry in self.entries if entry.action == "match"]

    def describe(self) -> str:
        """Multi-line rendering of the whole run (Figures 3/4 style)."""
        lines = [f"rare run with {self.ruleset}"]
        for index, entry in enumerate(self.entries):
            lines.append(f"  Step {index}: {entry.describe()}")
        return "\n".join(lines)


@dataclass
class RareResult:
    """Result of running ``rare`` on a location path."""

    input: PathExpr
    result: PathExpr
    ruleset: str
    applications: int
    elapsed_seconds: float
    trace: Optional[RewriteTrace] = None

    @property
    def input_length(self) -> int:
        """Length (number of steps) of the input path."""
        return analysis.path_length(self.input)

    @property
    def output_length(self) -> int:
        """Length (number of steps) of the rewritten path."""
        return analysis.path_length(self.result)

    @property
    def output_joins(self) -> int:
        """Number of joins in the rewritten path."""
        return analysis.count_joins(self.result)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return to_string(self.result)


def resolve_ruleset(ruleset: TypingUnion[str, RuleSetBase]) -> RuleSetBase:
    """Accept a rule-set instance or one of the names ``ruleset1``/``ruleset2``."""
    if isinstance(ruleset, RuleSetBase):
        return ruleset
    try:
        return _RULESETS[ruleset.lower()]()
    except KeyError:
        raise UnsupportedPathError(
            f"unknown rule set {ruleset!r}; expected 'ruleset1' or 'ruleset2'"
        ) from None


def rare(path: TypingUnion[str, PathExpr],
         ruleset: TypingUnion[str, RuleSetBase] = "ruleset2",
         collect_trace: bool = False,
         max_applications: int = DEFAULT_MAX_APPLICATIONS) -> RareResult:
    """Run the ``rare`` algorithm on ``path``.

    Parameters
    ----------
    path:
        The input location path — an AST or an xPath string.  It must be
        absolute and its qualifiers must not contain RR joins
    ruleset:
        ``"ruleset1"``, ``"ruleset2"`` or a :class:`RuleSetBase` instance.
    collect_trace:
        Record a :class:`RewriteTrace` of every rule application (used to
        reproduce Figures 3 and 4).
    max_applications:
        Safety budget; exceeded only by adversarial inputs far beyond the
        "less than ten steps" paths the paper considers practical.

    Raises
    ------
    UnsupportedPathError
        If the path is relative.
    RRJoinError
        If a qualifier contains an RR join (Definition 4.2).
    RewriteLimitExceeded
        If the rule-application budget is exhausted.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    ruleset_obj = resolve_ruleset(ruleset)

    ok, reason = analysis.is_rare_input(path)
    if not ok:
        if "RR join" in (reason or ""):
            raise RRJoinError(reason)
        raise UnsupportedPathError(reason or "path outside the input class of rare")

    trace = RewriteTrace(ruleset=ruleset_obj.name) if collect_trace else None
    if trace is not None:
        trace.add("input", detail=to_string(path))

    start = time.perf_counter()
    applications = 0

    stack: List[PathExpr] = list(reversed(union_terms(path)))
    finished: List[PathExpr] = []

    while stack:
        term = stack.pop()
        if trace is not None:
            trace.add("pop", detail=to_string(term))
        while analysis.has_reverse_steps(term):
            if applications >= max_applications:
                raise RewriteLimitExceeded(
                    f"exceeded {max_applications} rule applications while "
                    f"rewriting with {ruleset_obj.name}")
            application: Optional[RuleApplication] = apply_once(term, ruleset_obj)
            if application is None:  # pragma: no cover - defensive
                break
            applications += 1
            terms = union_terms(application.result)
            if not terms:
                term = Bottom()
                if trace is not None:
                    trace.add("match", rule=application.rule, detail="⊥",
                              note=application.note)
                break
            term = terms[0]
            for extra in reversed(terms[1:]):
                stack.append(extra)
                if trace is not None:
                    trace.add("push", detail=to_string(extra))
            if trace is not None:
                trace.add("match", rule=application.rule, detail=to_string(term),
                          note=application.note)
        if not isinstance(term, Bottom):
            finished.append(term)
            if trace is not None:
                trace.add("emit", detail=to_string(term))

    result = union_of(*finished) if finished else Bottom()
    elapsed = time.perf_counter() - start
    if trace is not None:
        trace.add("output", detail=to_string(result))

    return RareResult(input=path, result=result, ruleset=ruleset_obj.name,
                      applications=applications, elapsed_seconds=elapsed,
                      trace=trace)


def remove_reverse_axes(path: TypingUnion[str, PathExpr],
                        ruleset: TypingUnion[str, RuleSetBase] = "ruleset2",
                        max_applications: int = DEFAULT_MAX_APPLICATIONS) -> PathExpr:
    """Convenience wrapper around :func:`rare` returning only the rewritten path."""
    return rare(path, ruleset=ruleset, max_applications=max_applications).result
