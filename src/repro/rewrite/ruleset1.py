"""RuleSet1 — the general equivalences of Section 3.1 (Proposition 3.1).

RuleSet1 removes reverse steps with two rules based purely on axis symmetry
and node-identity joins:

* **Rule (1)** — a reverse step heading a qualifier::

      p[am::m/s]  ≡  p[/descendant::m[s]/bm::node() == self::node()]

  "instead of looking back from the context node for a matching node, look
  forward from the beginning of the document for the node, and then —
  still forward — for reaching the initial context node."

* **Rule (2) / (2a)** — a reverse step on the spine of an absolute path::

      /p/an::n/am::m  ≡  /descendant::m[bm::n == /p/an::n]

``bm`` is the symmetrical axis of ``am``.  Every rule application removes one
reverse step and adds at most two forward steps plus one join, which is why
Theorem 4.1 gives a rewriting that is *linear* in the length of the input —
at the price of one ``==`` join per removed reverse step.

One refinement relative to the paper's statement: when the reverse axis can
select the document root itself (``parent``/``ancestor``/``ancestor-or-self``
with the ``node()`` test), the ``/descendant::m`` anchor of the right-hand
side is widened to ``/descendant-or-self::m`` — otherwise the root would be
missed.  For every other node test the two anchors coincide, so the paper's
form is emitted verbatim (as in Figure 3).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import RewriteError
from repro.rewrite.builders import identity_join, rel, self_node, step
from repro.rewrite.rules import RuleApplication, RuleSetBase
from repro.xpath.ast import (
    Comparison,
    LocationPath,
    NodeTest,
    PathQualifier,
    Qualifier,
    Step,
)
from repro.xpath.axes import Axis

#: Reverse axes that can select the document root (when the node test is
#: ``node()``); for these the forward anchor must include the root.
_MAY_SELECT_ROOT = frozenset({Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF})


def _anchor_axis(reverse_axis: Axis, node_test: NodeTest) -> Axis:
    """The forward anchor axis used on the right-hand side of Rules (1)/(2)."""
    if reverse_axis in _MAY_SELECT_ROOT and node_test.is_node:
        return Axis.DESCENDANT_OR_SELF
    return Axis.DESCENDANT


class RuleSet1(RuleSetBase):
    """The general, join-introducing rule set (Rules (1), (2), (2a))."""

    name = "RuleSet1"
    requires_or_self_decomposition = False
    requires_carrier_exposure = False
    flatten_relative_spine = True

    # ------------------------------------------------------------------
    # Rule (2) / (2a): reverse step on the spine of an absolute path
    # ------------------------------------------------------------------
    def spine_rule(self, path: LocationPath, index: int) -> RuleApplication:
        if not path.absolute:
            raise RewriteError(
                "RuleSet1 spine rewriting requires an absolute path; relative "
                "qualifier paths are flattened with Lemma 3.1.5 first")
        steps = path.steps
        reverse_step = steps[index]
        predecessor = steps[index - 1]
        symmetric = reverse_step.axis.symmetric
        anchor = _anchor_axis(reverse_step.axis, reverse_step.node_test)

        context_path = LocationPath(absolute=True, steps=steps[:index])
        join = identity_join(rel(step(symmetric, predecessor.node_test)), context_path)
        anchor_step = Step(
            axis=anchor,
            node_test=reverse_step.node_test,
            qualifiers=reverse_step.qualifiers + (join,),
        )
        result = LocationPath(absolute=True,
                              steps=(anchor_step,) + steps[index + 1:])
        rule = "Rule (2a)" if index == 1 else "Rule (2)"
        note = (f"{reverse_step.axis.xpath_name} removed via the symmetric "
                f"{symmetric.xpath_name} axis and a node-identity join")
        return RuleApplication(result, rule, note)

    # ------------------------------------------------------------------
    # Rule (1): reverse step heading a qualifier (local rewrite)
    # ------------------------------------------------------------------
    def local_qualifier_rule(self, qualifier_path: LocationPath
                             ) -> Tuple[Qualifier, str, str]:
        head = qualifier_path.steps[0]
        if not head.is_reverse:
            raise RewriteError("Rule (1) expects a reverse step heading the qualifier")
        symmetric = head.axis.symmetric
        anchor = _anchor_axis(head.axis, head.node_test)

        anchor_qualifiers = list(head.qualifiers)
        trailing = qualifier_path.steps[1:]
        if trailing:
            anchor_qualifiers.append(PathQualifier(rel(*trailing)))
        anchor_step = Step(axis=anchor, node_test=head.node_test,
                           qualifiers=tuple(anchor_qualifiers))
        forward_witness = LocationPath(
            absolute=True,
            steps=(anchor_step, Step(axis=symmetric, node_test=NodeTest.node())),
        )
        join: Comparison = identity_join(forward_witness, rel(self_node()))
        note = (f"{head.axis.xpath_name} qualifier replaced by a forward search "
                f"from the document root joined back to the context node")
        return join, "Rule (1)", note

    def qualifier_head_rule(self, path: LocationPath, step_index: int,
                            qual_index: int) -> RuleApplication:
        """Not used: the driver rewrites RuleSet1 qualifiers locally."""
        raise RewriteError(
            "RuleSet1 qualifiers are rewritten locally via local_qualifier_rule")
