"""The rewriting driver: locate the first reverse step and apply one rule.

``apply_once(path, ruleset)`` performs a single *rule application* in the
sense of Definition 4.1: it finds the first reverse location step of the
expression (scanning spine steps left to right and, for each forward spine
step, its qualifiers), prepares the surrounding structure with the lemmas of
Section 3 where necessary, and then delegates to the rule set (RuleSet1 or
RuleSet2) for the actual equivalence.  The ``rare`` loop of
:mod:`repro.rewrite.rare` calls this repeatedly until no reverse step
remains, exactly as in Figure 2 of the paper.

Which lemmas the driver applies on demand (the ``apply-lemmas`` box of
Figure 2) and why:

* **Lemma 3.2 / root context** — a reverse step as the first step of an
  absolute path, or preceded only by ``self`` steps, is evaluated at the
  document root, which has no parent, no ancestors and nothing preceding it;
  the whole union term collapses to ``⊥``.
* **Lemma 3.1.6 / 3.1.7 (or-self decomposition)** — RuleSet2's specific rules
  only treat the five plain reverse axes and five plain forward predecessor
  axes, so ``ancestor-or-self`` reverse steps and ``descendant-or-self``
  predecessors are first decomposed into unions.
* **Lemma 3.1.5 (qualifier flattening)** — RuleSet1 handles reverse steps
  inside qualifiers only when they head a qualifier (Rule (1)); a reverse
  step at a later position is first pushed into a nested qualifier.
  RuleSet2 needs the same flattening for reverse steps that head a qualifier
  path with trailing steps.
* **Lemma 3.1.8 and complex-qualifier congruences** — joins with an absolute
  operand are pushed into the relative operand, ``and``/``or`` qualifiers are
  split so the reverse step ends up in a *direct* qualifier of its carrier
  step (needed by RuleSet2 only), union qualifiers are turned into ``or``
  qualifiers, and qualifier paths headed by a ``self`` step are hoisted onto
  the carrier.  Each of these is an equivalence on qualifiers (they hold at
  every context node) and is property-tested in
  ``tests/property/test_driver_lemmas.py``.
* **Attribute lemmas** — the attribute axis (an extension beyond the paper's
  fragment) has no symmetric axis, so the rule sets' symmetry arguments do
  not apply to reverse steps evaluated *at attribute nodes*.  The driver
  removes them first with equivalences specific to the attribute data model:
  the parent of an attribute is its owner element, its ancestors are the
  owner's ancestor-or-self, it has no siblings and precedes nothing, and the
  downward/document-order forward axes from an attribute are empty.  Both
  rule sets therefore only ever see reverse steps whose context nodes are
  tree nodes, and their rewrites never route through attributes (forward
  searches via ``descendant``/``following`` cannot reach attribute nodes).
* **RR joins** are rejected with :class:`repro.errors.RRJoinError`
  (Definition 4.2 delimits the input class of ``rare``); the variable-based
  extension of :mod:`repro.rewrite.variables` covers them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import RewriteError, RRJoinError
from repro.rewrite.builders import (
    rel,
    replace_qualifier,
    replace_step,
    self_node,
    with_appended_qualifier,
)
from repro.rewrite.rules import RuleApplication, RuleSetBase
from repro.xpath import analysis
from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    LocationPath,
    OrExpr,
    PathExpr,
    PathQualifier,
    Qualifier,
    Step,
    Union,
    iter_union_members,
    union_of,
)
from repro.xpath.axes import Axis

#: The four reverse axes that select nothing when evaluated at the root.
#: ``ancestor-or-self`` is excluded: from the root it selects the root.
_EMPTY_AT_ROOT = frozenset({
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.PRECEDING,
    Axis.PRECEDING_SIBLING,
})


def apply_once(path: PathExpr, ruleset: RuleSetBase) -> Optional[RuleApplication]:
    """Apply one rewriting rule (or preparatory lemma) to the first reverse step.

    Returns ``None`` when the expression contains no reverse step, otherwise
    the :class:`RuleApplication` describing the replacement of the whole
    expression.
    """
    return _rewrite_expr(path, ruleset)


# ---------------------------------------------------------------------------
# Recursive descent over path expressions
# ---------------------------------------------------------------------------

def _rewrite_expr(expr: PathExpr, ruleset: RuleSetBase) -> Optional[RuleApplication]:
    if isinstance(expr, Bottom):
        return None
    if isinstance(expr, Union):
        for index, member in enumerate(expr.members):
            app = _rewrite_expr(member, ruleset)
            if app is not None:
                members = list(expr.members)
                members[index] = app.result
                return RuleApplication(union_of(*members), app.rule, app.note)
        return None
    if isinstance(expr, LocationPath):
        return _rewrite_location_path(expr, ruleset)
    raise RewriteError(f"not a path expression: {expr!r}")


def _rewrite_location_path(path: LocationPath,
                           ruleset: RuleSetBase) -> Optional[RuleApplication]:
    for index, spine_step in enumerate(path.steps):
        if spine_step.is_reverse:
            return _handle_spine_reverse(path, index, ruleset)
        for qual_index, qual in enumerate(spine_step.qualifiers):
            if not _qualifier_has_reverse(qual):
                continue
            return _handle_qualifier(path, index, qual_index, ruleset)
    return None


# ---------------------------------------------------------------------------
# Case A: the first reverse step lies on the spine of ``path``
# ---------------------------------------------------------------------------

def _handle_spine_reverse(path: LocationPath, index: int,
                          ruleset: RuleSetBase) -> RuleApplication:
    steps = path.steps
    reverse_step = steps[index]

    if path.absolute and index == 0:
        if reverse_step.axis in _EMPTY_AT_ROOT:
            return RuleApplication(
                Bottom(), "Lemma 3.2",
                note=f"/{reverse_step.axis.xpath_name}::... selects nothing at the root",
            )
        # ancestor-or-self as the very first step: /ancestor-or-self::t
        # selects the root iff t is node(); decompose so the ancestor part
        # collapses via the branch above and the self part is forward.
        return _decompose_or_self_step(path, index, "Lemma 3.1.6")

    if (path.absolute
            and reverse_step.axis in _EMPTY_AT_ROOT
            and all(step.axis is Axis.SELF for step in steps[:index])):
        return RuleApplication(
            Bottom(), "Lemma 3.2",
            note="reverse axis evaluated at the document root (self-only prefix)",
        )

    if not path.absolute and index == 0:
        raise RewriteError(
            "a relative path starting with a reverse step has no context to "
            "rewrite against; use the variable-based rewriting of "
            "repro.rewrite.variables"
        )

    if steps[index - 1].axis is Axis.ATTRIBUTE:
        # The context nodes of the reverse step are attribute nodes; neither
        # rule set's symmetry argument applies there, so the driver removes
        # the step with the attribute lemmas (valid for both rule sets).
        return _attribute_spine_lemma(path, index)

    if ruleset.requires_or_self_decomposition:
        if reverse_step.axis is Axis.ANCESTOR_OR_SELF:
            return _decompose_or_self_step(path, index, "Lemma 3.1.6")
        predecessor = steps[index - 1]
        if predecessor.axis is Axis.DESCENDANT_OR_SELF:
            return _decompose_or_self_step(path, index - 1, "Lemma 3.1.7")
        if predecessor.axis is Axis.ANCESTOR_OR_SELF:
            # The predecessor is itself reverse and would have been found
            # first; defensive only.
            return _decompose_or_self_step(path, index - 1, "Lemma 3.1.6")

    if not path.absolute and ruleset.flatten_relative_spine:
        # Lemma 3.1.5: push the tail starting at the reverse step into a
        # nested qualifier, so that Rule (1) applies at the next iteration.
        # Only sound inside an existence qualifier, which is the only place
        # the driver ever descends into relative paths.
        head = steps[:index]
        tail = steps[index:]
        flattened = LocationPath(
            absolute=False,
            steps=head[:-1] + (head[-1].add_qualifiers(PathQualifier(rel(*tail))),),
        )
        return RuleApplication(flattened, "Lemma 3.1.5",
                               note="reverse step pushed into a nested qualifier")

    return ruleset.spine_rule(path, index)


def _decompose_or_self_step(path: LocationPath, index: int,
                            rule: str) -> RuleApplication:
    """Split an ``*-or-self`` step into its two plain variants (union)."""
    target = path.steps[index]
    if target.axis is Axis.ANCESTOR_OR_SELF:
        plain, self_axis = Axis.ANCESTOR, Axis.SELF
    elif target.axis is Axis.DESCENDANT_OR_SELF:
        plain, self_axis = Axis.DESCENDANT, Axis.SELF
    else:  # pragma: no cover - defensive
        raise RewriteError(f"step {target!r} is not an or-self step")
    plain_variant = replace_step(
        path, index, [Step(plain, target.node_test, target.qualifiers)])
    self_variant = replace_step(
        path, index, [Step(self_axis, target.node_test, target.qualifiers)])
    return RuleApplication(
        union_of(plain_variant, self_variant), rule,
        note=f"{target.axis.xpath_name} decomposed into "
             f"{plain.xpath_name} | {self_axis.xpath_name}",
    )


# ---------------------------------------------------------------------------
# Attribute lemmas (extension): reverse steps evaluated at attribute nodes
# ---------------------------------------------------------------------------

#: Forward axes that select nothing from an attribute context node: an
#: attribute has no children, no siblings, no attributes of its own, and
#: takes part in neither following nor preceding.
_EMPTY_AT_ATTRIBUTE = frozenset({
    Axis.CHILD,
    Axis.DESCENDANT,
    Axis.FOLLOWING,
    Axis.FOLLOWING_SIBLING,
    Axis.ATTRIBUTE,
})

_ATTRIBUTE_LEMMA = "Lemma (attributes)"


def _with_qualified_prefix(path: LocationPath, prefix: Tuple[Step, ...],
                           hoisted: Qualifier) -> Optional[Tuple[Step, ...]]:
    """``prefix`` with ``hoisted`` attached to its last step.

    An empty prefix of an absolute path means the attribute step applies to
    the document root, which carries no attributes — the caller maps ``None``
    to ⊥.  An empty relative prefix gains an explicit ``self::node()``
    carrier for the qualifier.
    """
    if prefix:
        return with_appended_qualifier(prefix, hoisted)
    if path.absolute:
        return None
    return (self_node().add_qualifiers(hoisted),)


def _attribute_spine_lemma(path: LocationPath, index: int) -> RuleApplication:
    """Remove a reverse step whose predecessor is an attribute step.

    The attribute data model makes every case explicit:

    * ``p/@a/parent::m``             ≡ ``p/self::m[@a]``
    * ``p/@a/ancestor::m``           ≡ ``p[@a]/ancestor-or-self::m``
    * ``p/@a/ancestor-or-self::m``   ≡ the ancestor form ∪ ``p/@a/self::m``
    * ``p/@a/preceding::m``          ≡ ⊥ (attributes precede nothing)
    * ``p/@a/preceding-sibling::m``  ≡ ⊥ (attributes have no siblings)

    The ancestor forms keep a reverse step, but one anchored at a *tree*
    node, which the ordinary rules remove on later iterations.
    """
    steps = path.steps
    reverse_step = steps[index]
    attribute_step = steps[index - 1]
    prefix = steps[:index - 1]
    rest = steps[index + 1:]
    axis = reverse_step.axis
    m, qr = reverse_step.node_test, reverse_step.qualifiers

    if axis in (Axis.PRECEDING, Axis.PRECEDING_SIBLING):
        return RuleApplication(
            Bottom(), _ATTRIBUTE_LEMMA,
            note=f"attribute nodes have no {axis.xpath_name} nodes")

    if axis is Axis.PARENT:
        owner = Step(Axis.SELF, m,
                     qr + (PathQualifier(rel(attribute_step)),))
        result = LocationPath(absolute=path.absolute,
                              steps=prefix + (owner,) + rest)
        return RuleApplication(
            result, _ATTRIBUTE_LEMMA,
            note="the parent of an attribute is its owner element")

    # ancestor / ancestor-or-self: the ancestors of an attribute are the
    # ancestor-or-self nodes of its owner.
    anchored = _with_qualified_prefix(path, prefix,
                                      PathQualifier(rel(attribute_step)))
    if anchored is None:
        return RuleApplication(
            Bottom(), _ATTRIBUTE_LEMMA,
            note="the document root carries no attributes")
    ancestor_variant = LocationPath(
        absolute=path.absolute,
        steps=anchored + (Step(Axis.ANCESTOR_OR_SELF, m, qr),) + rest)
    if axis is Axis.ANCESTOR:
        return RuleApplication(
            ancestor_variant, _ATTRIBUTE_LEMMA,
            note="ancestors of an attribute are the owner's ancestor-or-self")
    assert axis is Axis.ANCESTOR_OR_SELF
    self_variant = LocationPath(
        absolute=path.absolute,
        steps=prefix + (attribute_step, Step(Axis.SELF, m, qr)) + rest)
    return RuleApplication(
        union_of(ancestor_variant, self_variant), _ATTRIBUTE_LEMMA,
        note="ancestor-or-self decomposed at the attribute node")


def _handle_attribute_carrier_qualifier(path: LocationPath, step_index: int,
                                        qual_index: int, qual: Qualifier,
                                        ruleset: RuleSetBase) -> RuleApplication:
    """Rewrite a reverse step inside a qualifier of an attribute step.

    The context nodes of such a qualifier are attribute nodes, so neither
    RuleSet1's Rule (1) witness (which searches forward through
    ``child``/``descendant``) nor RuleSet2's carrier rules apply.  Boolean
    structure is dismantled with the generic congruences; a reverse step
    heading the qualifier path is then removed with the attribute lemmas.
    """
    carrier = path.steps[step_index]

    if isinstance(qual, AndExpr):
        # [q1 and q2] ≡ [q1][q2] on the same step (generic congruence).
        return _replace_qualifier_application(
            path, step_index, qual_index, [qual.left, qual.right],
            "Lemma (complex qualifiers)", "'and' qualifier split in two")
    if isinstance(qual, OrExpr):
        left_path = replace_step(
            path, step_index,
            [replace_qualifier(carrier, qual_index, [qual.left])])
        right_path = replace_step(
            path, step_index,
            [replace_qualifier(carrier, qual_index, [qual.right])])
        return RuleApplication(
            union_of(left_path, right_path), "Lemma (complex qualifiers)",
            note="'or' qualifier split into a union")
    if isinstance(qual, Comparison):
        new_qual, rule, note = _rewrite_comparison(qual, ruleset)
        return _replace_qualifier_application(path, step_index, qual_index,
                                              [new_qual], rule, note)
    if not isinstance(qual, PathQualifier):
        raise RewriteError(f"not a qualifier: {qual!r}")

    inner_path = qual.path
    if isinstance(inner_path, Union):
        members = list(iter_union_members(inner_path))
        new_qual: Qualifier = PathQualifier(members[0])
        for member in members[1:]:
            new_qual = OrExpr(left=new_qual, right=PathQualifier(member))
        return _replace_qualifier_application(
            path, step_index, qual_index, [new_qual],
            "Lemma (complex qualifiers)", "union qualifier turned into 'or'")
    assert isinstance(inner_path, LocationPath)
    if inner_path.absolute:
        inner = _rewrite_expr(inner_path, ruleset)
        if inner is None:  # pragma: no cover - caller checked for reverse steps
            raise RewriteError("expected a reverse step inside the qualifier")
        return _replace_qualifier_application(
            path, step_index, qual_index, [PathQualifier(inner.result)],
            inner.rule, inner.note)

    head = inner_path.steps[0]

    if head.axis in _EMPTY_AT_ATTRIBUTE:
        # The qualifier path starts with an axis that is empty at attribute
        # nodes: the qualifier is false, the carrier selects nothing, the
        # whole union member collapses.
        return RuleApplication(
            Bottom(), _ATTRIBUTE_LEMMA,
            note=f"{head.axis.xpath_name} from an attribute node is empty")
    if head.axis is Axis.DESCENDANT_OR_SELF:
        # Only the self part can hold at an attribute node.
        self_head = Step(Axis.SELF, head.node_test, head.qualifiers)
        folded = PathQualifier(rel(self_head, *inner_path.steps[1:]))
        return _replace_qualifier_application(
            path, step_index, qual_index, [folded], _ATTRIBUTE_LEMMA,
            "descendant-or-self from an attribute reduces to self")
    if head.axis is Axis.SELF:
        # Hoist self-headed qualifier paths onto the carrier (generic).
        parts: List[Qualifier] = [PathQualifier(rel(head.without_qualifiers()))]
        parts.extend(head.qualifiers)
        if len(inner_path.steps) > 1:
            parts.append(PathQualifier(rel(*inner_path.steps[1:])))
        combined: Qualifier = parts[0]
        for part in parts[1:]:
            combined = AndExpr(left=combined, right=part)
        return _replace_qualifier_application(
            path, step_index, qual_index, [combined],
            "Lemma (complex qualifiers)", "self-headed qualifier hoisted")

    assert head.is_reverse
    if len(inner_path.steps) > 1:
        # Lemma 3.1.5 inside the qualifier: [Lr/rest] ≡ [Lr[rest]].
        folded_head = head.add_qualifiers(
            PathQualifier(rel(*inner_path.steps[1:])))
        return _replace_qualifier_application(
            path, step_index, qual_index, [PathQualifier(rel(folded_head))],
            "Lemma 3.1.5", "trailing steps folded into the reverse step")

    axis = head.axis
    m, qm = head.node_test, head.qualifiers
    if axis in (Axis.PRECEDING, Axis.PRECEDING_SIBLING):
        return RuleApplication(
            Bottom(), _ATTRIBUTE_LEMMA,
            note=f"attribute nodes have no {axis.xpath_name} nodes")
    if axis is Axis.ANCESTOR_OR_SELF:
        decomposed = OrExpr(
            left=PathQualifier(rel(Step(Axis.ANCESTOR, m, qm))),
            right=PathQualifier(rel(Step(Axis.SELF, m, qm))))
        return _replace_qualifier_application(
            path, step_index, qual_index, [decomposed], _ATTRIBUTE_LEMMA,
            "ancestor-or-self decomposed at the attribute node")

    # parent / ancestor: the test moves to the owner element (the carrier's
    # context), as a self/ancestor-or-self qualifier on the prefix.
    if axis is Axis.PARENT:
        hoisted: Qualifier = PathQualifier(rel(Step(Axis.SELF, m, qm)))
        note = "the parent of an attribute is its owner element"
    else:
        assert axis is Axis.ANCESTOR
        hoisted = PathQualifier(rel(Step(Axis.ANCESTOR_OR_SELF, m, qm)))
        note = "ancestors of an attribute are the owner's ancestor-or-self"
    prefix = path.steps[:step_index]
    rest = path.steps[step_index + 1:]
    new_carrier = replace_qualifier(carrier, qual_index, [])
    anchored = _with_qualified_prefix(path, prefix, hoisted)
    if anchored is None:
        return RuleApplication(
            Bottom(), _ATTRIBUTE_LEMMA,
            note="the document root carries no attributes")
    result = LocationPath(absolute=path.absolute,
                          steps=anchored + (new_carrier,) + rest)
    return RuleApplication(result, _ATTRIBUTE_LEMMA, note)


# ---------------------------------------------------------------------------
# Case B: the first reverse step lies inside a qualifier
# ---------------------------------------------------------------------------

def _handle_qualifier(path: LocationPath, step_index: int, qual_index: int,
                      ruleset: RuleSetBase) -> RuleApplication:
    carrier = path.steps[step_index]
    qual = carrier.qualifiers[qual_index]

    if carrier.axis is Axis.ATTRIBUTE:
        return _handle_attribute_carrier_qualifier(path, step_index,
                                                   qual_index, qual, ruleset)

    if isinstance(qual, PathQualifier):
        return _handle_path_qualifier(path, step_index, qual_index, qual, ruleset)
    if isinstance(qual, AndExpr):
        return _handle_and(path, step_index, qual_index, qual, ruleset)
    if isinstance(qual, OrExpr):
        return _handle_or(path, step_index, qual_index, qual, ruleset)
    if isinstance(qual, Comparison):
        new_qual, rule, note = _rewrite_comparison(qual, ruleset)
        return _replace_qualifier_application(path, step_index, qual_index,
                                              [new_qual], rule, note)
    raise RewriteError(f"not a qualifier: {qual!r}")


def _handle_path_qualifier(path: LocationPath, step_index: int, qual_index: int,
                           qual: PathQualifier,
                           ruleset: RuleSetBase) -> RuleApplication:
    carrier = path.steps[step_index]
    inner_path = qual.path

    if isinstance(inner_path, Union):
        # [u1 | u2 | ...]  ≡  [u1 or u2 or ...]; exposes each member as its
        # own path qualifier so reverse-headed members can be rewritten.
        members = list(iter_union_members(inner_path))
        new_qual: Qualifier = PathQualifier(members[0])
        for member in members[1:]:
            new_qual = OrExpr(left=new_qual, right=PathQualifier(member))
        return _replace_qualifier_application(
            path, step_index, qual_index, [new_qual],
            "Lemma (complex qualifiers)", "union qualifier turned into 'or'")

    if isinstance(inner_path, Bottom):  # pragma: no cover - has no reverse step
        raise RewriteError("⊥ qualifier contains no reverse step")

    assert isinstance(inner_path, LocationPath)

    if inner_path.absolute:
        inner = _rewrite_expr(inner_path, ruleset)
        if inner is None:  # pragma: no cover - caller checked for reverse steps
            raise RewriteError("expected a reverse step inside the qualifier")
        return _replace_qualifier_application(
            path, step_index, qual_index, [PathQualifier(inner.result)],
            inner.rule, inner.note)

    head = inner_path.steps[0]

    if ruleset.requires_carrier_exposure and head.axis is Axis.SELF:
        # Self-headed qualifier paths are hoisted onto the carrier:
        # [self::t[q1]...[qk]/rest] ≡ [self::t] and q1 and ... and [rest].
        parts: List[Qualifier] = [PathQualifier(rel(head.without_qualifiers()))]
        parts.extend(head.qualifiers)
        if len(inner_path.steps) > 1:
            parts.append(PathQualifier(rel(*inner_path.steps[1:])))
        combined: Qualifier = parts[0]
        for part in parts[1:]:
            combined = AndExpr(left=combined, right=part)
        return _replace_qualifier_application(
            path, step_index, qual_index, [combined],
            "Lemma (complex qualifiers)", "self-headed qualifier hoisted")

    if head.is_reverse:
        if ruleset.requires_or_self_decomposition and head.axis is Axis.ANCESTOR_OR_SELF:
            decomposed = _decompose_or_self_step(inner_path, 0, "Lemma 3.1.6")
            return _replace_qualifier_application(
                path, step_index, qual_index, [PathQualifier(decomposed.result)],
                decomposed.rule, decomposed.note)

        if not ruleset.requires_carrier_exposure:
            new_qual, rule, note = ruleset.local_qualifier_rule(inner_path)
            return _replace_qualifier_application(
                path, step_index, qual_index, [new_qual], rule, note)

        # RuleSet2 from here on: the rule mentions the carrier step.
        if len(inner_path.steps) > 1:
            # Lemma 3.1.5 inside the qualifier: [Lr/rest] ≡ [Lr[rest]].
            folded = head.add_qualifiers(PathQualifier(rel(*inner_path.steps[1:])))
            return _replace_qualifier_application(
                path, step_index, qual_index, [PathQualifier(rel(folded))],
                "Lemma 3.1.5", "trailing steps folded into the reverse step")

        if ruleset.requires_or_self_decomposition and carrier.axis in (
                Axis.DESCENDANT_OR_SELF, Axis.ANCESTOR_OR_SELF):
            return _decompose_or_self_step(path, step_index, "Lemma 3.1.7")

        if (path.absolute
                and carrier.axis is Axis.SELF
                and head.axis in _EMPTY_AT_ROOT
                and all(step.axis is Axis.SELF for step in path.steps[:step_index + 1])):
            return RuleApplication(
                Bottom(), "Lemma 3.2",
                note="reverse qualifier on a self-only prefix is false at the root",
            )

        return ruleset.qualifier_head_rule(path, step_index, qual_index)

    # The qualifier path starts with a forward step; recurse into it (the
    # congruences of Lemma 3.1.2/3.1.3 justify rewriting in place).
    inner = _rewrite_location_path(inner_path, ruleset)
    if inner is None:  # pragma: no cover - caller checked for reverse steps
        raise RewriteError("expected a reverse step inside the qualifier")
    return _replace_qualifier_application(
        path, step_index, qual_index, [PathQualifier(inner.result)],
        inner.rule, inner.note)


def _handle_and(path: LocationPath, step_index: int, qual_index: int,
                qual: AndExpr, ruleset: RuleSetBase) -> RuleApplication:
    if ruleset.requires_carrier_exposure:
        # [q1 and q2] ≡ [q1][q2] on the same step.
        return _replace_qualifier_application(
            path, step_index, qual_index, [qual.left, qual.right],
            "Lemma (complex qualifiers)", "'and' qualifier split in two")
    rewritten, rule, note = _descend_boolean(qual, ruleset)
    return _replace_qualifier_application(path, step_index, qual_index,
                                          [rewritten], rule, note)


def _handle_or(path: LocationPath, step_index: int, qual_index: int,
               qual: OrExpr, ruleset: RuleSetBase) -> RuleApplication:
    if ruleset.requires_carrier_exposure:
        # p/F::n[q1 or q2]/rest ≡ p/F::n[q1]/rest | p/F::n[q2]/rest.
        carrier = path.steps[step_index]
        left_path = replace_step(
            path, step_index, [replace_qualifier(carrier, qual_index, [qual.left])])
        right_path = replace_step(
            path, step_index, [replace_qualifier(carrier, qual_index, [qual.right])])
        return RuleApplication(
            union_of(left_path, right_path), "Lemma (complex qualifiers)",
            note="'or' qualifier split into a union")
    rewritten, rule, note = _descend_boolean(qual, ruleset)
    return _replace_qualifier_application(path, step_index, qual_index,
                                          [rewritten], rule, note)


def _descend_boolean(qual: Qualifier,
                     ruleset: RuleSetBase) -> Tuple[Qualifier, str, str]:
    """Rewrite the first reverse step inside a boolean qualifier (RuleSet1).

    RuleSet1's Rule (1) and the comparison lemmas are *local* qualifier
    equivalences, so the driver can rewrite them in place underneath
    ``and``/``or`` operators without restructuring the carrier step.
    """
    if isinstance(qual, PathQualifier):
        inner_path = qual.path
        if isinstance(inner_path, Union):
            members = list(iter_union_members(inner_path))
            combined: Qualifier = PathQualifier(members[0])
            for member in members[1:]:
                combined = OrExpr(left=combined, right=PathQualifier(member))
            return combined, "Lemma (complex qualifiers)", "union qualifier turned into 'or'"
        assert isinstance(inner_path, LocationPath)
        if inner_path.absolute:
            inner = _rewrite_expr(inner_path, ruleset)
            if inner is None:  # pragma: no cover
                raise RewriteError("expected a reverse step inside the qualifier")
            return PathQualifier(inner.result), inner.rule, inner.note
        if inner_path.steps[0].is_reverse:
            return ruleset.local_qualifier_rule(inner_path)
        inner = _rewrite_location_path(inner_path, ruleset)
        if inner is None:  # pragma: no cover
            raise RewriteError("expected a reverse step inside the qualifier")
        return PathQualifier(inner.result), inner.rule, inner.note
    if isinstance(qual, (AndExpr, OrExpr)):
        constructor = AndExpr if isinstance(qual, AndExpr) else OrExpr
        if _qualifier_has_reverse(qual.left):
            left, rule, note = _descend_boolean(qual.left, ruleset)
            return constructor(left=left, right=qual.right), rule, note
        right, rule, note = _descend_boolean(qual.right, ruleset)
        return constructor(left=qual.left, right=right), rule, note
    if isinstance(qual, Comparison):
        return _rewrite_comparison(qual, ruleset)
    raise RewriteError(f"not a qualifier: {qual!r}")


# ---------------------------------------------------------------------------
# Comparisons (joins)
# ---------------------------------------------------------------------------

def _rewrite_comparison(qual: Comparison,
                        ruleset: RuleSetBase) -> Tuple[Qualifier, str, str]:
    left_abs = analysis.is_absolute(qual.left)
    right_abs = analysis.is_absolute(qual.right)
    left_rev = analysis.has_reverse_steps(qual.left)
    right_rev = analysis.has_reverse_steps(qual.right)

    if not left_abs and not right_abs and (left_rev or right_rev):
        raise RRJoinError(
            "qualifier contains an RR join (both operands relative, one with a "
            "reverse step); rare cannot rewrite it — see "
            "repro.rewrite.variables for the variable-based extension"
        )

    # A relative union operand with reverse steps: distribute the join over
    # the union members first so Lemma 3.1.8 applies to plain paths.
    for attr, operand, is_abs, has_rev in (
            ("left", qual.left, left_abs, left_rev),
            ("right", qual.right, right_abs, right_rev)):
        if isinstance(operand, Union) and not is_abs and has_rev:
            members = list(iter_union_members(operand))
            comparisons = [
                Comparison(left=member, op=qual.op, right=qual.right)
                if attr == "left"
                else Comparison(left=qual.left, op=qual.op, right=member)
                for member in members
            ]
            combined: Qualifier = comparisons[0]
            for comparison in comparisons[1:]:
                combined = OrExpr(left=combined, right=comparison)
            return (combined, "Lemma (complex qualifiers)",
                    "join distributed over a union operand")

    if left_abs and left_rev:
        inner = _rewrite_expr(qual.left, ruleset)
        assert inner is not None
        return (Comparison(left=inner.result, op=qual.op, right=qual.right),
                inner.rule, inner.note)
    if right_abs and right_rev:
        inner = _rewrite_expr(qual.right, ruleset)
        assert inner is not None
        return (Comparison(left=qual.left, op=qual.op, right=inner.result),
                inner.rule, inner.note)

    # Exactly one operand is relative and carries the reverse step, the other
    # is absolute: Lemma 3.1.8 pushes the join inside the relative operand.
    relative_operand, absolute_operand = (
        (qual.left, qual.right) if not left_abs else (qual.right, qual.left))
    assert isinstance(relative_operand, LocationPath)
    inner_join = Comparison(left=rel(self_node()), op=qual.op, right=absolute_operand)
    wrapped = LocationPath(
        absolute=False,
        steps=relative_operand.steps[:-1]
        + (relative_operand.steps[-1].add_qualifiers(inner_join),),
    )
    return (PathQualifier(wrapped), "Lemma 3.1.8",
            "join with an absolute operand pushed into the relative path")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _replace_qualifier_application(path: LocationPath, step_index: int,
                                   qual_index: int, replacements, rule: str,
                                   note: str = "") -> RuleApplication:
    carrier = path.steps[step_index]
    new_step = replace_qualifier(carrier, qual_index, replacements)
    new_path = replace_step(path, step_index, [new_step])
    return RuleApplication(new_path, rule, note)


def _qualifier_has_reverse(qual: Qualifier) -> bool:
    if isinstance(qual, PathQualifier):
        return analysis.has_reverse_steps(qual.path)
    if isinstance(qual, (AndExpr, OrExpr)):
        return _qualifier_has_reverse(qual.left) or _qualifier_has_reverse(qual.right)
    if isinstance(qual, Comparison):
        return (analysis.has_reverse_steps(qual.left)
                or analysis.has_reverse_steps(qual.right))
    raise RewriteError(f"not a qualifier: {qual!r}")
