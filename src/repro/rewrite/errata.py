"""Errata of the published rule set, with machine-checkable counterexamples.

While reproducing Propositions 3.2–3.5 we found four equivalences whose
right-hand side, as printed in the EDBT 2002 paper, is not equivalent to the
left-hand side.  Our implementation (see :mod:`repro.rewrite.ruleset2`) uses
corrected right-hand sides; this module records the *literal* printed forms
together with small documents on which they disagree with the left-hand
side, so the deviation is documented and verifiable (``tests/test_errata.py``).

The four errata:

``Rule (30)``
    printed: ``p/self::n[preceding-sibling::m] ≡ p[self::n]/following-sibling::m``.
    The right-hand side selects sibling nodes, the left-hand side selects the
    context node itself.  Corrected to the push-left form
    ``p[preceding-sibling::m]/self::n``.

``Rule (32)``
    the third union term is typographically garbled
    (``p/ancestor-or-self::/following-sibling::n``); reconstructed as
    ``p/ancestor-or-self::m/following-sibling::n`` by analogy with Rule (27).

``Rules (33)/(38)``
    printed second term anchors the branch point at ``child::*`` of the
    context node, missing ``preceding`` nodes whose branch point lies deeper
    in the context's subtree.  Corrected to ``descendant::*``.

``Rules (37)/(42)``
    the printed union misses ``preceding`` nodes that are ancestors of the
    context node; the terms ``p/ancestor::m[following::n]`` (37) and
    ``p/ancestor::m/following::n`` (42) are added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.xmlmodel.document import Document, element
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_xpath


@dataclass(frozen=True)
class Erratum:
    """A printed equivalence that fails, with a witness document."""

    rule: str
    description: str
    left: PathExpr             # the original (reverse-axis) path
    printed_right: PathExpr    # the right-hand side as printed in the paper
    corrected_right: PathExpr  # the right-hand side our implementation uses
    witness: Document          # document on which printed_right differs from left


def _doc_deep_preceding() -> Document:
    """Witness for Rules (33)/(38): the preceding node shares a non-root branch point."""
    return Document.from_tree(
        element("r", element("c", element("m"), element("n")))
    )


def _doc_ancestor_preceding() -> Document:
    """Witness for Rules (37)/(42): the preceding node is an ancestor of the context."""
    return Document.from_tree(
        element("r", element("m", element("x")), element("n"))
    )


def _doc_siblings() -> Document:
    """Witness for Rule (30): the context has both preceding and following siblings."""
    return Document.from_tree(
        element("r", element("m"), element("n"), element("m"))
    )


def paper_errata() -> List[Erratum]:
    """The four errata, each with the literal printed right-hand side."""
    return [
        Erratum(
            rule="Rule (30)",
            description="printed right-hand side selects siblings instead of the context node",
            left=parse_xpath("/descendant::*/self::n[preceding-sibling::m]"),
            printed_right=parse_xpath("/descendant::*[self::n]/following-sibling::m"),
            corrected_right=parse_xpath("/descendant::*[preceding-sibling::m]/self::n"),
            witness=_doc_siblings(),
        ),
        Erratum(
            rule="Rule (33)",
            description="child::* branch point misses deeper preceding matches",
            left=parse_xpath("/child::r/descendant::n/preceding::m"),
            printed_right=parse_xpath(
                "/child::r[descendant::n]/preceding::m"
                " | /child::r/child::*[following-sibling::*/descendant-or-self::n]"
                "/descendant-or-self::m"),
            corrected_right=parse_xpath(
                "/child::r[descendant::n]/preceding::m"
                " | /child::r/descendant::*[following-sibling::*/descendant-or-self::n]"
                "/descendant-or-self::m"),
            witness=_doc_deep_preceding(),
        ),
        Erratum(
            rule="Rule (38)",
            description="child::* branch point misses deeper preceding matches (qualifier form)",
            left=parse_xpath("/child::r/descendant::n[preceding::m]"),
            printed_right=parse_xpath(
                "/child::r[preceding::m]/descendant::n"
                " | /child::r/child::*[descendant-or-self::m]"
                "/following-sibling::*/descendant-or-self::n"),
            corrected_right=parse_xpath(
                "/child::r[preceding::m]/descendant::n"
                " | /child::r/descendant::*[descendant-or-self::m]"
                "/following-sibling::*/descendant-or-self::n"),
            witness=_doc_deep_preceding(),
        ),
        Erratum(
            rule="Rule (37)",
            description="missing term for preceding nodes that are ancestors of the context",
            left=parse_xpath("/descendant::x/following::n/preceding::m"),
            printed_right=parse_xpath(
                "/descendant::x[following::n]/preceding::m"
                " | /descendant::x/following::m[following::n]"
                " | /descendant::x[following::n]/descendant-or-self::m"),
            corrected_right=parse_xpath(
                "/descendant::x[following::n]/preceding::m"
                " | /descendant::x/following::m[following::n]"
                " | /descendant::x[following::n]/descendant-or-self::m"
                " | /descendant::x/ancestor::m[following::n]"),
            witness=_doc_ancestor_preceding(),
        ),
        Erratum(
            rule="Rule (42)",
            description="missing term for preceding nodes that are ancestors of the context (qualifier form)",
            left=parse_xpath("/descendant::x/following::n[preceding::m]"),
            printed_right=parse_xpath(
                "/descendant::x[preceding::m]/following::n"
                " | /descendant::x/following::m/following::n"
                " | /descendant::x[descendant-or-self::m]/following::n"),
            corrected_right=parse_xpath(
                "/descendant::x[preceding::m]/following::n"
                " | /descendant::x/following::m/following::n"
                " | /descendant::x[descendant-or-self::m]/following::n"
                " | /descendant::x/ancestor::m/following::n"),
            witness=_doc_ancestor_preceding(),
        ),
    ]
