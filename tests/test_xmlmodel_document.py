"""Unit tests for the Document container (repro.xmlmodel.document)."""

import pytest

from repro.xmlmodel.document import Document, element, text


class TestConstruction:
    def test_requires_root_kind(self):
        with pytest.raises(ValueError):
            Document(element("a"))

    def test_from_tree_single_element(self):
        doc = Document.from_tree(element("a", element("b")))
        assert len(doc) == 3
        assert doc.document_element.tag == "a"

    def test_from_tree_accepts_strings_as_text(self):
        doc = Document.from_tree(element("a", "hello"))
        assert doc.node_at(2).is_text
        assert doc.node_at(2).value == "hello"

    def test_from_tree_multiple_top_level_children(self):
        doc = Document.from_tree(element("a"), element("b"))
        assert [child.tag for child in doc.root.children] == ["a", "b"]

    def test_empty_document_has_no_document_element(self):
        doc = Document.from_tree()
        assert doc.document_element is None
        assert len(doc) == 1


class TestAccess:
    def test_iteration_yields_document_order(self):
        doc = Document.from_tree(element("a", element("b"), element("c")))
        assert [node.position for node in doc] == [0, 1, 2, 3]

    def test_elements_filter_by_tag(self):
        doc = Document.from_tree(element("a", element("b"), element("b"), element("c")))
        assert len(list(doc.elements("b"))) == 2
        assert len(list(doc.elements())) == 4

    def test_node_at(self):
        doc = Document.from_tree(element("a", element("b")))
        assert doc.node_at(2).tag == "b"

    def test_sorted_in_document_order_deduplicates(self):
        doc = Document.from_tree(element("a", element("b"), element("c")))
        b, c = doc.node_at(2), doc.node_at(3)
        assert doc.sorted_in_document_order([c, b, c]) == [b, c]


class TestStats:
    def test_stats_counts(self):
        doc = Document.from_tree(
            element("a", element("b", text("x")), text("y"))
        )
        stats = doc.stats()
        assert stats["nodes"] == 5
        assert stats["elements"] == 2
        assert stats["texts"] == 2
        assert stats["max_depth"] == 3

    def test_repr_mentions_document_element(self):
        doc = Document.from_tree(element("journal"))
        assert "journal" in repr(doc)
