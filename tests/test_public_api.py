"""Tests of the top-level package surface (datasets, errors, __init__ exports)."""

import pytest

import repro
from repro import (
    FIGURE1_XML,
    RRJoinError,
    ReproError,
    figure1_document,
    parse_xml,
    two_journal_document,
)
from repro.errors import (
    EvaluationError,
    ReverseAxisStreamingError,
    RewriteError,
    RewriteLimitExceeded,
    UnsupportedPathError,
    XMLSyntaxError,
    XPathSyntaxError,
)


class TestDatasets:
    def test_figure1_document_matches_the_xml_listing(self):
        built = figure1_document()
        parsed = parse_xml(FIGURE1_XML)
        assert [(n.kind, n.tag, n.value) for n in built] == \
               [(n.kind, n.tag, n.value) for n in parsed]

    def test_figure1_shape(self):
        doc = figure1_document()
        assert doc.document_element.tag == "journal"
        assert len(doc) == 12
        assert [n.tag for n in doc.elements()] == \
            ["journal", "title", "editor", "authors", "name", "name", "price"]

    def test_two_journal_document(self):
        doc = two_journal_document()
        journals = list(doc.elements("journal"))
        assert len(journals) == 2
        titles = list(doc.elements("title"))
        assert len(titles) == 1  # the second journal has no title


class TestErrorsHierarchy:
    @pytest.mark.parametrize("exception_type", [
        XMLSyntaxError, XPathSyntaxError, EvaluationError, RewriteError,
        UnsupportedPathError, RRJoinError, RewriteLimitExceeded,
        ReverseAxisStreamingError,
    ])
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_rr_join_error_is_an_unsupported_path_error(self):
        assert issubclass(RRJoinError, UnsupportedPathError)

    def test_xml_error_carries_position(self):
        error = XMLSyntaxError("broken", position=12)
        assert error.position == 12
        assert "12" in str(error)

    def test_xpath_error_renders_pointer(self):
        error = XPathSyntaxError("unexpected", position=3, expression="/a/b/c")
        assert "/a/b/c" in str(error)
        assert "^" in str(error)


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_from_the_docstring(self):
        path = repro.parse_xpath("/descendant::price/preceding::name")
        forward = repro.remove_reverse_axes(path, ruleset="ruleset2")
        assert repro.to_string(forward) == "/descendant::name[following::price]"
        document = repro.journal_document(journals=3)
        result = repro.stream_evaluate(forward, repro.document_events(document))
        assert result.stats.memory_units > 0
        assert len(result) == len(repro.evaluate(path, document))
