"""Unit tests of the multi-subscription engine (SubscriptionIndex/MultiMatcher)."""

import pytest

from repro.datasets import figure1_document
from repro.errors import StreamingError
from repro.streaming import (
    SubscriptionIndex,
    stream_evaluate,
    stream_matches,
)
from repro.streaming.matcher import StreamingMatcher
from repro.xmlmodel.builder import document_events
from repro.xpath import analysis
from repro.xpath.cache import QueryCache, compile_query
from repro.xpath.parser import parse_xpath

OVERLAPPING = {
    "names": "/descendant::journal/descendant::name",
    "titles": "/descendant::journal/descendant::title",
    "editors": "/descendant::journal/child::editor",
    "qualified": "/descendant::journal/descendant::name[child::text()]",
}


@pytest.fixture
def events(catalogue):
    return list(document_events(catalogue))


class TestSubscriptionIndex:
    def test_per_subscription_results_match_independent_runs(self, events,
                                                             backend):
        index = SubscriptionIndex(OVERLAPPING)
        result = index.evaluate(events, backend=backend)
        for key, query in OVERLAPPING.items():
            independent = stream_evaluate(compile_query(query), events,
                                          backend=backend)
            assert result[key].node_ids == independent.node_ids
            assert result[key].matched == independent.matched
        assert result.stats.results == sum(len(r.node_ids) for r in result)

    def test_reverse_axes_are_rewritten_on_add(self, events, backend):
        index = SubscriptionIndex()
        subscription = index.add("/descendant::price/preceding::name",
                                 key="pricing")
        assert not analysis.has_reverse_steps(subscription.path)
        result = index.evaluate(events, backend=backend)
        independent = stream_evaluate(subscription.path, events,
                                      backend=backend)
        assert result["pricing"].node_ids == independent.node_ids

    def test_shared_prefixes_create_fewer_expectations(self, events):
        # Expectation-engine specific: the DFA backend spawns (almost) no
        # expectations at all for these spines.
        index = SubscriptionIndex(OVERLAPPING)
        shared = index.evaluate(
            events, backend="expectations").stats.expectations_created
        independent = 0
        for subscription in index.subscriptions:
            matcher = StreamingMatcher(subscription.path,
                                       backend="expectations")
            matcher.process(events)
            independent += matcher.stats.expectations_created
        assert shared < independent

    def test_duplicate_queries_share_all_state(self, events, backend):
        index = SubscriptionIndex()
        for subscriber in ("alice", "bob", "carol"):
            index.add("/descendant::journal/descendant::name", key=subscriber)
        result = index.evaluate(events, backend=backend)
        assert (result["alice"].node_ids == result["bob"].node_ids
                == result["carol"].node_ids != [])
        # Three identical subscriptions walk one trie chain (or one shared
        # automaton spine), so the engine spawns no more expectations than a
        # single matcher would.
        single = StreamingMatcher(index.subscriptions[0].path,
                                  backend=backend)
        single.process(events)
        assert (result.stats.expectations_created
                == single.stats.expectations_created)

    def test_matches_only_verdicts(self, events, backend):
        queries = dict(OVERLAPPING, missing="/descendant::nosuchtag")
        index = SubscriptionIndex(queries)
        verdicts = index.evaluate(events, matches_only=True, backend=backend)
        for key, query in queries.items():
            assert verdicts[key].matched == stream_matches(
                compile_query(query), events, backend=backend)
            assert verdicts[key].node_ids == []
        assert "missing" not in verdicts.matching_keys

    def test_matching_routes_by_key(self, events, backend):
        index = SubscriptionIndex({"hit": "/descendant::name",
                                   "miss": "/descendant::nosuchtag"})
        assert index.matching(events, backend=backend) == ["hit"]

    def test_root_subscription_selects_the_root(self, events, backend):
        index = SubscriptionIndex({"root": "/"})
        result = index.evaluate(events, backend=backend)
        assert result["root"].node_ids == [0]
        assert result["root"].matched

    def test_one_index_serves_many_documents(self, events, backend):
        index = SubscriptionIndex(OVERLAPPING)
        first = index.evaluate(events, backend=backend)
        second = index.evaluate(events, backend=backend)
        for key in OVERLAPPING:
            assert first[key].node_ids == second[key].node_ids

    def test_empty_index(self, events, backend):
        index = SubscriptionIndex()
        result = index.evaluate(events, backend=backend)
        assert len(result) == 0
        assert result.matching_keys == []

    def test_add_accepts_parsed_asts(self, events, backend):
        index = SubscriptionIndex()
        index.add(parse_xpath("/descendant::name"), key="ast")
        assert index.evaluate(events, backend=backend)["ast"].matched

    def test_duplicate_key_rejected(self):
        index = SubscriptionIndex()
        index.add("/descendant::name", key="k")
        with pytest.raises(ValueError, match="duplicate"):
            index.add("/descendant::title", key="k")

    def test_relative_subscription_rejected(self):
        index = SubscriptionIndex()
        with pytest.raises(Exception):
            index.add("child::name")

    def test_results_before_end_of_stream(self, events, backend):
        matcher = SubscriptionIndex(OVERLAPPING).matcher(backend=backend)
        assert matcher.backend == backend
        matcher.feed(events[0])
        with pytest.raises(StreamingError):
            matcher.results()

    def test_unknown_result_key(self, events):
        result = SubscriptionIndex({"a": "/descendant::name"}).evaluate(events)
        with pytest.raises(KeyError):
            result["nope"]

    def test_sharing_summary(self):
        index = SubscriptionIndex(OVERLAPPING)
        summary = index.sharing_summary()
        assert summary["paths"] == len(OVERLAPPING)
        assert summary["trie_nodes"] == summary["trie_nodes_built"]
        assert summary["trie_nodes"] < summary["spine_steps"]
        assert summary["shared_steps"] > 0

    def test_absolute_subpaths_shared_across_subscriptions(self, backend):
        # Both subscriptions mention the same absolute sub-path in a join;
        # the engine matches it once from the root.
        doc = figure1_document()
        events = list(document_events(doc))
        queries = {
            "a": "//title[self::node() = /descendant::title]",
            "b": "//name[self::node() = /descendant::title]",
        }
        index = SubscriptionIndex(queries)
        result = index.evaluate(events, backend=backend)
        for key, query in queries.items():
            independent = stream_evaluate(compile_query(query), events,
                                          backend=backend)
            assert result[key].node_ids == independent.node_ids

    def test_events_counted_once(self, events, backend):
        index = SubscriptionIndex(OVERLAPPING)
        stats = index.evaluate(events, backend=backend).stats
        assert stats.events == len(events)


class TestIndexedDispatch:
    def test_linear_scan_reference_agrees(self, events, backend):
        index = SubscriptionIndex(OVERLAPPING)
        indexed = index.evaluate(events, backend=backend)
        linear = index.evaluate(events, indexed=False, backend=backend)
        for key in OVERLAPPING:
            assert indexed[key].node_ids == linear[key].node_ids
            assert indexed[key].matched == linear[key].matched

    def test_index_checks_fewer_expectations(self, events):
        index = SubscriptionIndex(OVERLAPPING)
        stats = index.evaluate(events, backend="expectations").stats
        assert 0 < stats.expectations_checked < stats.linear_scan_checks

    def test_satisfied_subscriptions_stop_spawning(self, events):
        # Verdict-only mode retires a trie branch the moment the last
        # subscription below it is satisfied: later journals must not spawn
        # new expectations for it.
        index = SubscriptionIndex(
            {"arts": "/descendant::journal/child::article"})
        full = index.matcher(backend="expectations")
        full.process(events)
        verdicts = index.matcher(matches_only=True, backend="expectations")
        result = verdicts.process(events)
        assert result["arts"].matched
        assert (verdicts.stats.expectations_created
                < full.stats.expectations_created)

    def test_matches_only_agrees_with_linear_reference(self, events, backend):
        queries = dict(OVERLAPPING, missing="/descendant::nosuchtag")
        index = SubscriptionIndex(queries)
        indexed = index.evaluate(events, matches_only=True, backend=backend)
        linear = index.evaluate(events, matches_only=True, indexed=False,
                                backend=backend)
        for key in queries:
            assert indexed[key].matched == linear[key].matched


class TestQueryCacheIntegration:
    def test_repeated_texts_compile_once(self):
        cache = QueryCache()
        index = SubscriptionIndex(cache=cache)
        for subscriber in range(5):
            index.add("/descendant::price/preceding::name", key=subscriber)
        info = cache.info()
        assert info.misses == 1
        assert info.hits == 4
