"""Tests of the push-mode document broker (repro.streaming.broker)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.streaming import DocumentBroker, SubscriptionIndex
from repro.streaming.broker import DocumentRecord
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import journal_document
from repro.xmlmodel.parser import iter_events
from repro.xmlmodel.serialize import to_xml

SUBSCRIPTIONS = {
    "names": "/descendant::journal/descendant::name",
    "editors": "/descendant::editor[parent::journal]",
    "pricing": "/descendant::price/preceding::name",
    "joined": "//title[self::node() = /descendant::title]",
    "missing": "/descendant::nosuchtag",
}


def _documents():
    specs = [
        dict(journals=1, articles_per_journal=1, authors_per_article=1, seed=1),
        dict(journals=2, articles_per_journal=2, authors_per_article=1, seed=2),
        dict(journals=3, articles_per_journal=1, authors_per_article=2,
             with_price=False, seed=3),
        dict(journals=1, articles_per_journal=3, authors_per_article=2, seed=4),
    ]
    return {f"doc-{index}": journal_document(**spec)
            for index, spec in enumerate(specs)}


def _chunked(text, size):
    return [text[start:start + size] for start in range(0, len(text), size)]


class TestDifferential:
    """broker.submit == a fresh SubscriptionIndex.evaluate per document."""

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_results_match_fresh_evaluate_per_document(self, chunk_size,
                                                      backend):
        broker = DocumentBroker(SUBSCRIPTIONS, backend=backend)
        index = SubscriptionIndex(SUBSCRIPTIONS)
        for name, document in _documents().items():
            text = to_xml(document, indent=0)
            result = broker.submit(name, _chunked(text, chunk_size))
            fresh = index.evaluate(list(iter_events(text)), backend=backend)
            for key in SUBSCRIPTIONS:
                assert result[key].node_ids == fresh[key].node_ids, (name, key)
                assert result[key].matched == fresh[key].matched, (name, key)

    def test_verdict_mode_matches_fresh_evaluate(self, backend):
        broker = DocumentBroker(SUBSCRIPTIONS, matches_only=True,
                                backend=backend)
        index = SubscriptionIndex(SUBSCRIPTIONS)
        for name, document in _documents().items():
            text = to_xml(document, indent=0)
            result = broker.submit(name, _chunked(text, 32))
            fresh = index.evaluate(list(iter_events(text)), matches_only=True,
                                   backend=backend)
            for key in SUBSCRIPTIONS:
                assert result[key].matched == fresh[key].matched, (name, key)

    def test_bytes_chunks(self):
        broker = DocumentBroker(SUBSCRIPTIONS)
        index = SubscriptionIndex(SUBSCRIPTIONS)
        document = journal_document(journals=2, articles_per_journal=2,
                                    authors_per_article=2, seed=9)
        text = to_xml(document, indent=0)
        encoded = text.encode("utf-8")
        result = broker.submit("bytes-doc",
                               [encoded[start:start + 13]
                                for start in range(0, len(encoded), 13)])
        fresh = index.evaluate(list(iter_events(text)))
        for key in SUBSCRIPTIONS:
            assert result[key].node_ids == fresh[key].node_ids

    def test_submit_events_matches_submit_text(self):
        broker = DocumentBroker(SUBSCRIPTIONS)
        document = journal_document(journals=2, articles_per_journal=1,
                                    authors_per_article=1, seed=5)
        via_events = broker.submit_events("ev", list(document_events(document)))
        via_text = broker.submit("tx", to_xml(document, indent=0))
        for key in SUBSCRIPTIONS:
            assert via_events[key].node_ids == via_text[key].node_ids

    def test_single_string_chunk_accepted(self):
        broker = DocumentBroker({"root": "/child::journal"})
        result = broker.submit("one", "<journal><title>t</title></journal>")
        assert result["root"].matched


class TestSessionReuse:
    def test_registries_empty_between_submits(self, backend):
        broker = DocumentBroker(SUBSCRIPTIONS, backend=backend)
        for name, document in _documents().items():
            broker.submit(name, _chunked(to_xml(document, indent=0), 16))
            sizes = broker.session.registry_sizes()
            assert all(size == 0 for size in sizes.values()), (name, sizes)

    def test_mid_chunk_early_termination_counts_skipped_events(self):
        # The whole document arrives as one chunk: the events tokenized
        # after every verdict settled are counted as skipped.
        broker = DocumentBroker({"j": "/descendant::journal"},
                                matches_only=True)
        big = journal_document(journals=30, articles_per_journal=3,
                               authors_per_article=2, seed=7)
        text = to_xml(big, indent=0)
        result = broker.submit("one-chunk", text)
        total = len(list(iter_events(text)))
        assert result["j"].matched
        assert result.stats.events < total
        assert result.stats.events_skipped > 0
        # The halted session never asks the tokenizer to close(), so the
        # final EndDocument is never produced — everything else is accounted
        # for as either processed or skipped.
        assert result.stats.events + result.stats.events_skipped == total - 1
        assert broker.stats.events_skipped == result.stats.events_skipped
        assert broker.history[-1].events_skipped == result.stats.events_skipped

    def test_registries_empty_after_early_termination(self, backend):
        # All subscriptions decided early: the session halts mid-document and
        # must still come back clean for the next submit.
        broker = DocumentBroker({"j": "/descendant::journal"},
                                matches_only=True, backend=backend)
        big = journal_document(journals=30, articles_per_journal=3,
                               authors_per_article=2, seed=7)
        result = broker.submit("big", _chunked(to_xml(big, indent=0), 64))
        assert result["j"].matched
        assert broker.session.halted
        assert broker.stats.chunks_skipped > 0
        assert all(size == 0
                   for size in broker.session.registry_sizes().values())
        # The next document is unaffected by the halted predecessor.
        no_match = broker.submit("empty", "<article><name>n</name></article>")
        assert not no_match["j"].matched

    def test_results_do_not_leak_across_documents(self, backend):
        broker = DocumentBroker({"names": "/descendant::name"},
                                backend=backend)
        with_names = journal_document(journals=1, articles_per_journal=1,
                                      authors_per_article=2, seed=1)
        first = broker.submit("with", to_xml(with_names, indent=0))
        assert first["names"].node_ids
        second = broker.submit("without", "<journal><title>t</title></journal>")
        assert second["names"].node_ids == []
        assert first["names"].node_ids  # earlier result object unchanged

    def test_session_is_reused_not_rebuilt(self):
        broker = DocumentBroker(SUBSCRIPTIONS)
        broker.submit("a", "<journal><name>n</name></journal>")
        session = broker.session
        broker.submit("b", "<journal><name>n</name></journal>")
        assert broker.session is session

    def test_adding_a_subscription_rebuilds_the_session(self):
        broker = DocumentBroker({"names": "/descendant::name"})
        broker.submit("a", "<journal><name>n</name></journal>")
        session = broker.session
        broker.add("/descendant::title", key="titles")
        result = broker.submit("b", "<journal><title>t</title></journal>")
        assert broker.session is not session
        assert result["titles"].matched

    def test_externally_supplied_index_cannot_be_mutated_through_broker(self):
        # A caller-supplied index may be shared with other brokers, which
        # rely on it staying immutable; add() must go through the index
        # before the brokers are built.
        index = SubscriptionIndex({"names": "/descendant::name"})
        broker = DocumentBroker(index)
        with pytest.raises(ValueError, match="externally supplied"):
            broker.add("/descendant::title", key="titles")
        with pytest.raises(ValueError, match="externally supplied"):
            broker.add_many({"titles": "/descendant::title"})
        assert len(index) == 1

    def test_malformed_document_leaves_a_working_broker(self, backend):
        broker = DocumentBroker({"names": "/descendant::name"},
                                backend=backend)
        with pytest.raises(XMLSyntaxError):
            broker.submit("bad", "<journal><name>n</name>")
        # The poisoned stream state is cleared; the next submit works.
        result = broker.submit("good", "<journal><name>n</name></journal>")
        assert result["names"].matched
        assert broker.stats.documents == 1  # the failed submit is not counted

    def test_submit_after_mid_document_error_equals_fresh_evaluate(
            self, backend):
        # Regression: a tokenizer error mid-document used to discard the
        # whole session; it must now be salvaged — and whether salvaged or
        # rebuilt, the *next* submit has to answer exactly like a fresh
        # SubscriptionIndex.evaluate, with no state leaking from the dead
        # document.
        broker = DocumentBroker(SUBSCRIPTIONS, backend=backend)
        index = SubscriptionIndex(SUBSCRIPTIONS)
        good = to_xml(journal_document(journals=2, articles_per_journal=2,
                                       authors_per_article=2, seed=6),
                      indent=0)
        broker.submit("warmup", _chunked(good, 32))
        session = broker.session
        # The malformed document dies *after* the matcher has consumed real
        # events (the error sits mid-stream, past several elements).
        bad = good[:len(good) // 2] + "<&broken"
        with pytest.raises(XMLSyntaxError):
            broker.submit("bad", _chunked(bad, 16))
        sizes = broker.session.registry_sizes()
        assert all(size == 0 for size in sizes.values()), sizes
        result = broker.submit("after-error", _chunked(good, 32))
        fresh = index.evaluate(list(iter_events(good)), backend=backend)
        for key in SUBSCRIPTIONS:
            assert result[key].node_ids == fresh[key].node_ids, key
            assert result[key].matched == fresh[key].matched, key
        # The session survived the error instead of being rebuilt.
        assert broker.session is session
        assert broker.stats.documents == 2

    def test_error_on_first_event_of_a_session(self, backend):
        # The error path also holds before the session ever finished a
        # document (nothing to salvage *from*).
        broker = DocumentBroker({"names": "/descendant::name"},
                                backend=backend)
        with pytest.raises(XMLSyntaxError):
            broker.submit("bad", "<a><b></a></b>")
        result = broker.submit("good", "<journal><name>n</name></journal>")
        assert result["names"].matched


class TestLiveChurn:
    """subscribe/unsubscribe on a running broker, between submits."""

    DOC = "<journal><name>n</name><title>t</title></journal>"

    def test_subscribe_takes_effect_next_submit(self, backend):
        broker = DocumentBroker({"names": "/descendant::name"},
                                backend=backend)
        broker.submit("a", self.DOC)
        session = broker.session
        broker.subscribe("titles", "/descendant::title")
        result = broker.submit("b", self.DOC)
        assert result["titles"].matched
        assert result["names"].matched
        # The session was extended incrementally, not rebuilt.
        assert broker.session is session

    def test_unsubscribe_stops_deliveries(self, backend):
        broker = DocumentBroker(dict(SUBSCRIPTIONS), backend=backend)
        before = broker.submit("a", self.DOC)
        assert before["names"].matched
        broker.unsubscribe("names")
        after = broker.submit("b", self.DOC)
        with pytest.raises(KeyError):
            after["names"]
        assert "names" not in after.matching_keys
        assert after["joined"].matched == before["joined"].matched

    def test_unsubscribe_unknown_key_raises(self):
        broker = DocumentBroker({"names": "/descendant::name"})
        with pytest.raises(KeyError):
            broker.unsubscribe("nope")

    def test_churn_on_shared_index_is_allowed(self, backend):
        # Unlike add(), live churn is version-checked: every broker on the
        # shared index syncs at its own next submit.
        index = SubscriptionIndex({"names": "/descendant::name"})
        first = DocumentBroker(index, backend=backend)
        second = DocumentBroker(index, backend=backend)
        first.submit("a", self.DOC)
        second.submit("a", self.DOC)
        first.subscribe("titles", "/descendant::title")
        assert second.submit("b", self.DOC)["titles"].matched
        assert first.submit("b", self.DOC)["titles"].matched

    def test_vacuum_forces_a_fresh_session(self, backend):
        broker = DocumentBroker(dict(SUBSCRIPTIONS), backend=backend)
        broker.submit("a", self.DOC)
        session = broker.session
        removed = [key for key in list(SUBSCRIPTIONS) if key != "names"]
        for key in removed:
            broker.unsubscribe(key)
        assert broker.index.churn.vacuum_runs > 0
        result = broker.submit("b", self.DOC)
        assert broker.session is not session
        assert result.matching_keys == ["names"]

    @pytest.mark.parametrize("mode", ["verdicts", "ids", "substream"])
    def test_churn_across_delivery_modes(self, backend, mode):
        from repro.streaming.delivery import SubstreamDelivery
        kwargs = {"backend": backend}
        if mode == "verdicts":
            kwargs["matches_only"] = True
        elif mode == "substream":
            kwargs["delivery"] = SubstreamDelivery()
        broker = DocumentBroker({"names": "/descendant::name"}, **kwargs)
        broker.submit("a", self.DOC)
        broker.subscribe("titles", "/descendant::title")
        broker.unsubscribe("names")
        result = broker.submit("b", self.DOC)
        assert result.matching_keys == ["titles"]
        if mode == "substream":
            assert b"<title>" in result["titles"].payload

    def test_remove_then_readd_same_key(self, backend):
        broker = DocumentBroker({"k": "/descendant::name"}, backend=backend)
        assert broker.submit("a", self.DOC)["k"].matched
        broker.unsubscribe("k")
        broker.subscribe("k", "/descendant::title")
        result = broker.submit("b", self.DOC)
        assert result["k"].matched
        assert result["k"].query == "/descendant::title"


class TestAccounting:
    def test_failed_submit_leaves_aggregates_untouched(self, backend):
        # A failed document's partial work — chunks fed, events consumed,
        # subtrees/bytes emitted — must not fold into the aggregates or the
        # history: nothing was served to anyone.
        import dataclasses

        broker = DocumentBroker(SUBSCRIPTIONS, backend=backend)
        good = to_xml(journal_document(journals=2, articles_per_journal=2,
                                       authors_per_article=2, seed=6),
                      indent=0)
        broker.submit("warmup", _chunked(good, 32))
        snapshot = dataclasses.replace(broker.stats)
        history = broker.history
        bad = good[:len(good) // 2] + "<&broken"
        with pytest.raises(XMLSyntaxError):
            broker.submit("bad", _chunked(bad, 16))
        assert broker.stats == snapshot
        assert broker.history == history

    def test_failed_substream_submit_leaves_aggregates_untouched(self):
        # Substream mode is the sharpest case: the dead document may have
        # emitted payload subtrees before the error.
        import dataclasses

        from repro.streaming.delivery import SubstreamDelivery

        broker = DocumentBroker({"names": "/descendant::name"},
                                delivery=SubstreamDelivery())
        broker.submit("warmup", "<journal><name>n</name></journal>")
        snapshot = dataclasses.replace(broker.stats)
        # The <name> subtree closes (payload emitted) before the error.
        with pytest.raises(XMLSyntaxError):
            broker.submit("bad", "<journal><name>n</name><&broken")
        assert broker.stats == snapshot
        assert broker.stats.subtrees_emitted == snapshot.subtrees_emitted

    def test_aggregate_stats_accumulate(self):
        broker = DocumentBroker(SUBSCRIPTIONS)
        total_events = 0
        for name, document in _documents().items():
            result = broker.submit(name, _chunked(to_xml(document, indent=0), 32))
            total_events += result.stats.events
        stats = broker.stats
        assert stats.documents == len(_documents())
        assert stats.events == total_events
        assert stats.deliveries >= stats.documents_matched
        assert stats.chunks > 0
        row = stats.as_row()
        assert row["documents"] == stats.documents

    def test_history_records_documents(self):
        broker = DocumentBroker({"names": "/descendant::name"},
                                history_limit=2)
        for index in range(3):
            broker.submit(f"doc-{index}", "<journal><name>n</name></journal>")
        history = broker.history
        assert len(history) == 2  # bounded
        assert history[-1] == DocumentRecord(
            document_id="doc-2", matched_keys=("names",),
            events=history[-1].events, events_skipped=0)
        assert [record.document_id for record in history] == ["doc-1", "doc-2"]
