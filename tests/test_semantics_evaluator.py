"""Unit tests for the reference evaluator (repro.semantics.evaluator)."""

import pytest

from repro.errors import EvaluationError
from repro.semantics.evaluator import evaluate, evaluate_qualifier, select_positions
from repro.xmlmodel.document import Document, element, text
from repro.xpath.parser import parse_xpath


def run(expression, document, context=None):
    return select_positions(parse_xpath(expression), document, context)


class TestBasicPaths:
    def test_root_path(self, figure1):
        assert run("/", figure1) == [0]

    def test_absolute_ignores_context(self, figure1):
        context = figure1.node_at(7)
        assert run("/descendant::name", figure1, context) == [7, 9]

    def test_relative_uses_context(self, figure1):
        authors = figure1.node_at(6)
        assert run("child::name", figure1, authors) == [7, 9]

    def test_bottom_selects_nothing(self, figure1):
        assert run("⊥", figure1) == []

    def test_union(self, figure1):
        assert run("/descendant::title | /descendant::price", figure1) == [2, 11]

    def test_duplicate_free_document_order(self, figure1):
        # Two different ways to reach names select each node once only.
        assert run("/descendant::name | /descendant::authors/child::name",
                   figure1) == [7, 9]

    def test_text_selection(self, figure1):
        assert run("/descendant::name/child::text()", figure1) == [8, 10]


class TestPaperExamples:
    def test_example_3_1(self, figure1):
        # "all names that appear before a price"
        assert run("/descendant::price/preceding::name", figure1) == [7, 9]

    def test_example_3_2(self, figure1):
        assert run("/descendant::editor[parent::journal]", figure1) == [4]

    def test_figure_3_query(self, figure1):
        assert run("/descendant::name/preceding::title[ancestor::journal]",
                   figure1) == [2]

    def test_example_3_1_variant_on_two_journals(self, two_journals):
        titles_only = run(
            "/descendant::journal[child::title]/descendant::price/preceding::name",
            two_journals)
        all_names = run("/descendant::price/preceding::name", two_journals)
        assert set(titles_only) <= set(all_names)
        assert len(titles_only) < len(all_names)


class TestQualifiers:
    def test_existence_qualifier(self, figure1):
        assert run("/descendant::journal[child::price]", figure1) == [1]
        assert run("/descendant::journal[child::nothing]", figure1) == []

    def test_and_or(self, figure1):
        assert run("/descendant::journal[child::price and child::title]", figure1) == [1]
        assert run("/descendant::journal[child::nothing or child::title]", figure1) == [1]
        assert run("/descendant::journal[child::nothing and child::title]", figure1) == []

    def test_node_identity_join(self, figure1):
        assert run("/descendant::name[following::price == /descendant::price]",
                   figure1) == [7, 9]

    def test_identity_join_false_when_disjoint(self, figure1):
        assert run("/descendant::name[following::title == /descendant::price]",
                   figure1) == []

    def test_value_join(self, figure1):
        # editor 'anna' equals one of the author names by string value.
        assert run("/descendant::editor[self::node() = /descendant::name]",
                   figure1) == [4]
        assert run("/descendant::title[self::node() = /descendant::name]",
                   figure1) == []

    def test_qualifier_on_inner_step(self, figure1):
        assert run("/descendant::authors[child::name]/child::name[following-sibling::name]",
                   figure1) == [7]

    def test_evaluate_qualifier_directly(self, figure1):
        path = parse_xpath("/descendant::journal[child::price]")
        qualifier = path.steps[0].qualifiers[0]
        assert evaluate_qualifier(qualifier, figure1, figure1.node_at(1))
        assert not evaluate_qualifier(qualifier, figure1, figure1.node_at(6))


class TestContextHandling:
    def test_context_from_another_document_rejected(self, figure1, two_journals):
        with pytest.raises(EvaluationError):
            evaluate(parse_xpath("/descendant::name"), figure1,
                     two_journals.node_at(1))

    def test_relative_path_from_leaf(self, figure1):
        leaf = figure1.node_at(8)
        assert run("following::price", figure1, leaf) == [11]

    def test_empty_intermediate_result_short_circuits(self, figure1):
        assert run("/descendant::nothing/child::name", figure1) == []


class TestMixedDocuments:
    def test_multiple_top_level_elements(self):
        doc = Document.from_tree(element("a", text("x")), element("b"))
        assert select_positions(parse_xpath("/child::b"), doc) == [3]
        assert select_positions(parse_xpath("/child::a/following-sibling::b"), doc) == [3]

    def test_deep_nesting(self):
        doc = Document.from_tree(
            element("a", element("b", element("a", element("b")))))
        assert select_positions(parse_xpath("/descendant::b[ancestor::b]"), doc) == [4]
