"""Reproduction of Figures 3 and 4: traced rare runs on the paper's query.

The query is ``/descendant::name/preceding::title[ancestor::journal]`` ("all
titles that appear before a name and are inside journals").  Figure 3 shows
the RuleSet1 run, Figure 4 the RuleSet2 run; both the applied rules and the
final outputs are checked verbatim against the paper.
"""

from repro.rewrite import rare
from repro.xpath.serializer import to_string

FIGURE_QUERY = "/descendant::name/preceding::title[ancestor::journal]"


class TestFigure3RuleSet1Trace:
    def test_final_output_matches_paper(self):
        result = rare(FIGURE_QUERY, ruleset="ruleset1", collect_trace=True)
        assert to_string(result.result) == (
            "/descendant::title"
            "[/descendant::journal/descendant::node() == self::node()]"
            "[following::name == /descendant::name]")

    def test_rule_sequence_matches_paper(self):
        # Figure 3 applies Rule (2) (step 7) and then Rule (1) (step 10).
        result = rare(FIGURE_QUERY, ruleset="ruleset1", collect_trace=True)
        assert result.trace.rules_applied() == ["Rule (2a)", "Rule (1)"]

    def test_intermediate_state_after_rule_2(self):
        result = rare(FIGURE_QUERY, ruleset="ruleset1", collect_trace=True)
        matches = [entry for entry in result.trace.entries if entry.action == "match"]
        assert matches[0].detail == (
            "/descendant::title[ancestor::journal]"
            "[following::name == /descendant::name]")

    def test_trace_describes_all_steps(self):
        result = rare(FIGURE_QUERY, ruleset="ruleset1", collect_trace=True)
        rendered = result.trace.describe()
        assert "rare run with RuleSet1" in rendered
        assert "match(U)" in rendered
        assert "input" in rendered and "output" in rendered


class TestFigure4RuleSet2Trace:
    def test_final_output_matches_paper(self):
        result = rare(FIGURE_QUERY, ruleset="ruleset2", collect_trace=True)
        assert to_string(result.result) == \
            "/descendant-or-self::journal/descendant::title[following::name]"

    def test_rule_sequence_matches_paper(self):
        # Figure 4 applies Rule (33a) (step 7) and then Rule (18a) (step 9).
        result = rare(FIGURE_QUERY, ruleset="ruleset2", collect_trace=True)
        assert result.trace.rules_applied() == ["Rule (33a)", "Rule (18a)"]

    def test_intermediate_state_after_rule_33a(self):
        result = rare(FIGURE_QUERY, ruleset="ruleset2", collect_trace=True)
        matches = [entry for entry in result.trace.entries if entry.action == "match"]
        assert matches[0].detail == \
            "/descendant::title[ancestor::journal][following::name]"

    def test_no_joins_in_output(self):
        from repro.xpath import analysis
        result = rare(FIGURE_QUERY, ruleset="ruleset2")
        assert analysis.count_joins(result.result) == 0


class TestTraceMechanics:
    def test_trace_entries_have_input_and_output(self):
        result = rare(FIGURE_QUERY, ruleset="ruleset2", collect_trace=True)
        actions = [entry.action for entry in result.trace.entries]
        assert actions[0] == "input"
        assert actions[-1] == "output"
        assert "pop" in actions and "emit" in actions

    def test_push_entries_appear_for_union_producing_rules(self):
        result = rare("/descendant::a/following::b/parent::c",
                      ruleset="ruleset2", collect_trace=True)
        actions = [entry.action for entry in result.trace.entries]
        assert "push" in actions

    def test_trace_entry_describe_variants(self):
        result = rare(FIGURE_QUERY, ruleset="ruleset1", collect_trace=True)
        described = [entry.describe() for entry in result.trace.entries]
        assert any(text.startswith("U ← pop(S)") for text in described)
        assert any(text.startswith("p′ ← p′ |") for text in described)
