"""Unit tests of the resource accounting record (repro.streaming.stats)."""

from repro.streaming.matcher import StreamingMatcher
from repro.streaming.stats import StreamStats
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.events import EndDocument, StartDocument
from repro.xpath.parser import parse_xpath


class TestStreamStats:
    def test_fresh_stats_are_zero(self):
        stats = StreamStats()
        assert stats.memory_units == 0
        assert all(value == 0 for value in stats.as_row().values())

    def test_memory_units_formula(self):
        stats = StreamStats(nodes_stored=5, candidates_buffered=3,
                            max_live_expectations=2)
        assert stats.memory_units == 10

    def test_as_row_reports_every_memory_quantity(self):
        row = StreamStats(events=7, nodes_seen=4, nodes_stored=1,
                          candidates_buffered=2, max_live_expectations=3,
                          buffered_value_chars=8, results=1).as_row()
        assert row["events"] == 7
        assert row["nodes_seen"] == 4
        assert row["memory_units"] == 1 + 2 + 3
        assert row["results"] == 1


MONOTONIC_COUNTERS = ("events", "nodes_seen", "max_depth",
                      "expectations_created", "max_live_expectations",
                      "conditions_created", "candidates_buffered",
                      "buffered_value_chars")


class TestCountersDuringARun:
    def test_counters_grow_monotonically_event_by_event(self):
        document = Document.from_tree(
            element("a",
                    element("b", text("x"), element("c")),
                    element("b", element("c", text("y")))))
        matcher = StreamingMatcher(
            parse_xpath("/descendant::b[child::c]/descendant::node()"))
        previous = {name: 0 for name in MONOTONIC_COUNTERS}
        for event in document_events(document):
            matcher.feed(event)
            for name in MONOTONIC_COUNTERS:
                current = getattr(matcher.stats, name)
                assert current >= previous[name], name
                previous[name] = current
        assert matcher.stats.events == len(list(document_events(document)))

    def test_max_depth_is_a_high_water_mark(self):
        document = Document.from_tree(
            element("a", element("b", element("c")), element("b")))
        matcher = StreamingMatcher(parse_xpath("/descendant::c"))
        matcher.process(document_events(document))
        assert matcher.stats.max_depth == 3

    def test_max_live_expectations_is_a_high_water_mark(self):
        document = Document.from_tree(
            element("a", element("b"), element("b"), element("b")))
        matcher = StreamingMatcher(parse_xpath("/descendant::b/child::c"))
        matcher.process(document_events(document))
        # After the stream all expectations are discarded, but the high-water
        # mark keeps the peak.
        assert matcher.live_expectations() == []
        assert matcher.stats.max_live_expectations >= 2

    def test_empty_stream(self):
        matcher = StreamingMatcher(parse_xpath("/"))
        result = matcher.process([StartDocument(), EndDocument()])
        assert result == [0]
        stats = matcher.stats
        assert stats.events == 2
        assert stats.nodes_seen == 1        # only the root
        assert stats.max_depth == 0
        assert stats.expectations_created == 0
        assert stats.results == 1

    def test_single_element_document(self):
        document = Document.from_tree(element("a"))
        matcher = StreamingMatcher(parse_xpath("/child::a"))
        result = matcher.process(document_events(document))
        assert result == [1]
        assert matcher.stats.nodes_seen == 2    # root + element
        assert matcher.stats.max_depth == 1
        assert matcher.stats.results == 1

    def test_buffered_value_chars_counts_join_text(self):
        document = Document.from_tree(
            element("a", element("b", text("xyz")), element("c", text("xyz"))))
        matcher = StreamingMatcher(
            parse_xpath("/descendant::b[self::node() = /descendant::c]"))
        matcher.process(document_events(document))
        assert matcher.stats.buffered_value_chars >= len("xyz")
