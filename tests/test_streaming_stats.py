"""Unit tests of the resource accounting record (repro.streaming.stats)."""

from repro.streaming import stream_evaluate
from repro.streaming.engine import SubscriptionIndex
from repro.streaming.matcher import StreamingMatcher
from repro.streaming.stats import StreamStats
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.events import EndDocument, StartDocument
from repro.xmlmodel.generator import journal_document
from repro.xpath.parser import parse_xpath


class TestStreamStats:
    def test_fresh_stats_are_zero(self):
        stats = StreamStats()
        assert stats.memory_units == 0
        assert all(value == 0 for value in stats.as_row().values())

    def test_memory_units_formula(self):
        stats = StreamStats(nodes_stored=5, candidates_buffered=3,
                            max_live_expectations=2)
        assert stats.memory_units == 10

    def test_as_row_reports_every_memory_quantity(self):
        row = StreamStats(events=7, nodes_seen=4, nodes_stored=1,
                          candidates_buffered=2, max_live_expectations=3,
                          buffered_value_chars=8, results=1).as_row()
        assert row["events"] == 7
        assert row["nodes_seen"] == 4
        assert row["memory_units"] == 1 + 2 + 3
        assert row["results"] == 1

    def test_as_row_reports_substream_emission_counters(self):
        row = StreamStats(subtrees_emitted=4, bytes_emitted=120).as_row()
        assert row["subtrees_emitted"] == 4
        assert row["bytes_emitted"] == 120


MONOTONIC_COUNTERS = ("events", "nodes_seen", "max_depth",
                      "expectations_created", "max_live_expectations",
                      "conditions_created", "candidates_buffered",
                      "buffered_value_chars")


class TestCountersDuringARun:
    def test_counters_grow_monotonically_event_by_event(self):
        document = Document.from_tree(
            element("a",
                    element("b", text("x"), element("c")),
                    element("b", element("c", text("y")))))
        matcher = StreamingMatcher(
            parse_xpath("/descendant::b[child::c]/descendant::node()"))
        previous = {name: 0 for name in MONOTONIC_COUNTERS}
        for event in document_events(document):
            matcher.feed(event)
            for name in MONOTONIC_COUNTERS:
                current = getattr(matcher.stats, name)
                assert current >= previous[name], name
                previous[name] = current
        assert matcher.stats.events == len(list(document_events(document)))

    def test_max_depth_is_a_high_water_mark(self):
        document = Document.from_tree(
            element("a", element("b", element("c")), element("b")))
        matcher = StreamingMatcher(parse_xpath("/descendant::c"))
        matcher.process(document_events(document))
        assert matcher.stats.max_depth == 3

    def test_max_live_expectations_is_a_high_water_mark(self):
        document = Document.from_tree(
            element("a", element("b"), element("b"), element("b")))
        matcher = StreamingMatcher(parse_xpath("/descendant::b/child::c"),
                                   backend="expectations")
        matcher.process(document_events(document))
        # After the stream all expectations are discarded, but the high-water
        # mark keeps the peak.
        assert matcher.live_expectations() == []
        assert matcher.stats.max_live_expectations >= 2

    def test_empty_stream(self):
        matcher = StreamingMatcher(parse_xpath("/"))
        result = matcher.process([StartDocument(), EndDocument()])
        assert result == [0]
        stats = matcher.stats
        assert stats.events == 2
        assert stats.nodes_seen == 1        # only the root
        assert stats.max_depth == 0
        assert stats.expectations_created == 0
        assert stats.results == 1

    def test_single_element_document(self):
        document = Document.from_tree(element("a"))
        matcher = StreamingMatcher(parse_xpath("/child::a"))
        result = matcher.process(document_events(document))
        assert result == [1]
        assert matcher.stats.nodes_seen == 2    # root + element
        assert matcher.stats.max_depth == 1
        assert matcher.stats.results == 1

    def test_buffered_value_chars_counts_join_text(self):
        document = Document.from_tree(
            element("a", element("b", text("xyz")), element("c", text("xyz"))))
        matcher = StreamingMatcher(
            parse_xpath("/descendant::b[self::node() = /descendant::c]"))
        matcher.process(document_events(document))
        assert matcher.stats.buffered_value_chars >= len("xyz")


def assert_internally_consistent(stats, total_events=None):
    """Invariants every finished run must satisfy, whatever the backend."""
    row = stats.as_row()
    for name, value in row.items():
        assert value >= 0, (name, row)
    assert stats.attributes_seen <= stats.nodes_seen
    assert stats.transition_cache_hits <= stats.transition_cache_lookups
    assert stats.dfa_states_materialized <= max(
        1, stats.transition_cache_lookups)
    assert stats.max_live_expectations <= stats.expectations_created
    # Indexed dispatch consults no more expectations than a linear scan.
    assert stats.expectations_checked <= stats.linear_scan_checks
    if total_events is not None:
        assert stats.events_skipped <= total_events
        assert stats.events + stats.events_skipped == total_events


class TestStatsInvariants:
    """Counter consistency on hand-built streams, across both backends.

    ``tests/test_streaming_stats.py`` historically exercised only the
    expectation backend; the ``backend`` fixture closes that gap.
    """

    def _document(self):
        return Document.from_tree(
            element("a",
                    element("b", text("x"),
                            element("c", attributes={"id": "1"})),
                    element("b", attributes={"id": "2", "kind": "x"}),
                    element("c", text("y"))))

    QUERIES = {
        "decided": "/descendant::b",
        "gated": "/descendant::b[child::c]",
        "attr": '//b[@id="2"]',
        "attr-select": "//c/@id",
        "sibling": "/child::a/child::b/following-sibling::c",
        "join": '/descendant::c[self::node() = "y"]',
        "missing": "/descendant::nosuchtag",
    }

    def test_full_run_counters_are_consistent(self, backend):
        events = list(document_events(self._document()))
        index = SubscriptionIndex(self.QUERIES)
        result = index.evaluate(events, backend=backend)
        assert_internally_consistent(result.stats, total_events=len(events))
        assert result.stats.events == len(events)

    def test_verdict_run_counters_are_consistent(self, backend):
        events = list(document_events(self._document()))
        index = SubscriptionIndex(self.QUERIES)
        result = index.evaluate(events, matches_only=True, backend=backend)
        assert_internally_consistent(result.stats, total_events=len(events))

    def test_single_query_counters_are_consistent(self, backend):
        events = list(document_events(self._document()))
        for query in self.QUERIES.values():
            matcher = StreamingMatcher(parse_xpath(query), backend=backend)
            matcher.process(events)
            assert_internally_consistent(matcher.stats,
                                         total_events=len(events))

    def test_dfa_counters_stay_zero_on_the_expectation_backend(self):
        events = list(document_events(self._document()))
        stats = SubscriptionIndex(self.QUERIES).evaluate(
            events, backend="expectations").stats
        assert stats.dfa_states_materialized == 0
        assert stats.transition_cache_lookups == 0
        assert stats.transition_cache_hits == 0
        assert stats.transition_cache_evictions == 0

    def test_attribute_ids_never_collide_with_element_ids(self, backend):
        # Attribute nodes claim the positions right after their owner; the
        # id spaces reported for element, text and attribute selections must
        # be pairwise disjoint and dense.
        document = self._document()
        events = list(document_events(document))
        elements = stream_evaluate("//*", events, backend=backend).node_ids
        attributes = stream_evaluate("//@*", events,
                                     backend=backend).node_ids
        texts = stream_evaluate("//text()", events, backend=backend).node_ids
        assert not set(elements) & set(attributes)
        assert not set(elements) & set(texts)
        assert not set(attributes) & set(texts)
        assert sorted([0] + elements + attributes + texts) == \
            list(range(len(document)))


class TestEventsSkipped:
    """Early termination of verdict-only sessions (``events_skipped``)."""

    QUERIES = {
        "journals": "/descendant::journal",
        "titles": "/descendant::journal/descendant::title",
    }

    def _events(self):
        document = journal_document(journals=40, articles_per_journal=3,
                                    authors_per_article=2, seed=13)
        return list(document_events(document))

    def test_verdict_only_session_stops_early(self):
        events = self._events()
        index = SubscriptionIndex(self.QUERIES)
        result = index.evaluate(events, matches_only=True)
        stats = result.stats
        # Both subscriptions are satisfied within the first journal, so the
        # rest of the large document is never consumed.
        assert all(row.matched for row in result)
        assert stats.events < len(events)
        assert stats.events_skipped > 0
        assert stats.events + stats.events_skipped == len(events)
        assert stats.as_row()["events_skipped"] == stats.events_skipped

    def test_full_result_session_never_skips(self):
        events = self._events()
        stats = SubscriptionIndex(self.QUERIES).evaluate(events).stats
        assert stats.events == len(events)
        assert stats.events_skipped == 0

    def test_undecided_verdict_prevents_early_termination(self):
        events = self._events()
        queries = dict(self.QUERIES, missing="/descendant::nosuchtag")
        stats = SubscriptionIndex(queries).evaluate(
            events, matches_only=True).stats
        # One subscription stays undecided until end of stream: no skipping.
        assert stats.events == len(events)
        assert stats.events_skipped == 0

    def test_feeding_a_halted_matcher_counts_skips(self):
        events = self._events()
        matcher = SubscriptionIndex(self.QUERIES).matcher(matches_only=True)
        for event in events:
            matcher.feed(event)
        assert matcher.halted
        assert matcher.stats.events + matcher.stats.events_skipped == len(events)
        before = matcher.stats.events_skipped
        matcher.feed(events[-1])
        assert matcher.stats.events_skipped == before + 1
