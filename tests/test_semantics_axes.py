"""Unit tests for axis navigation (repro.semantics.axes_impl).

The document of Figure 1 has well-known positions::

    0 root, 1 journal, 2 title, 3 "databases", 4 editor, 5 "anna",
    6 authors, 7 name, 8 "anna", 9 name, 10 "bob", 11 price
"""

import pytest

from repro.semantics.axes_impl import axis_nodes, node_test_matches
from repro.xpath.ast import NodeTest
from repro.xpath.axes import FORWARD_AXES, REVERSE_AXES, Axis


def positions(document, position, axis):
    return [node.position for node in axis_nodes(document.node_at(position), axis)]


class TestDownwardAxes(object):
    def test_child(self, figure1):
        assert positions(figure1, 1, Axis.CHILD) == [2, 4, 6, 11]
        assert positions(figure1, 6, Axis.CHILD) == [7, 9]
        assert positions(figure1, 0, Axis.CHILD) == [1]

    def test_descendant(self, figure1):
        assert positions(figure1, 6, Axis.DESCENDANT) == [7, 8, 9, 10]
        assert positions(figure1, 0, Axis.DESCENDANT) == list(range(1, 12))

    def test_descendant_or_self(self, figure1):
        assert positions(figure1, 6, Axis.DESCENDANT_OR_SELF) == [6, 7, 8, 9, 10]

    def test_self(self, figure1):
        assert positions(figure1, 4, Axis.SELF) == [4]

    def test_leaf_has_no_descendants(self, figure1):
        assert positions(figure1, 11, Axis.DESCENDANT) == []
        assert positions(figure1, 3, Axis.CHILD) == []


class TestUpwardAxes:
    def test_parent(self, figure1):
        assert positions(figure1, 7, Axis.PARENT) == [6]
        assert positions(figure1, 1, Axis.PARENT) == [0]
        assert positions(figure1, 0, Axis.PARENT) == []

    def test_ancestor(self, figure1):
        assert positions(figure1, 8, Axis.ANCESTOR) == [0, 1, 6, 7]
        assert positions(figure1, 0, Axis.ANCESTOR) == []

    def test_ancestor_or_self(self, figure1):
        assert positions(figure1, 8, Axis.ANCESTOR_OR_SELF) == [0, 1, 6, 7, 8]
        assert positions(figure1, 0, Axis.ANCESTOR_OR_SELF) == [0]


class TestSiblingAxes:
    def test_following_sibling(self, figure1):
        assert positions(figure1, 2, Axis.FOLLOWING_SIBLING) == [4, 6, 11]
        assert positions(figure1, 11, Axis.FOLLOWING_SIBLING) == []
        assert positions(figure1, 0, Axis.FOLLOWING_SIBLING) == []

    def test_preceding_sibling(self, figure1):
        assert positions(figure1, 11, Axis.PRECEDING_SIBLING) == [2, 4, 6]
        assert positions(figure1, 2, Axis.PRECEDING_SIBLING) == []


class TestDocumentOrderAxes:
    def test_following_excludes_descendants(self, figure1):
        assert positions(figure1, 6, Axis.FOLLOWING) == [11]
        assert positions(figure1, 2, Axis.FOLLOWING) == [4, 5, 6, 7, 8, 9, 10, 11]
        assert positions(figure1, 0, Axis.FOLLOWING) == []

    def test_preceding_excludes_ancestors(self, figure1):
        assert positions(figure1, 11, Axis.PRECEDING) == [2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert positions(figure1, 7, Axis.PRECEDING) == [2, 3, 4, 5]
        assert positions(figure1, 1, Axis.PRECEDING) == []

    def test_preceding_and_following_partition(self, figure1):
        # For every node: preceding ∪ following ∪ ancestors ∪ descendants
        # ∪ {self} = all nodes (a classical XPath identity).
        for node in figure1.nodes:
            preceding = set(positions(figure1, node.position, Axis.PRECEDING))
            following = set(positions(figure1, node.position, Axis.FOLLOWING))
            ancestors = set(positions(figure1, node.position, Axis.ANCESTOR))
            descendants = set(positions(figure1, node.position, Axis.DESCENDANT))
            union = preceding | following | ancestors | descendants | {node.position}
            assert union == set(range(len(figure1)))
            assert not preceding & following


class TestNodeTests:
    def test_name_test(self, figure1):
        test = NodeTest.tag("name")
        assert node_test_matches(test, figure1.node_at(7))
        assert not node_test_matches(test, figure1.node_at(2))
        assert not node_test_matches(test, figure1.node_at(8))

    def test_wildcard_matches_elements_only(self, figure1):
        test = NodeTest.any_element()
        assert node_test_matches(test, figure1.node_at(1))
        assert not node_test_matches(test, figure1.node_at(3))
        assert not node_test_matches(test, figure1.root)

    def test_text_test(self, figure1):
        test = NodeTest.text()
        assert node_test_matches(test, figure1.node_at(3))
        assert not node_test_matches(test, figure1.node_at(2))

    def test_node_test_matches_everything(self, figure1):
        test = NodeTest.node()
        assert all(node_test_matches(test, node) for node in figure1.nodes)


class TestAxisMetadata:
    #: The eleven axes of the paper's Section 2.1 table; the attribute
    #: extension stands outside the symmetry arguments.
    PAPER_AXES = FORWARD_AXES + REVERSE_AXES

    def test_symmetry_is_involutive(self):
        for axis in self.PAPER_AXES:
            assert axis.symmetric.symmetric is axis

    def test_forward_reverse_partition(self):
        for axis in Axis:
            assert axis.is_forward != axis.is_reverse

    def test_symmetric_flips_direction(self):
        for axis in self.PAPER_AXES:
            if axis is Axis.SELF:
                continue
            assert axis.is_forward != axis.symmetric.is_forward

    def test_from_name_round_trip(self):
        for axis in Axis:
            assert Axis.from_name(axis.xpath_name) is axis

    def test_attribute_axis_is_forward_but_asymmetric(self):
        assert Axis.ATTRIBUTE.is_forward
        assert not Axis.ATTRIBUTE.is_reverse
        assert Axis.ATTRIBUTE not in FORWARD_AXES  # outside the paper table
        with pytest.raises(ValueError):
            Axis.ATTRIBUTE.symmetric

    def test_from_name_rejects_namespace_axis(self):
        with pytest.raises(KeyError):
            Axis.from_name("namespace")
