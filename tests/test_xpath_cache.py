"""Unit tests of the compiled-query cache (repro.xpath.cache)."""

import pytest

from repro.xpath import analysis
from repro.xpath.cache import (
    QueryCache,
    clear_compile_cache,
    compile_cache_info,
    compile_query,
    default_cache,
)
from repro.xpath.parser import parse_xpath


class TestQueryCache:
    def test_forward_query_is_parsed_only(self):
        cache = QueryCache()
        path = cache.compile("/descendant::name")
        assert path == parse_xpath("/descendant::name")

    def test_reverse_query_is_rewritten(self):
        cache = QueryCache()
        path = cache.compile("/descendant::price/preceding::name")
        assert not analysis.has_reverse_steps(path)

    def test_hit_returns_identical_object(self):
        cache = QueryCache()
        first = cache.compile("/descendant::price/preceding::name")
        second = cache.compile("/descendant::price/preceding::name")
        assert first is second
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)

    def test_rulesets_are_cached_separately(self):
        cache = QueryCache()
        ruleset1 = cache.compile("/descendant::price/preceding::name",
                                 ruleset="ruleset1")
        ruleset2 = cache.compile("/descendant::price/preceding::name",
                                 ruleset="ruleset2")
        assert ruleset1 != ruleset2
        assert cache.info().misses == 2

    def test_ast_inputs_are_cached_too(self):
        cache = QueryCache()
        ast = parse_xpath("/descendant::editor[parent::journal]")
        first = cache.compile(ast)
        second = cache.compile(ast)
        assert first is second
        assert cache.info().hits == 1

    def test_lru_eviction(self):
        cache = QueryCache(maxsize=2)
        cache.compile("/descendant::a")
        cache.compile("/descendant::b")
        cache.compile("/descendant::a")       # refresh "a"
        cache.compile("/descendant::c")       # evicts "b", the LRU entry
        assert len(cache) == 2
        cache.compile("/descendant::b")       # must recompile
        assert cache.info().misses == 4

    def test_clear_resets_counters(self):
        cache = QueryCache()
        cache.compile("/descendant::a")
        cache.compile("/descendant::a")
        cache.clear()
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            QueryCache(maxsize=0)

    def test_hit_rate(self):
        cache = QueryCache()
        assert cache.info().hit_rate == 0.0
        cache.compile("/descendant::a")
        cache.compile("/descendant::a")
        assert cache.info().hit_rate == 0.5


class TestDefaultCache:
    def test_compile_query_uses_default_cache(self):
        clear_compile_cache()
        try:
            compile_query("/descendant::a/preceding::b")
            compile_query("/descendant::a/preceding::b")
            info = compile_cache_info()
            assert info.hits == 1
            assert info.misses == 1
            assert default_cache().info() == info
        finally:
            clear_compile_cache()
