"""The worked examples of the paper, end to end (experiments E2/E3).

Every location path the paper discusses is rewritten with both rule sets,
compared against the rewriting the paper reports (where it reports one), and
checked for equivalence on the Figure 1 document plus randomized documents.
"""

import pytest

from repro.datasets import figure1_document, two_journal_document
from repro.rewrite import rare
from repro.semantics.equivalence import paths_equivalent_on
from repro.semantics.evaluator import select_positions
from repro.workloads.queries import PAPER_QUERIES
from repro.xpath import analysis
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


def _assert_semantically_equivalent_rewrite(query, result):
    """Check a rewriting the paper does not print.

    Without a printed expected output we assert what the theorems promise:
    the rewriting is reverse-axis-free and selects the same nodes as the
    original on the paper's sample documents (Figure 1 and the two-journal
    catalogue), per the DOM reference evaluator.
    """
    assert analysis.count_reverse_steps(result.result) == 0
    original = parse_xpath(query.xpath)
    documents = [figure1_document(), two_journal_document()]
    report = paths_equivalent_on(original, result.result, documents)
    assert report.equivalent, report.describe()


@pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: q.label)
class TestPaperQueries:
    def test_expected_ruleset1_output(self, query):
        result = rare(query.xpath, ruleset="ruleset1")
        if query.expected_ruleset1 is None:
            _assert_semantically_equivalent_rewrite(query, result)
        else:
            assert to_string(result.result) == query.expected_ruleset1

    def test_expected_ruleset2_output(self, query):
        result = rare(query.xpath, ruleset="ruleset2")
        if query.expected_ruleset2 is None:
            _assert_semantically_equivalent_rewrite(query, result)
        else:
            assert to_string(result.result) == query.expected_ruleset2

    @pytest.mark.parametrize("ruleset", ["ruleset1", "ruleset2"])
    def test_rewriting_is_equivalent_on_documents(self, query, ruleset,
                                                  document_pool):
        original = parse_xpath(query.xpath)
        result = rare(query.xpath, ruleset=ruleset)
        documents = list(document_pool) + [figure1_document()]
        report = paths_equivalent_on(original, result.result, documents)
        assert report.equivalent, report.describe()

    @pytest.mark.parametrize("ruleset", ["ruleset1", "ruleset2"])
    def test_rewriting_is_reverse_axis_free(self, query, ruleset):
        result = rare(query.xpath, ruleset=ruleset)
        assert analysis.count_reverse_steps(result.result) == 0


class TestExample31Selection:
    """Example 3.1: names appearing before a price on the Figure 1 document."""

    def test_original_selects_both_names(self):
        doc = figure1_document()
        assert select_positions(parse_xpath("/descendant::price/preceding::name"),
                                doc) == [7, 9]

    def test_rewritings_select_the_same_names(self):
        doc = figure1_document()
        for ruleset in ("ruleset1", "ruleset2"):
            rewritten = rare("/descendant::price/preceding::name",
                             ruleset=ruleset).result
            assert select_positions(rewritten, doc) == [7, 9]

    def test_join_is_needed_for_the_variant_query(self, two_journals):
        # The variant restricts prices to journals with a title; on the
        # two-journal document the second journal has no title, so its
        # author is excluded.
        restricted = parse_xpath(
            "/descendant::journal[child::title]/descendant::price/preceding::name")
        unrestricted = parse_xpath("/descendant::price/preceding::name")
        assert len(select_positions(restricted, two_journals)) < \
            len(select_positions(unrestricted, two_journals))


class TestExample32Selection:
    def test_editor_of_journal(self):
        doc = figure1_document()
        original = parse_xpath("/descendant::editor[parent::journal]")
        rewritten = parse_xpath("/descendant-or-self::journal/child::editor")
        assert select_positions(original, doc) == select_positions(rewritten, doc) == [4]


class TestSection4Comparison:
    """The qualitative comparison of the two rule sets (Section 4)."""

    @pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: q.label)
    def test_ruleset1_join_count_equals_reverse_steps(self, query):
        original = parse_xpath(query.xpath)
        result = rare(query.xpath, ruleset="ruleset1")
        assert analysis.count_joins(result.result) == \
            analysis.count_reverse_steps(original)

    @pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: q.label)
    def test_ruleset2_output_is_join_free(self, query):
        result = rare(query.xpath, ruleset="ruleset2")
        assert analysis.count_joins(result.result) == 0
