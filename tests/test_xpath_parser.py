"""Unit tests for the xPath parser (repro.xpath.parser)."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AndExpr,
    Bottom,
    Comparison,
    LocationPath,
    NodeTestKind,
    OrExpr,
    PathQualifier,
    Union,
)
from repro.xpath.axes import Axis
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


class TestUnabbreviatedSyntax:
    def test_single_step(self):
        path = parse_xpath("/child::journal")
        assert isinstance(path, LocationPath)
        assert path.absolute
        assert path.steps[0].axis is Axis.CHILD
        assert path.steps[0].node_test.name == "journal"

    def test_every_axis_parses(self):
        for axis in Axis:
            path = parse_xpath(f"/{axis.xpath_name}::a")
            assert path.steps[0].axis is axis

    def test_node_tests(self):
        assert parse_xpath("/child::*").steps[0].node_test.kind is NodeTestKind.WILDCARD
        assert parse_xpath("/child::node()").steps[0].node_test.kind is NodeTestKind.NODE
        assert parse_xpath("/child::text()").steps[0].node_test.kind is NodeTestKind.TEXT
        assert parse_xpath("/child::price").steps[0].node_test.kind is NodeTestKind.NAME

    def test_root_only_path(self):
        path = parse_xpath("/")
        assert isinstance(path, LocationPath)
        assert path.absolute and not path.steps

    def test_relative_path(self):
        path = parse_xpath("child::a/child::b")
        assert not path.absolute
        assert len(path.steps) == 2

    def test_bottom(self):
        assert isinstance(parse_xpath("⊥"), Bottom)
        assert isinstance(parse_xpath("#bottom"), Bottom)


class TestAbbreviatedSyntax:
    def test_bare_name_is_child(self):
        path = parse_xpath("/journal/title")
        assert [step.axis for step in path.steps] == [Axis.CHILD, Axis.CHILD]

    def test_double_slash_expands(self):
        path = parse_xpath("//price")
        assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF
        assert path.steps[0].node_test.kind is NodeTestKind.NODE
        assert path.steps[1].axis is Axis.CHILD

    def test_dot_and_dotdot(self):
        path = parse_xpath("./..")
        assert path.steps[0].axis is Axis.SELF
        assert path.steps[1].axis is Axis.PARENT

    def test_inner_double_slash(self):
        path = parse_xpath("/journal//name")
        assert [step.axis for step in path.steps] == [
            Axis.CHILD, Axis.DESCENDANT_OR_SELF, Axis.CHILD]

    def test_attribute_abbreviation_expands(self):
        # The attribute extension: ``@id`` abbreviates ``attribute::id``.
        path = parse_xpath("/journal/@id")
        assert path == parse_xpath("/child::journal/attribute::id")

    def test_namespace_axis_rejected_with_token_text(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse_xpath("/journal/namespace::x")
        assert "'namespace'" in str(excinfo.value)


class TestQualifiers:
    def test_path_qualifier(self):
        path = parse_xpath("/descendant::editor[parent::journal]")
        qual = path.steps[0].qualifiers[0]
        assert isinstance(qual, PathQualifier)
        assert qual.path.steps[0].axis is Axis.PARENT

    def test_multiple_qualifiers(self):
        path = parse_xpath("/descendant::a[child::b][child::c]")
        assert len(path.steps[0].qualifiers) == 2

    def test_and_or_precedence(self):
        path = parse_xpath("/descendant::a[child::b and child::c or child::d]")
        qual = path.steps[0].qualifiers[0]
        assert isinstance(qual, OrExpr)
        assert isinstance(qual.left, AndExpr)

    def test_parenthesized_qualifier(self):
        path = parse_xpath("/descendant::a[child::b and (child::c or child::d)]")
        qual = path.steps[0].qualifiers[0]
        assert isinstance(qual, AndExpr)
        assert isinstance(qual.right, OrExpr)

    def test_node_equality_join(self):
        path = parse_xpath("/descendant::a[following::b == /descendant::b]")
        qual = path.steps[0].qualifiers[0]
        assert isinstance(qual, Comparison)
        assert qual.op == "=="

    def test_value_join(self):
        path = parse_xpath("/descendant::a[child::b = /descendant::c]")
        assert path.steps[0].qualifiers[0].op == "="

    def test_nested_qualifiers(self):
        path = parse_xpath("/descendant::a[child::b[child::c]]")
        outer = path.steps[0].qualifiers[0]
        inner = outer.path.steps[0].qualifiers[0]
        assert isinstance(inner, PathQualifier)


class TestUnions:
    def test_top_level_union(self):
        path = parse_xpath("/descendant::a | /descendant::b")
        assert isinstance(path, Union)
        assert len(path.members) == 2

    def test_union_inside_qualifier(self):
        path = parse_xpath("/descendant::a[child::b | child::c]")
        qual = path.steps[0].qualifiers[0]
        assert isinstance(qual.path, Union)

    def test_three_member_union(self):
        path = parse_xpath("/a | /b | /c")
        assert len(path.members) == 3


class TestErrors:
    def test_empty_expression(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("   ")

    def test_trailing_garbage(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/child::a]")

    def test_unknown_axis(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/sideways::a")

    def test_unknown_function(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/child::count()")

    def test_missing_node_test(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/child::")

    def test_unclosed_qualifier(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/child::a[child::b")

    def test_error_message_shows_position(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse_xpath("/child::a[child::b")
        assert "child" in str(excinfo.value)


class TestDocstringExamples:
    def test_doc_example_abbreviated(self):
        assert to_string(parse_xpath("//price")) == \
            "/descendant-or-self::node()/child::price"

    def test_doc_example_unabbreviated(self):
        expression = "/descendant::editor[parent::journal]"
        assert to_string(parse_xpath(expression)) == expression
