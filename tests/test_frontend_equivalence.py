"""Differential tests: the two XML front ends produce identical streams.

The hand tokenizer (:func:`repro.xmlmodel.parser.iter_events`) and the
``xml.sax`` adapter (:func:`iter_events_sax`) must agree on the *exact*
event stream — values and document-order node ids alike — or every query
answer referring to node ids silently disagrees between the two front ends.
Two historical bugs motivated this suite: character data split by a dropped
comment used to become two ``Text`` events (SAX coalesces them, shifting
every later node id), and CDATA sections were dropped entirely.
"""

import pytest

from repro.xmlmodel.parser import iter_events, iter_events_sax, parse_xml

#: Well-formed documents exercising the front-end corners where the two
#: parsers could plausibly diverge.
EDGE_CASE_DOCUMENTS = [
    # Comments splitting character data (the node-id regression repro).
    "<a>x<!--c-->y</a>",
    "<a>x<!--one--><!--two-->y</a>",
    "<a> x <!--c--> y </a>",
    "<a><b/>tail<!--c-->more<b/></a>",
    "<a><!--only a comment--></a>",
    # CDATA sections (previously dropped entirely).
    "<a><![CDATA[1 < 2]]></a>",
    "<a>x<![CDATA[ raw & <b> markup ]]>y</a>",
    "<a><![CDATA[]]></a>",
    "<a><![CDATA[first]]><![CDATA[second]]></a>",
    # Processing instructions inside character data.
    "<a>pre<?target some > data?>post</a>",
    "<a><?pi?><b>x</b></a>",
    # Entity references, including numeric ones.
    "<a>x &lt; y &amp; z &#65;&#x42;</a>",
    "<a>&quot;q&quot; &apos;a&apos;</a>",
    # Self-closing elements mixed with text.
    "<a>x<b/>y<c/>z</a>",
    "<a><b/><c/></a>",
    # Whitespace runs (dropped by default, kept on request).
    "<a>\n  <b/>\n  <c>  </c>\n</a>",
    "<a>  leading and trailing  </a>",
    # Everything at once.
    "<catalogue><!--hdr--><journal>t1<![CDATA[&amp;]]>t2"
    "<?pi x?><price/></journal> <journal>x &gt; y</journal></catalogue>",
]


@pytest.mark.parametrize("keep_whitespace", [False, True],
                         ids=["strip-ws", "keep-ws"])
@pytest.mark.parametrize("xml", EDGE_CASE_DOCUMENTS)
def test_event_streams_identical(xml, keep_whitespace):
    ours = list(iter_events(xml, keep_whitespace=keep_whitespace))
    sax = list(iter_events_sax(xml, keep_whitespace=keep_whitespace))
    # Events are frozen dataclasses: equality covers kind, tag/value AND
    # node id, so any coalescing or numbering divergence fails loudly.
    assert ours == sax


@pytest.mark.parametrize("xml", EDGE_CASE_DOCUMENTS)
def test_built_documents_identical(xml):
    ours = parse_xml(xml)
    sax = parse_xml(xml, use_sax=True)
    assert [(n.kind, n.tag, n.value) for n in ours] == \
           [(n.kind, n.tag, n.value) for n in sax]


class TestCommentSplitRepro:
    """Repro: ``<a>x<!--c-->y</a>`` must coalesce into one Text('xy')."""

    def test_single_coalesced_text_event(self):
        from repro.xmlmodel.events import Text
        texts = [e for e in iter_events("<a>x<!--c-->y</a>")
                 if isinstance(e, Text)]
        assert [t.value for t in texts] == ["xy"]

    def test_node_ids_agree_after_the_comment(self):
        # The element after the split text must get the same id from both
        # front ends (this is what the un-coalesced stream got wrong).
        xml = "<a>x<!--c-->y<b/></a>"
        ours = [(type(e).__name__, e.node_id) for e in iter_events(xml)]
        sax = [(type(e).__name__, e.node_id) for e in iter_events_sax(xml)]
        assert ours == sax


class TestCDATARepro:
    """Repro: ``<a><![CDATA[1 < 2]]></a>`` must keep its character data."""

    def test_cdata_content_preserved(self):
        from repro.xmlmodel.events import Text
        texts = [e for e in iter_events("<a><![CDATA[1 < 2]]></a>")
                 if isinstance(e, Text)]
        assert [t.value for t in texts] == ["1 < 2"]

    def test_cdata_is_not_entity_decoded(self):
        from repro.xmlmodel.events import Text
        texts = [e for e in iter_events("<a><![CDATA[a &amp; b]]></a>")
                 if isinstance(e, Text)]
        assert [t.value for t in texts] == ["a &amp; b"]

    def test_unterminated_cdata_rejected(self):
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><![CDATA[oops</a>"))
