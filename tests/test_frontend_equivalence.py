"""Differential tests: the two XML front ends produce identical streams.

The hand tokenizer (:func:`repro.xmlmodel.parser.iter_events`) and the
``xml.sax`` adapter (:func:`iter_events_sax`) must agree on the *exact*
event stream — values and document-order node ids alike — or every query
answer referring to node ids silently disagrees between the two front ends.
Two historical bugs motivated this suite: character data split by a dropped
comment used to become two ``Text`` events (SAX coalesces them, shifting
every later node id), and CDATA sections were dropped entirely.
"""

import pytest

from repro.xmlmodel.parser import iter_events, iter_events_sax, parse_xml

#: Well-formed documents exercising the front-end corners where the two
#: parsers could plausibly diverge.
EDGE_CASE_DOCUMENTS = [
    # Comments splitting character data (the node-id regression repro).
    "<a>x<!--c-->y</a>",
    "<a>x<!--one--><!--two-->y</a>",
    "<a> x <!--c--> y </a>",
    "<a><b/>tail<!--c-->more<b/></a>",
    "<a><!--only a comment--></a>",
    # CDATA sections (previously dropped entirely).
    "<a><![CDATA[1 < 2]]></a>",
    "<a>x<![CDATA[ raw & <b> markup ]]>y</a>",
    "<a><![CDATA[]]></a>",
    "<a><![CDATA[first]]><![CDATA[second]]></a>",
    # Processing instructions inside character data.
    "<a>pre<?target some > data?>post</a>",
    "<a><?pi?><b>x</b></a>",
    # Entity references, including numeric ones.
    "<a>x &lt; y &amp; z &#65;&#x42;</a>",
    "<a>&quot;q&quot; &apos;a&apos;</a>",
    # Self-closing elements mixed with text.
    "<a>x<b/>y<c/>z</a>",
    "<a><b/><c/></a>",
    # Whitespace runs (dropped by default, kept on request).
    "<a>\n  <b/>\n  <c>  </c>\n</a>",
    "<a>  leading and trailing  </a>",
    # Attributes: both quote styles, entities and character references in
    # values, '>' inside a quoted value, whitespace normalization, and the
    # node-id accounting for attribute nodes (they claim the ids right
    # after their element, so every later node id shifts when they drift).
    '<a id="1">x</a>',
    "<a id='1' name='n'><b/></a>",
    '<a title="x &amp; y &lt;z&gt;">t</a>',
    '<a exp="1 &gt; 0" raw="2>3"/>',
    '<a refs="&#65;&#x42;&quot;"/>',
    "<a ws=\"one\ttwo\nthree\">v</a>",
    '<item id="42"><price currency="EUR">9.99</price></item>',
    '<a x="1">pre<b y="2"/>mid<c z="3">t</c>post</a>',
    '<a empty=""/>',
    # Everything at once.
    "<catalogue><!--hdr--><journal>t1<![CDATA[&amp;]]>t2"
    "<?pi x?><price/></journal> <journal>x &gt; y</journal></catalogue>",
    '<catalogue><journal issn="1234"><!--c-->x<price currency="USD"/>'
    "y</journal></catalogue>",
]


@pytest.mark.parametrize("keep_whitespace", [False, True],
                         ids=["strip-ws", "keep-ws"])
@pytest.mark.parametrize("xml", EDGE_CASE_DOCUMENTS)
def test_event_streams_identical(xml, keep_whitespace):
    ours = list(iter_events(xml, keep_whitespace=keep_whitespace))
    sax = list(iter_events_sax(xml, keep_whitespace=keep_whitespace))
    # Events are frozen dataclasses: equality covers kind, tag/value AND
    # node id, so any coalescing or numbering divergence fails loudly.
    assert ours == sax


@pytest.mark.parametrize("xml", EDGE_CASE_DOCUMENTS)
def test_built_documents_identical(xml):
    ours = parse_xml(xml)
    sax = parse_xml(xml, use_sax=True)
    assert [(n.kind, n.tag, n.value) for n in ours] == \
           [(n.kind, n.tag, n.value) for n in sax]


class TestCommentSplitRepro:
    """Repro: ``<a>x<!--c-->y</a>`` must coalesce into one Text('xy')."""

    def test_single_coalesced_text_event(self):
        from repro.xmlmodel.events import Text
        texts = [e for e in iter_events("<a>x<!--c-->y</a>")
                 if isinstance(e, Text)]
        assert [t.value for t in texts] == ["xy"]

    def test_node_ids_agree_after_the_comment(self):
        # The element after the split text must get the same id from both
        # front ends (this is what the un-coalesced stream got wrong).
        xml = "<a>x<!--c-->y<b/></a>"
        ours = [(type(e).__name__, e.node_id) for e in iter_events(xml)]
        sax = [(type(e).__name__, e.node_id) for e in iter_events_sax(xml)]
        assert ours == sax


class TestAttributeParity:
    """The attribute extension: both front ends agree on attributes AND ids."""

    def test_attribute_values_identical(self):
        xml = '<a id="1" name="x &amp; y">t</a>'
        (ours,) = [e for e in iter_events(xml)
                   if type(e).__name__ == "StartElement"]
        (sax,) = [e for e in iter_events_sax(xml)
                  if type(e).__name__ == "StartElement"]
        assert ours.attributes == (("id", "1"), ("name", "x & y"))
        assert ours == sax

    def test_attribute_nodes_shift_later_ids(self):
        # <a> is node 1, its two attributes claim 2 and 3, <b> gets 4.
        xml = '<a p="1" q="2"><b/></a>'
        ids = {e.tag: e.node_id for e in iter_events(xml)
               if type(e).__name__ == "StartElement"}
        assert ids == {"a": 1, "b": 4}
        sax_ids = {e.tag: e.node_id for e in iter_events_sax(xml)
                   if type(e).__name__ == "StartElement"}
        assert sax_ids == ids

    def test_crlf_in_value_collapses_to_one_space(self):
        # XML end-of-line handling runs before attribute normalization:
        # a literal \r\n pair becomes ONE space, as expat does.
        xml = "<a x=\"p\r\nq\"/>"
        (ours,) = [e for e in iter_events(xml)
                   if type(e).__name__ == "StartElement"]
        assert ours.attributes == (("x", "p q"),)
        assert list(iter_events(xml)) == list(iter_events_sax(xml))

    def test_duplicate_attribute_rejected(self):
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events('<a x="1" x="2"/>'))

    def test_unquoted_value_rejected(self):
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a x=1/>"))

    def test_missing_whitespace_between_attributes_rejected(self):
        # SAX rejects '<a x="1"y="2"/>'; the hand tokenizer must agree on
        # what is well formed, not only on well-formed streams.
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events('<a x="1"y="2"/>'))

    def test_invalid_attribute_name_start_rejected(self):
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events('<a 1x="v"/>'))

    def test_literal_lt_in_value_rejected(self):
        # XML 1.0 forbids a raw '<' in attribute values; SAX rejects it and
        # the hand tokenizer must agree (write &lt; instead).
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events('<a x="1<2"/>'))


class TestCDATARepro:
    """Repro: ``<a><![CDATA[1 < 2]]></a>`` must keep its character data."""

    def test_cdata_content_preserved(self):
        from repro.xmlmodel.events import Text
        texts = [e for e in iter_events("<a><![CDATA[1 < 2]]></a>")
                 if isinstance(e, Text)]
        assert [t.value for t in texts] == ["1 < 2"]

    def test_cdata_is_not_entity_decoded(self):
        from repro.xmlmodel.events import Text
        texts = [e for e in iter_events("<a><![CDATA[a &amp; b]]></a>")
                 if isinstance(e, Text)]
        assert [t.value for t in texts] == ["a &amp; b"]

    def test_unterminated_cdata_rejected(self):
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><![CDATA[oops</a>"))


class TestBareCDEndRepro:
    """Repro: a bare ``]]>`` in character data is not well formed.

    XML 1.0 §2.4 forbids the CDATA-section close delimiter in character
    data; expat rejects it, and the hand tokenizer used to accept it —
    silently diverging the two front ends on what is well formed.
    """

    def test_bare_cdend_rejected(self):
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a>x ]]> y</a>"))

    def test_sax_agrees_it_is_rejected(self):
        from repro.errors import XMLSyntaxError
        with pytest.raises(XMLSyntaxError):
            list(iter_events_sax("<a>x ]]> y</a>"))

    def test_cdend_split_across_chunks_rejected(self):
        from repro.errors import XMLSyntaxError
        from repro.xmlmodel.parser import PushTokenizer
        tokenizer = PushTokenizer()
        tokenizer.feed("<a>x ]]")
        with pytest.raises(XMLSyntaxError):
            tokenizer.feed("> y</a>")
            tokenizer.close()

    def test_cdend_in_trailing_text_rejected_at_close(self):
        from repro.errors import XMLSyntaxError
        from repro.xmlmodel.parser import PushTokenizer
        tokenizer = PushTokenizer()
        tokenizer.feed("<a>x ]]>")
        with pytest.raises(XMLSyntaxError):
            tokenizer.close()

    def test_character_reference_form_stays_legal(self):
        # The check runs before entity decoding: the escaped spelling must
        # keep producing a literal "]]>" in the text value, as expat does.
        from repro.xmlmodel.events import Text
        xml = "<a>x &#93;&#93;&gt; y</a>"
        texts = [e for e in iter_events(xml) if isinstance(e, Text)]
        assert [t.value for t in texts] == ["x ]]> y"]
        assert list(iter_events(xml)) == list(iter_events_sax(xml))

    def test_cdata_section_split_form_stays_legal(self):
        # The classic escape: close the CDATA section between the brackets.
        from repro.xmlmodel.events import Text
        xml = "<a><![CDATA[x ]]]]><![CDATA[> y]]></a>"
        texts = [e for e in iter_events(xml) if isinstance(e, Text)]
        assert [t.value for t in texts] == ["x ]]> y"]
        assert list(iter_events(xml)) == list(iter_events_sax(xml))

    def test_brackets_without_gt_stay_legal(self):
        from repro.xmlmodel.events import Text
        xml = "<a>m[i][j] = a[]]</a>"
        texts = [e for e in iter_events(xml) if isinstance(e, Text)]
        assert [t.value for t in texts] == ["m[i][j] = a[]]"]
        assert list(iter_events(xml)) == list(iter_events_sax(xml))
