"""Unit tests for the xPath lexer (repro.xpath.lexer)."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.lexer import TokenType, tokenize


def kinds(expression):
    return [token.type for token in tokenize(expression)]


class TestTokens:
    def test_simple_path(self):
        assert kinds("/child::a") == [
            TokenType.SLASH, TokenType.NAME, TokenType.AXIS_SEP,
            TokenType.NAME, TokenType.END,
        ]

    def test_double_slash(self):
        assert kinds("//a")[0] == TokenType.DOUBLE_SLASH

    def test_dots(self):
        assert kinds(".")[:1] == [TokenType.DOT]
        assert kinds("..")[:1] == [TokenType.DOTDOT]

    def test_equality_operators(self):
        assert TokenType.EQUALS in kinds("a = b")
        assert TokenType.NODE_EQUALS in kinds("a == b")

    def test_union_and_brackets(self):
        types = kinds("a[b] | c")
        assert TokenType.LBRACKET in types
        assert TokenType.RBRACKET in types
        assert TokenType.PIPE in types

    def test_bottom_symbol(self):
        assert kinds("⊥")[0] == TokenType.BOTTOM
        assert kinds("#bottom")[0] == TokenType.BOTTOM

    def test_names_allow_hyphen(self):
        tokens = tokenize("following-sibling::a")
        assert tokens[0].value == "following-sibling"

    def test_whitespace_ignored(self):
        assert kinds("  /  child :: a  ") == kinds("/child::a")

    def test_positions_recorded(self):
        tokens = tokenize("/child::abc")
        assert tokens[0].position == 0
        assert tokens[1].position == 1
        assert tokens[3].position == 8


class TestErrors:
    def test_single_colon_rejected(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a:b")

    def test_unknown_character_rejected(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a$%b")

    def test_quotes_lex_as_string_literals(self):
        tokens = tokenize("a['text']")
        literal = [t for t in tokens if t.type is TokenType.LITERAL]
        assert [t.value for t in literal] == ["text"]

    def test_unterminated_literal_rejected(self):
        with pytest.raises(XPathSyntaxError):
            tokenize('a["oops]')
