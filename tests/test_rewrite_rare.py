"""Unit tests for the rare algorithm driver (repro.rewrite.rare)."""

import pytest

from repro.errors import RewriteLimitExceeded, RRJoinError, UnsupportedPathError
from repro.rewrite import (
    DEFAULT_MAX_APPLICATIONS,
    RuleSet1,
    RuleSet2,
    flatten_unions,
    rare,
    remove_reverse_axes,
    resolve_ruleset,
    union_terms,
)
from repro.xpath import analysis
from repro.xpath.ast import Bottom
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


class TestInputValidation:
    def test_relative_path_rejected(self):
        with pytest.raises(UnsupportedPathError):
            rare("descendant::a/parent::b")

    def test_rr_join_rejected(self):
        with pytest.raises(RRJoinError):
            rare("/descendant::a[self::* = preceding::*]")

    def test_rr_join_with_node_identity_rejected(self):
        with pytest.raises(RRJoinError):
            rare("/descendant::a[child::b == preceding::c]")

    def test_join_against_absolute_path_accepted(self):
        result = rare("/descendant::a[preceding::b == /descendant::b]")
        assert analysis.count_reverse_steps(result.result) == 0

    def test_unknown_ruleset_name_rejected(self):
        with pytest.raises(UnsupportedPathError):
            rare("/descendant::a/parent::b", ruleset="ruleset3")

    def test_string_and_ast_inputs_agree(self):
        from_string = rare("/descendant::a/parent::b").result
        from_ast = rare(parse_xpath("/descendant::a/parent::b")).result
        assert from_string == from_ast


class TestResultMetadata:
    def test_forward_only_input_is_returned_unchanged(self):
        result = rare("/descendant::a/child::b")
        assert to_string(result.result) == "/descendant::a/child::b"
        assert result.applications == 0

    def test_result_metrics(self):
        result = rare("/descendant::a/parent::b", ruleset="ruleset1")
        assert result.input_length == 2
        assert result.output_length >= 2
        assert result.output_joins == 1
        assert result.elapsed_seconds >= 0
        assert str(result) == to_string(result.result)

    def test_ruleset_recorded(self):
        assert rare("/descendant::a/parent::b", ruleset="ruleset1").ruleset == "RuleSet1"
        assert rare("/descendant::a/parent::b", ruleset="ruleset2").ruleset == "RuleSet2"

    def test_ruleset_instances_accepted(self):
        assert resolve_ruleset(RuleSet1()).name == "RuleSet1"
        assert resolve_ruleset("RULESET2").name == "RuleSet2"

    def test_application_budget_enforced(self):
        with pytest.raises(RewriteLimitExceeded):
            rare("/descendant::a/following::b/preceding::c/following::d/preceding::e",
                 ruleset="ruleset2", max_applications=2)

    def test_default_budget_is_generous(self):
        assert DEFAULT_MAX_APPLICATIONS >= 10_000


class TestUnionHandling:
    def test_union_input_rewritten_member_wise(self):
        result = rare("/descendant::a/parent::b | /descendant::c/parent::d")
        assert analysis.count_reverse_steps(result.result) == 0
        assert analysis.union_term_count(result.result) >= 2

    def test_bottom_members_are_dropped(self):
        result = rare("/parent::a | /descendant::b")
        assert to_string(result.result) == "/descendant::b"

    def test_all_bottom_members_yield_bottom(self):
        result = rare("/parent::a | /preceding::b")
        assert isinstance(result.result, Bottom)

    def test_union_terms_helper(self):
        path = parse_xpath("/a | /b | ⊥")
        terms = union_terms(path)
        assert [to_string(term) for term in terms] == ["/child::a", "/child::b"]

    def test_flatten_unions_idempotent(self):
        path = parse_xpath("/a | /b")
        assert flatten_unions(path) == flatten_unions(flatten_unions(path))

    def test_flatten_unions_on_plain_path(self):
        path = parse_xpath("/a")
        assert flatten_unions(path) == path


class TestEndToEndProperties:
    EXPRESSIONS = [
        "/descendant::price/preceding::name",
        "/descendant::name/preceding::title[ancestor::journal]",
        "/descendant::a/parent::*/parent::*",
        "/descendant::a[descendant::b/preceding::c or child::d]",
        "/descendant::a/following::b/ancestor::c",
        "//name[../preceding-sibling::editor]",
        "/descendant::a[child::b and preceding::c]",
    ]

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    @pytest.mark.parametrize("ruleset", ["ruleset1", "ruleset2"])
    def test_output_is_reverse_free(self, expression, ruleset):
        result = rare(expression, ruleset=ruleset)
        assert analysis.count_reverse_steps(result.result) == 0

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    @pytest.mark.parametrize("ruleset", ["ruleset1", "ruleset2"])
    def test_output_is_equivalent_on_documents(self, expression, ruleset,
                                               document_pool):
        from repro.semantics.equivalence import paths_equivalent_on
        original = parse_xpath(expression)
        result = rare(expression, ruleset=ruleset)
        report = paths_equivalent_on(original, result.result, document_pool)
        assert report.equivalent, report.describe()

    def test_remove_reverse_axes_wrapper(self):
        rewritten = remove_reverse_axes("/descendant::a/parent::b")
        assert analysis.count_reverse_steps(rewritten) == 0
