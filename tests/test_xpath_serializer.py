"""Unit tests for the xPath serializer (repro.xpath.serializer)."""

import pytest

from repro.xpath.ast import Bottom
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import BOTTOM_SYMBOL, qualifier_to_string, step_to_string, to_string

ROUND_TRIP_EXPRESSIONS = [
    "/",
    "/child::journal",
    "/descendant::price/preceding::name",
    "/descendant::editor[parent::journal]",
    "/descendant::name[following::price == /descendant::price]",
    "/descendant::a[child::b and child::c]",
    "/descendant::a[child::b or (child::c and child::d)]",
    "/descendant::a | /descendant::b[child::c]",
    "/descendant::a[child::b = /descendant::c]",
    "/descendant::a[child::b | descendant::c]",
    "child::a/descendant-or-self::node()/child::b",
    "/descendant::*[self::a]/child::text()",
]


class TestRoundTrip:
    @pytest.mark.parametrize("expression", ROUND_TRIP_EXPRESSIONS)
    def test_parse_serialize_parse_is_stable(self, expression):
        first = parse_xpath(expression)
        rendered = to_string(first)
        second = parse_xpath(rendered)
        assert first == second

    @pytest.mark.parametrize("expression", ROUND_TRIP_EXPRESSIONS)
    def test_unabbreviated_output_is_fixed_point(self, expression):
        rendered = to_string(parse_xpath(expression))
        assert to_string(parse_xpath(rendered)) == rendered


class TestRendering:
    def test_bottom_renders_with_symbol(self):
        assert to_string(Bottom()) == BOTTOM_SYMBOL

    def test_root_renders_as_slash(self):
        assert to_string(parse_xpath("/")) == "/"

    def test_union_spacing(self):
        assert to_string(parse_xpath("/a|/b")) == "/child::a | /child::b"

    def test_nested_boolean_operands_parenthesized(self):
        rendered = to_string(parse_xpath("/a[(child::b or child::c) and child::d]"))
        assert "(" in rendered and ")" in rendered

    def test_step_to_string(self):
        path = parse_xpath("/descendant::a[child::b]")
        assert step_to_string(path.steps[0]) == "descendant::a[child::b]"

    def test_qualifier_to_string_join(self):
        path = parse_xpath("/a[child::b == /c]")
        assert qualifier_to_string(path.steps[0].qualifiers[0]) == \
            "child::b == /child::c"

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            to_string("not a path")
