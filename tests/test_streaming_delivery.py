"""Unit tests for the emission layer (repro.streaming.delivery).

Covers the three delivery modes end to end — verdicts, node ids, and
substream payload extraction — plus the shared single-pass tee mechanics:
overlapping windows sharing one region by reference, per-slice render
caching, leaf (text/attribute) captures, whole-document root captures,
streaming-callback routing order, deferred emission behind undecided
conditions, and the broker-level plumbing (``delivery`` / ``on_payload``
parameters, payload accounting, the ``history_limit=0`` retention edge).
"""

import pytest

from repro.streaming import (
    DocumentBroker,
    NodeIdDelivery,
    SubscriptionIndex,
    SubstreamDelivery,
    VerdictDelivery,
)
from repro.streaming.delivery import SubtreeTee, resolve_delivery
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.events import EndElement, StartElement, Text
from repro.xmlmodel.serialize import escape_text, to_xml
from repro.xmlmodel.stream_serialize import serialize_events

BACKENDS = ("dfa", "expectations")


def _catalogue() -> Document:
    return Document.from_tree(element(
        "catalog",
        element("journal", element("title", text("a&b")),
                element("article",
                        element("authors", element("name", text("anna")),
                                element("name", text("bo")))),
                attributes={"tier": "gold"}),
        element("journal", element("title", text("late")),
                attributes={"tier": "silver"}),
        element("price", text("9"))))


def _subtree_bytes(events, node_id):
    """Reference payload for one matched node, computed independently of
    the tee: element -> its event slice re-serialized, text/attribute ->
    the escaped value, document root -> the whole stream."""
    if node_id == 0:
        return serialize_events(events)
    for position, event in enumerate(events):
        if isinstance(event, Text) and event.node_id == node_id:
            return escape_text(event.value).encode()
        if not isinstance(event, StartElement):
            continue
        if event.node_id == node_id:
            depth = 0
            for offset in range(position, len(events)):
                follower = events[offset]
                if isinstance(follower, StartElement):
                    depth += 1
                elif isinstance(follower, EndElement):
                    depth -= 1
                    if depth == 0:
                        return serialize_events(events[position:offset + 1])
        elif (event.attributes
              and event.node_id < node_id
              <= event.node_id + len(event.attributes)):
            value = event.attributes[node_id - event.node_id - 1][1]
            return escape_text(value).encode()
    raise AssertionError(f"no node {node_id} in the stream")


def _expected_payload(events, node_ids):
    return b"".join(_subtree_bytes(events, nid) for nid in sorted(node_ids))


class TestResolveDelivery:
    def test_default_is_node_ids(self):
        assert isinstance(resolve_delivery(), NodeIdDelivery)

    def test_matches_only_resolves_to_verdict(self):
        resolved = resolve_delivery(matches_only=True)
        assert isinstance(resolved, VerdictDelivery)
        assert resolved.matches_only

    def test_explicit_delivery_passes_through(self):
        delivery = SubstreamDelivery()
        assert resolve_delivery(delivery) is delivery
        assert delivery.captures and not delivery.matches_only

    def test_matches_only_agrees_with_verdict_delivery(self):
        delivery = VerdictDelivery()
        assert resolve_delivery(delivery, matches_only=True) is delivery

    def test_matches_only_contradicts_non_verdict_delivery(self):
        with pytest.raises(ValueError):
            resolve_delivery(NodeIdDelivery(), matches_only=True)
        with pytest.raises(ValueError):
            resolve_delivery(SubstreamDelivery(), matches_only=True)

    def test_rejects_non_delivery(self):
        with pytest.raises(TypeError):
            resolve_delivery("substream")


class TestSubtreeTee:
    """The shared buffer mechanics, exercised directly."""

    def test_disengaged_tee_buffers_nothing(self):
        tee = SubtreeTee()
        tee.element_start(StartElement("a", 1), [])
        tee.text(Text("x", 2))
        assert tee.element_end(EndElement("a", 1)) == ()
        # The zero-cost idle property: no window ever opened, no region
        # was ever allocated, nothing was retained.
        assert tee.region is None and tee.open_windows == 0

    def test_nested_windows_share_one_region_by_reference(self):
        tee = SubtreeTee()
        tee.element_start(StartElement("outer", 1), [(0, object())])
        region = tee.region
        tee.element_start(StartElement("inner", 2), [(1, object())])
        assert tee.region is region  # no second buffer for the overlap
        (inner,) = tee.element_end(EndElement("inner", 2))
        (outer,) = tee.element_end(EndElement("outer", 1))
        assert inner.region is outer.region is region
        assert outer.render() == b"<outer><inner /></outer>"
        assert inner.render() == b"<inner />"
        # Last window closed: the tee disengaged again.
        assert tee.region is None and tee.open_windows == 0

    def test_two_claims_on_one_element_share_a_slice_rendering(self):
        tee = SubtreeTee()
        tee.element_start(StartElement("a", 1),
                          [(0, object()), (1, object())])
        tee.text(Text("payload", 2))
        first, second = tee.element_end(EndElement("a", 1))
        assert first.region is second.region
        assert (first.start, first.end) == (second.start, second.end)
        # render() memoizes per slice: the very same bytes object.
        assert first.render() is second.render()

    def test_rewind_forgets_everything(self):
        tee = SubtreeTee()
        tee.element_start(StartElement("a", 1), [(0, object())])
        tee.rewind()
        assert tee.region is None and tee.open_windows == 0
        assert tee.element_end(EndElement("a", 1)) == ()


@pytest.mark.parametrize("backend", BACKENDS)
class TestSubstreamEvaluation:
    def test_payloads_equal_independent_subtree_serialization(self, backend):
        events = list(document_events(_catalogue()))
        index = SubscriptionIndex()
        index.add("//journal", key="journals")
        index.add("//authors", key="authors")
        index.add("//authors/name", key="names")
        index.add("//journal/@tier", key="tiers")
        index.add("/", key="whole")
        index.add("//missing", key="nobody")
        result = index.evaluate(events, backend=backend,
                                delivery=SubstreamDelivery())
        plain = index.evaluate(events, backend=backend)
        for sub in result:
            # Node ids are byte-for-byte the legacy answer...
            assert sub.node_ids == plain[sub.key].node_ids
            # ...and the payload is exactly those subtrees, serialized,
            # in document order.
            assert sub.payload == _expected_payload(events, sub.node_ids)
        assert result["nobody"].payload == b""
        # Overlap sanity: the journal payload contains the nested ones.
        assert result["authors"].payload in result["journals"].payload
        assert result["whole"].payload == serialize_events(events)

    def test_node_id_mode_carries_no_payload_and_no_tee(self, backend):
        events = list(document_events(_catalogue()))
        index = SubscriptionIndex()
        index.add("//journal", key="journals")
        matcher = index.matcher(backend=backend)
        assert matcher._tee is None  # substream machinery never engaged
        result = matcher.process(events)
        assert result["journals"].payload is None
        assert result.stats.subtrees_emitted == 0
        assert result.stats.bytes_emitted == 0

    def test_callback_mode_streams_in_close_order(self, backend):
        events = list(document_events(_catalogue()))
        index = SubscriptionIndex()
        index.add("//journal", key="journals")
        index.add("//authors", key="authors")
        calls = []
        result = index.evaluate(
            events, backend=backend,
            delivery=SubstreamDelivery(
                on_payload=lambda key, nid, data:
                calls.append((key, nid, data))))
        # Streamed: nothing buffered on the results.
        assert all(sub.payload is None for sub in result)
        # Windows close innermost-first: authors before its journal.
        assert [key for key, _, _ in calls] == ["authors", "journals",
                                                "journals"]
        for key, node_id, data in calls:
            assert data == _subtree_bytes(events, node_id)

    def test_deferred_condition_gates_emission(self, backend):
        # [following::price] is undecidable when the title closes; the
        # capture must be held back and settled at end of stream.
        index = SubscriptionIndex()
        index.add("/descendant::title[following::price]", key="titles")
        with_price = list(document_events(_catalogue()))
        result = index.evaluate(with_price, backend=backend,
                                delivery=SubstreamDelivery())
        assert result["titles"].matched
        assert result["titles"].payload == _expected_payload(
            with_price, result["titles"].node_ids)
        without_price = list(document_events(Document.from_tree(
            element("catalog", element("journal",
                                       element("title", text("t")))))))
        held = index.evaluate(without_price, backend=backend,
                              delivery=SubstreamDelivery())
        assert not held["titles"].matched
        assert held["titles"].payload == b""

    def test_stats_and_registry_account_for_captures(self, backend):
        events = list(document_events(_catalogue()))
        index = SubscriptionIndex()
        index.add("//journal", key="journals")
        index.add("//title", key="titles")
        matcher = index.matcher(backend=backend,
                                delivery=SubstreamDelivery())
        result = matcher.process(events)
        emitted = sum(len(sub.node_ids) for sub in result)
        assert result.stats.subtrees_emitted == emitted
        assert result.stats.bytes_emitted == sum(len(sub.payload)
                                                 for sub in result)
        row = result.stats.as_row()
        assert row["subtrees_emitted"] == emitted
        assert row["bytes_emitted"] == result.stats.bytes_emitted
        # Every capture window closed by end of document.
        assert matcher.registry_sizes()["open_capture_windows"] == 0

    def test_session_reuse_resets_payload_buffers(self, backend):
        index = SubscriptionIndex()
        index.add("//title", key="titles")
        matcher = index.matcher(backend=backend,
                                delivery=SubstreamDelivery())
        first = matcher.process(document_events(_catalogue()))
        assert first["titles"].payload
        matcher.reset()
        small = list(document_events(Document.from_tree(
            element("catalog", element("journal",
                                       element("title", text("solo")))))))
        second = matcher.process(small)
        # Only the second document's subtrees — nothing leaked across.
        assert second["titles"].payload == _expected_payload(
            small, second["titles"].node_ids)
        assert second.stats.subtrees_emitted == 1


class TestFlushMidCapture:
    """A DFA cache flush (epoch bump) while a capture window is open must
    preserve the open ``SubtreeTee`` region across the state-stack resync:
    the tee is matcher state, and the resync rebuilds only automaton state.
    """

    N_TAGS = 120  # enough distinct tags to overflow the floor state cap

    def _workload(self):
        xml = ("<root><wrap>"
               + "".join(f"<t{i}>x{i}</t{i}>" for i in range(self.N_TAGS))
               + "</wrap></root>")
        from repro.xmlmodel.parser import iter_events
        events = list(iter_events(xml))
        subscriptions = {f"s{i}": f"//t{i}" for i in range(self.N_TAGS)}
        # The ancestor capture: its window spans every flush below.
        subscriptions["wrap"] = "//wrap"
        return events, subscriptions

    def _run(self, events, subscriptions, backend, cap=None):
        kwargs = {} if cap is None else {"dfa_transition_cap": cap}
        index = SubscriptionIndex(subscriptions, **kwargs)
        return index.evaluate(events, backend=backend,
                              delivery=SubstreamDelivery())

    def test_payload_identical_across_forced_flushes(self):
        events, subscriptions = self._workload()
        flushed = self._run(events, subscriptions, "dfa", cap=2)
        # The tiny cap really did force wholesale flushes mid-document,
        # i.e. while <wrap>'s capture region was open.
        assert flushed.stats.transition_cache_flushed > 0
        for reference_backend, cap in (("dfa", None), ("expectations", None)):
            reference = self._run(events, subscriptions,
                                  reference_backend, cap=cap)
            assert reference.stats.transition_cache_flushed == 0
            assert flushed["wrap"].payload == reference["wrap"].payload
            for i in (0, self.N_TAGS // 2, self.N_TAGS - 1):
                assert (flushed[f"s{i}"].payload
                        == reference[f"s{i}"].payload), i

    def test_payload_matches_independent_serialization(self):
        events, subscriptions = self._workload()
        flushed = self._run(events, subscriptions, "dfa", cap=2)
        assert flushed["wrap"].payload == _expected_payload(
            events, flushed["wrap"].node_ids)

    def test_targeted_invalidation_mid_capture(self):
        # Live churn's targeted invalidation is the other epoch-bump
        # source; an open capture must survive it just the same.  Pinned
        # to the dfa backend: only the automaton has a cache to flush.
        events, subscriptions = self._workload()
        index = SubscriptionIndex(subscriptions)
        baseline = index.evaluate(events, backend="dfa",
                                  delivery=SubstreamDelivery())
        index.add_subscription("late", "//t0/inner")
        assert index.churn.targeted_flushes > 0
        after = index.evaluate(events, backend="dfa",
                               delivery=SubstreamDelivery())
        assert after["wrap"].payload == baseline["wrap"].payload


class TestVerdictDelivery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_equivalent_to_matches_only(self, backend):
        events = list(document_events(_catalogue()))
        index = SubscriptionIndex()
        index.add("//journal", key="journals")
        index.add("//missing", key="nobody")
        via_delivery = index.evaluate(events, backend=backend,
                                      delivery=VerdictDelivery())
        via_flag = index.evaluate(events, backend=backend, matches_only=True)
        for key in ("journals", "nobody"):
            assert via_delivery[key].matched == via_flag[key].matched
            assert via_delivery[key].node_ids == []
            assert via_delivery[key].payload is None


class TestBrokerDelivery:
    def _chunks(self, document):
        xml_text = to_xml(document, indent=0)
        return [xml_text[i:i + 48] for i in range(0, len(xml_text), 48)]

    def test_buffered_substream_through_chunked_submit(self):
        index = SubscriptionIndex()
        index.add("//journal", key="journals")
        index.add("//journal/@tier", key="tiers")
        broker = DocumentBroker(index, delivery=SubstreamDelivery())
        doc = _catalogue()
        result = broker.submit("doc-1", self._chunks(doc))
        events = list(document_events(doc))
        for sub in result:
            assert sub.payload == _expected_payload(events, sub.node_ids)
        assert broker.stats.subtrees_emitted == sum(
            len(sub.node_ids) for sub in result)
        assert broker.stats.bytes_emitted == sum(
            len(sub.payload) for sub in result)

    def test_on_payload_shorthand_accumulates_across_documents(self):
        index = SubscriptionIndex()
        index.add("//title", key="titles")
        mailbox = []
        broker = DocumentBroker(
            index,
            on_payload=lambda key, nid, data: mailbox.append((key, data)))
        broker.submit("doc-1", self._chunks(_catalogue()))
        broker.submit("doc-2", self._chunks(_catalogue()))
        assert len(mailbox) == 4  # two titles per document
        assert all(key == "titles" for key, _ in mailbox)
        assert broker.stats.subtrees_emitted == 4
        assert broker.stats.bytes_emitted == sum(len(d) for _, d in mailbox)

    def test_on_payload_upgrades_callbackless_substream_delivery(self):
        seen = []
        broker = DocumentBroker({"titles": "//title"},
                                delivery=SubstreamDelivery(),
                                on_payload=lambda key, nid, data:
                                seen.append(data))
        broker.submit("doc", self._chunks(_catalogue()))
        assert seen  # the callback, not buffering, won

    def test_on_payload_conflicts_with_foreign_callback(self):
        with pytest.raises(ValueError):
            DocumentBroker(
                {"titles": "//title"},
                delivery=SubstreamDelivery(on_payload=lambda *a: None),
                on_payload=lambda *a: None)

    def test_matches_only_conflicts_with_substream(self):
        with pytest.raises(ValueError):
            DocumentBroker({"titles": "//title"}, matches_only=True,
                           delivery=SubstreamDelivery())

    def test_history_limit_zero_disables_retention(self):
        # The eviction edge: maxlen=0 keeps *no* records while the
        # aggregate stats keep accumulating normally.
        broker = DocumentBroker({"titles": "//title"}, history_limit=0)
        broker.submit("doc-1", self._chunks(_catalogue()))
        broker.submit("doc-2", self._chunks(_catalogue()))
        assert broker.history == []
        assert broker.stats.documents == 2
        assert broker.stats.deliveries == 2

    def test_history_limit_none_is_unbounded(self):
        broker = DocumentBroker({"titles": "//title"}, history_limit=None)
        for number in range(5):
            broker.submit(f"doc-{number}", self._chunks(_catalogue()))
        assert [record.document_id for record in broker.history] == \
               [f"doc-{number}" for number in range(5)]
