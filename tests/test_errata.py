"""The four errata of the printed rule set (repro.rewrite.errata).

Each erratum records the equivalence *as printed* in the EDBT 2002 paper, the
corrected form used by our implementation, and a small witness document.
The tests demonstrate that the printed form really differs from the original
path on the witness (so the deviation is justified), and that the corrected
form is equivalent both on the witness and on randomized documents.
"""

import pytest

from repro.rewrite import remove_reverse_axes
from repro.rewrite.errata import paper_errata
from repro.semantics.equivalence import paths_equivalent_on
from repro.semantics.evaluator import select_positions
from repro.xpath import analysis

ERRATA = paper_errata()


@pytest.mark.parametrize("erratum", ERRATA, ids=lambda e: e.rule)
class TestErrata:
    def test_printed_form_fails_on_witness(self, erratum):
        left = select_positions(erratum.left, erratum.witness)
        printed = select_positions(erratum.printed_right, erratum.witness)
        assert left != printed, (
            f"{erratum.rule}: expected the printed right-hand side to differ "
            f"on the witness document")

    def test_corrected_form_agrees_on_witness(self, erratum):
        left = select_positions(erratum.left, erratum.witness)
        corrected = select_positions(erratum.corrected_right, erratum.witness)
        assert left == corrected

    def test_corrected_form_is_equivalent_on_random_documents(self, erratum,
                                                              document_pool):
        report = paths_equivalent_on(erratum.left, erratum.corrected_right,
                                     document_pool)
        assert report.equivalent, report.describe()

    def test_implementation_rewrites_the_left_hand_side_correctly(self, erratum,
                                                                   document_pool):
        rewritten = remove_reverse_axes(erratum.left, ruleset="ruleset2")
        assert analysis.count_reverse_steps(rewritten) == 0
        documents = list(document_pool) + [erratum.witness]
        report = paths_equivalent_on(erratum.left, rewritten, documents)
        assert report.equivalent, report.describe()


class TestErrataCatalogue:
    def test_expected_rules_are_covered(self):
        # Rule (32)'s erratum is a typographical one (the printed term is not
        # parseable), so it is documented in DESIGN.md but has no
        # counterexample entry here.
        rules = {erratum.rule for erratum in ERRATA}
        assert rules == {"Rule (30)", "Rule (33)", "Rule (37)",
                         "Rule (38)", "Rule (42)"}

    def test_each_erratum_has_description_and_witness(self):
        for erratum in ERRATA:
            assert erratum.description
            assert len(erratum.witness) > 1
