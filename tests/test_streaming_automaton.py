"""Unit tests of the lazy-DFA backend (repro.streaming.automaton)."""

import pytest

from repro.errors import StreamingError
from repro.streaming import DocumentBroker, SubscriptionIndex, stream_evaluate
from repro.streaming.automaton import (
    BACKEND_ENV_VAR,
    DEFAULT_TRANSITION_CAP,
    compile_subscription_automaton,
    resolve_backend,
)
from repro.streaming.matcher import StreamingMatcher
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.generator import (
    item_feed_document,
    journal_document,
    tagged_sections_document,
)
from repro.xpath import analysis
from repro.xpath.axes import Axis
from repro.xpath.parser import parse_xpath


class TestBackendResolution:
    def test_explicit_backends(self):
        assert resolve_backend("dfa") == "dfa"
        assert resolve_backend("expectations") == "expectations"

    def test_default_is_dfa(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "dfa"

    def test_empty_environment_value_means_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend(None) == "dfa"

    def test_environment_variable_overrides_the_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "expectations")
        assert resolve_backend(None) == "expectations"
        # An explicit argument still wins over the environment.
        assert resolve_backend("dfa") == "dfa"

    def test_unknown_backend_rejected(self):
        with pytest.raises(StreamingError, match="unknown streaming backend"):
            resolve_backend("nfa")

    def test_unknown_environment_backend_rejected_naming_the_variable(
            self, monkeypatch):
        # The same error fires whether the bad value came from the caller
        # or the environment; only the environment names its source.
        monkeypatch.setenv(BACKEND_ENV_VAR, "nfa")
        with pytest.raises(StreamingError,
                           match=f"unknown streaming backend 'nfa' "
                                 f"\\(from {BACKEND_ENV_VAR}\\)"):
            resolve_backend(None)
        with pytest.raises(StreamingError) as caller_error:
            resolve_backend("nfa")
        assert BACKEND_ENV_VAR not in str(caller_error.value)

    def test_matcher_exposes_its_backend(self):
        index = SubscriptionIndex({"q": "/descendant::a"})
        assert index.matcher(backend="dfa").backend == "dfa"
        assert index.matcher(backend="expectations").backend == "expectations"
        assert StreamingMatcher(parse_xpath("/child::a"),
                                backend="dfa").backend == "dfa"


#: Adversarial named descendant-or-self chains: k repetitions compile to
#: exactly k shared-prefix alternatives, so 64 sits at the cap and 65 is
#: the first spine past it (``//`` descents fold instead and never fork).
DOS_CHAIN_64 = "/descendant-or-self::a" * 64
DOS_CHAIN_65 = "/descendant-or-self::a" * 65


class TestSpineClassification:
    @pytest.mark.parametrize("query, decided", [
        ("/descendant::a/child::b", True),
        ("//a/@id", True),
        ("/", True),
        ("/a/b/c | //d", True),
        # Sibling windows compile: following/following-sibling spines are
        # decided by the automaton (close-event arming), no fallback.
        ("/descendant::a/following::b", True),
        ("/a | /b/following-sibling::c", True),
        ("/following::a", True),
        # // descents fold into the next item instead of forking, so long
        # //-chains stay one alternative.
        ("//a" * 8, True),
        ("/descendant::a[child::b]", False),
        # Alternative explosion (named descendant-or-self chains past the
        # cap): compiled by the fallback engine, so not decided by DFA
        # accept sets — the classifier mirrors the compiler.
        (DOS_CHAIN_64, True),
        (DOS_CHAIN_65, False),
    ])
    def test_is_structurally_decided(self, query, decided):
        assert analysis.is_structurally_decided(parse_xpath(query)) == decided

    def test_spine_cut_points(self):
        path = parse_xpath("/a/b[child::c]/d")
        assert analysis.automaton_spine_cut(path) == 1
        # Sibling-axis steps no longer cut the spine...
        assert analysis.automaton_spine_cut(
            parse_xpath("/a/following::b")) is None
        # ...unless they carry qualifiers, like any other step.
        assert analysis.automaton_spine_cut(
            parse_xpath("/a/following::b[child::c]")) == 1
        assert analysis.automaton_spine_cut(parse_xpath("/a/b")) is None

    def test_is_automaton_compilable(self):
        assert analysis.is_automaton_compilable(parse_xpath("/a[child::b]"))
        assert analysis.is_automaton_compilable(
            parse_xpath("/a/following::b"))
        assert analysis.is_automaton_compilable(
            parse_xpath("/following::a"))
        assert analysis.is_automaton_compilable(parse_xpath("//a" * 8))
        # Boundary of the alternative cap: 64 compiles, 65 falls back.
        assert analysis.is_automaton_compilable(parse_xpath(DOS_CHAIN_64))
        assert not analysis.is_automaton_compilable(parse_xpath(DOS_CHAIN_65))

    def test_alternative_counts_at_the_cap_boundary(self):
        sixty_four = parse_xpath(DOS_CHAIN_64)
        alternatives = analysis.automaton_spine_alternatives(
            sixty_four.steps)
        assert len(alternatives) == 64
        assert analysis.automaton_spine_alternatives(
            parse_xpath(DOS_CHAIN_65).steps) is None
        # One alternative short of the cap, the 65-chain would compile.
        assert analysis.automaton_spine_alternatives(
            parse_xpath(DOS_CHAIN_65).steps, limit=65) is not None

    def test_descent_folding_keeps_slash_slash_chains_linear(self):
        # //a//b compiles to the single alternative (desc a, desc b).
        path = parse_xpath("//a//b")
        alternatives = analysis.automaton_spine_alternatives(path.steps)
        assert alternatives == [
            ((analysis.M_DESC, (analysis.K_NAME, "a")),
             (analysis.M_DESC, (analysis.K_NAME, "b")))]
        assert len(analysis.automaton_spine_alternatives(
            parse_xpath("//a" * 8).steps)) == 1

    def test_classifiers_agree_with_the_compiler(self):
        # is_automaton_compilable must predict the fallback partition
        # exactly — they share one kernel in repro.xpath.analysis.
        from repro.workloads.queries import differential_query_pool
        from repro.xpath.ast import Bottom, iter_union_members
        queries = differential_query_pool(60, seed=21) + [
            "//a" * 8, "/following::a", "/a/following::b", "/",
        ]
        for query in queries:
            path = parse_xpath(query)
            _automaton, fallback = compile_subscription_automaton([(0, path)])
            fallen = {m for m in fallback.get(0, ())}
            for member in iter_union_members(path):
                if isinstance(member, Bottom):
                    continue
                assert analysis.is_automaton_compilable(member) \
                    == (member not in fallen), query

    def test_supported_axes_are_all_forward_axes(self):
        assert Axis.FOLLOWING in analysis.AUTOMATON_SPINE_AXES
        assert Axis.FOLLOWING_SIBLING in analysis.AUTOMATON_SPINE_AXES
        assert Axis.ATTRIBUTE in analysis.AUTOMATON_SPINE_AXES
        assert Axis.PARENT not in analysis.AUTOMATON_SPINE_AXES
        assert Axis.ANCESTOR not in analysis.AUTOMATON_SPINE_AXES


class TestCompilation:
    def test_window_spines_no_longer_fall_back(self):
        automaton, fallback = compile_subscription_automaton([
            (0, parse_xpath("/descendant::a")),
            (1, parse_xpath("/following::a")),
            (2, parse_xpath("/a | /following-sibling::b")),
            (3, parse_xpath("//a" * 8)),
        ])
        assert fallback == {}
        assert automaton.has_window_rules
        assert automaton.state_count() >= 2  # dead + start

    def test_fallback_partition(self):
        automaton, fallback = compile_subscription_automaton([
            (0, parse_xpath("/descendant::a")),
            (1, parse_xpath(DOS_CHAIN_65)),
            (2, parse_xpath(f"/a | {DOS_CHAIN_65}")),
        ])
        assert 0 not in fallback
        assert [str(type(m).__name__) for m in fallback[1]] == ["LocationPath"]
        # Only the exploding member of the union falls back.
        assert len(fallback[2]) == 1
        assert automaton.state_count() >= 2  # dead + start

    def test_alternative_explosion_falls_back(self):
        # Named descendant-or-self chains fork a shared-prefix alternative
        # per step; past the limit the member routes to the expectation
        # engine — and both backends still agree.
        _automaton, fallback = compile_subscription_automaton(
            [(0, parse_xpath(DOS_CHAIN_65))])
        assert 0 in fallback
        document = Document.from_tree(
            element("a", element("a", element("a"))))
        events = list(document_events(document))
        for query in (DOS_CHAIN_64, DOS_CHAIN_65, "//a" * 8):
            assert stream_evaluate(query, events, backend="dfa").node_ids \
                == stream_evaluate(query, events,
                                   backend="expectations").node_ids, query

    def test_trie_sharing_keeps_shared_prefix_fragments_linear(self):
        # The 64 alternatives of the dos-chain share prefixes pairwise; the
        # builder memoizes (state, item) pairs, so the NFA stays linear in
        # the spine length instead of quadratic in the alternative count.
        automaton, fallback = compile_subscription_automaton(
            [(0, parse_xpath(DOS_CHAIN_64))])
        assert fallback == {}
        assert automaton.describe()["nfa_states"] < 4 * 64

    def test_union_members_share_spine_prefixes(self):
        # Ten members over one spine prefix thread through one fragment
        # with per-member accept tags instead of ten parallel chains.
        shared = compile_subscription_automaton(
            [(i, parse_xpath(f"/db/journal/t{i}")) for i in range(10)])[0]
        lone = compile_subscription_automaton(
            [(0, parse_xpath("/db/journal/t0"))])[0]
        per_member = (shared.describe()["nfa_states"]
                      - lone.describe()["nfa_states"])
        # Each extra member may only add its distinguishing final state.
        assert per_member == 9

    def test_relative_member_rejected(self):
        with pytest.raises(StreamingError, match="absolute"):
            compile_subscription_automaton([(0, parse_xpath("child::a"))])

    def test_impossible_spines_compile_to_nothing(self):
        # text() has no children: nothing to match, nothing to fall back to.
        automaton, fallback = compile_subscription_automaton(
            [(0, parse_xpath("/child::text()/child::a"))])
        assert fallback == {}
        document = Document.from_tree(element("a", text("x"), element("a")))
        result = stream_evaluate("/child::text()/child::a",
                                 document_events(document), backend="dfa")
        assert result.node_ids == []

    def test_describe_reports_sizes(self):
        index = SubscriptionIndex({"q": "/descendant::a/child::b"})
        matcher = index.matcher(backend="dfa")
        document = Document.from_tree(element("a", element("b")))
        matcher.process(document_events(document))
        figures = matcher._automaton.describe()
        assert figures["nfa_states"] > 0
        assert figures["dfa_states"] == matcher.dfa_state_count() > 0
        assert figures["transition_cap"] == DEFAULT_TRANSITION_CAP
        assert figures["evictions"] == 0


class TestLazyMaterialization:
    def test_states_materialize_on_demand_and_are_shared(self):
        index = SubscriptionIndex({"q": "//a/b"})
        document = Document.from_tree(
            element("a", element("b"), element("c", element("a", element("b")))))
        events = list(document_events(document))
        first = index.matcher(backend="dfa")
        first.process(events)
        assert first.stats.dfa_states_materialized > 0
        assert first.stats.transition_cache_lookups > 0
        # A second matcher over the same index shares the warmed automaton.
        second = index.matcher(backend="dfa")
        second.process(events)
        assert second.stats.dfa_states_materialized == 0
        assert (second.stats.transition_cache_hits
                == second.stats.transition_cache_lookups)
        assert second.dfa_state_count() == first.dfa_state_count()

    def test_bounded_table_evicts_and_stays_correct(self):
        # A cap far below the document's tag diversity forces evictions and
        # continuous on-the-fly subset construction; results must not change.
        document = tagged_sections_document(sections=30, depth=2, seed=4)
        events = list(document_events(document))
        queries = {f"q{i}": f"/child::db/child::t{i:02d}" for i in range(8)}
        capped = SubscriptionIndex(queries, dfa_transition_cap=16)
        roomy = SubscriptionIndex(queries)
        capped_result = capped.evaluate(events, backend="dfa")
        roomy_result = roomy.evaluate(events, backend="dfa")
        for key in queries:
            assert capped_result[key].node_ids == roomy_result[key].node_ids
        assert capped_result.stats.transition_cache_evictions > 0
        # FIFO eviction alone: the state set stayed under its bound.
        assert capped_result.stats.transition_cache_flushed == 0
        assert roomy_result.stats.transition_cache_evictions == 0

    def test_state_set_is_flushed_when_it_outgrows_its_bound(self):
        # Documents whose ancestor chains keep combining tags in new ways
        # materialize a new DFA state per distinct NFA subset; a long-lived
        # session must flush (and lazily rebuild) instead of growing without
        # bound — and results must not change across the flush.
        import itertools
        import random
        tags = [f"t{i:02d}" for i in range(12)]
        queries = {i: f"//{a}//{b}"
                   for i, (a, b) in enumerate(itertools.islice(
                       itertools.permutations(tags, 2), 24))}
        capped = SubscriptionIndex(queries, dfa_transition_cap=16)
        reference = SubscriptionIndex(queries)
        broker = DocumentBroker(capped, backend="dfa")
        rng = random.Random(5)
        flushed_stats = None
        for round_index in range(80):
            chain = rng.sample(tags, 7)
            node = element(chain[-1])
            for tag in reversed(chain[:-1]):
                node = element(tag, node)
            events = list(document_events(Document.from_tree(node)))
            result = broker.submit(round_index, to_xml(
                Document.from_tree(node), indent=0))
            fresh = reference.evaluate(events, backend="dfa")
            for key in queries:
                assert result[key].node_ids == fresh[key].node_ids, key
            automaton = broker.session._automaton
            assert automaton.state_count() <= automaton.describe()["state_cap"] \
                + len(chain) + 2
            if automaton.describe()["flushes"] and flushed_stats is None:
                flushed_stats = result.stats
        assert broker.session._automaton.describe()["flushes"] > 0
        assert flushed_stats is not None
        # A bulk flush is counted on its own counter, not as FIFO evictions.
        assert flushed_stats.transition_cache_flushed > 0

    def test_flush_and_fifo_eviction_counters_stay_distinguishable(self):
        # One hand-built stream triggering *both* overflow regimes: a tiny
        # transition cap (16) forces per-entry FIFO evictions while the
        # ever-new ancestor-chain tag combinations outgrow the state bound
        # (64) and force bulk flushes; each lands on its own counter.
        import itertools
        tags = [f"t{i:02d}" for i in range(12)]
        queries = {i: f"//{a}//{b}"
                   for i, (a, b) in enumerate(itertools.islice(
                       itertools.permutations(tags, 2), 24))}
        import random
        index = SubscriptionIndex(queries, dfa_transition_cap=16)
        broker = DocumentBroker(index, backend="dfa")
        evicted = flushed = 0
        rng = random.Random(5)
        for round_index in range(80):
            chain = rng.sample(tags, 7)
            node = element(chain[-1])
            for tag in reversed(chain[:-1]):
                node = element(tag, node)
            result = broker.submit(round_index, to_xml(
                Document.from_tree(node), indent=0))
            evicted += result.stats.transition_cache_evictions
            flushed += result.stats.transition_cache_flushed
        assert evicted > 0
        assert flushed > 0

    def test_dead_branches_cost_one_lookup(self):
        # A subscription rooted at a tag the document never opens drives the
        # run into the dead state; everything below short-circuits.
        index = SubscriptionIndex({"q": "/child::nosuch/descendant::a"})
        document = Document.from_tree(
            element("r", element("a", element("a")), element("a")))
        matcher = index.matcher(backend="dfa")
        matcher.process(list(document_events(document)))
        # Only the root element's transition is ever computed; the children
        # inherit the dead state without a lookup.
        assert matcher.stats.transition_cache_lookups == 1


class TestQualifierGating:
    def test_expectations_spawn_only_at_structural_matches(self):
        # 40 journals, but only journal elements can open the gate of
        # //journal[child::price]: the expectation engine spawns per event,
        # the DFA backend once per journal.
        document = journal_document(journals=40, articles_per_journal=2,
                                    authors_per_article=2, seed=5)
        events = list(document_events(document))
        query = "/descendant::journal[child::price]/child::title"
        gated = StreamingMatcher(parse_xpath(query), backend="dfa")
        full = StreamingMatcher(parse_xpath(query), backend="expectations")
        assert gated.process(events) == full.process(events)
        assert 0 < gated.stats.expectations_created
        assert (gated.stats.expectations_created
                < full.stats.expectations_created)

    def test_structurally_decided_subscriptions_spawn_nothing(self):
        document = journal_document(journals=10, seed=3)
        events = list(document_events(document))
        matcher = StreamingMatcher(parse_xpath("/descendant::journal/child::title"),
                                   backend="dfa")
        result = matcher.process(events)
        assert result
        assert matcher.stats.expectations_created == 0
        assert matcher.stats.conditions_created == 0

    def test_sibling_windows_run_without_expectations(self):
        # //title/following-sibling::price used to hand over to the
        # expectation engine mid-spine; the sibling window now compiles and
        # the whole query is decided by the automaton alone.
        document = journal_document(journals=6, seed=2)
        events = list(document_events(document))
        query = "/descendant::title/following-sibling::price"
        dfa = stream_evaluate(query, events, backend="dfa")
        exp = stream_evaluate(query, events, backend="expectations")
        assert dfa.node_ids == exp.node_ids != []
        assert dfa.stats.expectations_created == 0
        assert exp.stats.expectations_created > 0

    def test_window_step_with_qualifiers_gates_at_the_window(self):
        # Qualifiers on a sibling-axis step gate like on any other step:
        # the window itself runs on the automaton, only nodes reaching it
        # spawn the qualifier machinery.
        tree = element("r",
                       element("a"),
                       element("b", element("c")),
                       element("b"))
        events = list(document_events(Document.from_tree(tree)))
        query = "/r/a/following-sibling::b[child::c]"
        dfa = stream_evaluate(query, events, backend="dfa")
        exp = stream_evaluate(query, events, backend="expectations")
        assert dfa.node_ids == exp.node_ids != []
        assert len(dfa.node_ids) == 1
        # Only the two structurally-reaching b siblings built conditions.
        assert dfa.stats.conditions_created == 2

    def test_attribute_gates_decide_at_start_element(self):
        feed = item_feed_document(items=20, seed=7)
        events = list(document_events(feed))
        index = SubscriptionIndex({"first": '//item[@id="0"]'})
        matcher = index.matcher(matches_only=True, backend="dfa")
        result = matcher.process(events)
        assert result["first"].matched
        assert matcher.halted
        assert matcher.stats.events_skipped > 0


class TestSiblingWindows:
    """Close-event arming semantics of compiled following/following-sibling."""

    def _both(self, query, tree):
        events = list(document_events(Document.from_tree(tree)))
        dfa = stream_evaluate(query, events, backend="dfa")
        exp = stream_evaluate(query, events, backend="expectations")
        assert dfa.node_ids == exp.node_ids, query
        return dfa

    def test_sibling_window_expires_when_the_parent_closes(self):
        # The second b is a sibling of the anchor; the third lives outside
        # the anchor's parent and must not match.
        tree = element("r",
                       element("p", element("a"), element("b")),
                       element("b"))
        result = self._both("//a/following-sibling::b", tree)
        assert len(result.node_ids) == 1

    def test_sibling_window_skips_preceding_siblings(self):
        tree = element("r", element("b"), element("a"), element("b"))
        result = self._both("/r/a/following-sibling::b", tree)
        assert len(result.node_ids) == 1

    def test_following_window_stays_armed_across_depths(self):
        # following::b matches everything after the anchor's close,
        # whatever the depth.
        tree = element("r",
                       element("p", element("a"), element("b")),
                       element("q", element("b")),
                       element("b"))
        result = self._both("//a/following::b", tree)
        assert len(result.node_ids) == 3

    def test_following_excludes_the_anchors_own_subtree(self):
        tree = element("r",
                       element("a", element("b")),
                       element("b"))
        result = self._both("//a/following::b", tree)
        assert len(result.node_ids) == 1

    def test_root_anchored_windows_are_empty(self):
        tree = element("r", element("a"))
        assert self._both("/following::a", tree).node_ids == []
        assert self._both("/following-sibling::a", tree).node_ids == []

    def test_text_anchors_arm_at_the_text_event(self):
        # Text nodes have no close event; their windows arm immediately.
        tree = element("r", text("x"), element("b"))
        assert len(self._both("//following::b", tree).node_ids) == 1
        assert len(self._both(
            "//text()/following-sibling::b", tree).node_ids) == 1

    def test_windows_continue_into_ordinary_steps(self):
        tree = element("r",
                       element("a"),
                       element("b", element("c"), element("d")))
        result = self._both("/r/a/following-sibling::b/c", tree)
        assert len(result.node_ids) == 1

    def test_first_step_window_members_run_without_wholesale_fallback(self):
        # Acceptance criterion: first-step following/following-sibling
        # members and deep //-windows compile — the fallback trie is empty.
        from repro.workloads.queries import differential_query_pool
        pool = differential_query_pool(120, seed=3)
        assert any("following" in query for query in pool)
        _automaton, fallback = compile_subscription_automaton(
            [(ordinal, parse_xpath(query))
             for ordinal, query in enumerate(pool)])
        assert fallback == {}

    def test_window_queries_leave_no_expectation_residue(self):
        index = SubscriptionIndex({0: "//a/following::b",
                                   1: "/r/a/following-sibling::b"})
        matcher = index.matcher(backend="dfa")
        tree = element("r", element("a"), element("b"))
        matcher.process(list(document_events(Document.from_tree(tree))))
        assert matcher.stats.expectations_created == 0
        sizes = matcher.registry_sizes()
        assert all(size == 0 for size in sizes.values()), sizes


class TestRootAccepts:
    def test_root_only_path(self):
        document = Document.from_tree(element("a"))
        assert stream_evaluate("/", document_events(document),
                               backend="dfa").node_ids == [0]

    def test_root_gate(self):
        # A qualifier on the very first step gates at the document root.
        document = Document.from_tree(element("a", element("b")))
        events = list(document_events(document))
        for query in ("/descendant-or-self::node()[child::a]",
                      "/child::a[child::b]"):
            dfa = stream_evaluate(query, events, backend="dfa").node_ids
            exp = stream_evaluate(query, events,
                                  backend="expectations").node_ids
            assert dfa == exp, query
