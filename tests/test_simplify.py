"""Tests for the cosmetic simplifier (repro.rewrite.simplify)."""

import pytest

from repro.rewrite import remove_reverse_axes, simplify
from repro.semantics.equivalence import paths_equivalent_on
from repro.xpath import analysis
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


class TestSimplifications:
    def test_redundant_self_node_step_dropped(self):
        path = parse_xpath("/self::node()/child::a/self::node()/child::b")
        assert to_string(simplify(path)) == "/child::a/child::b"

    def test_self_step_with_qualifier_is_kept(self):
        path = parse_xpath("/self::node()[child::a]/child::b")
        assert to_string(simplify(path)) == "/self::node()[child::a]/child::b"

    def test_trivial_self_qualifier_dropped(self):
        path = parse_xpath("/descendant::a[self::node()]")
        assert to_string(simplify(path)) == "/descendant::a"

    def test_duplicate_union_members_merged(self):
        path = parse_xpath("/descendant::a | /descendant::a | /descendant::b")
        assert to_string(simplify(path)) == "/descendant::a | /descendant::b"

    def test_bottom_members_dropped(self):
        path = parse_xpath("/descendant::a | ⊥")
        assert to_string(simplify(path)) == "/descendant::a"

    def test_root_only_path_untouched(self):
        assert to_string(simplify(parse_xpath("/"))) == "/"

    def test_relative_single_self_step_survives(self):
        path = parse_xpath("self::node()")
        assert to_string(simplify(path)) == "self::node()"

    def test_or_with_trivial_branch_collapses(self):
        path = parse_xpath("/descendant::a[self::node() or child::b]")
        assert to_string(simplify(path)) == "/descendant::a"

    def test_and_with_trivial_branch_keeps_other(self):
        path = parse_xpath("/descendant::a[self::node() and child::b]")
        assert to_string(simplify(path)) == "/descendant::a[child::b]"


@pytest.mark.parametrize("expression", [
    "/descendant::c/self::a[parent::b]",
    "/descendant::a[child::b/ancestor::c]",
    "/descendant::a/following::b/preceding::c",
    "/descendant::a[preceding::b == /descendant::b]",
])
@pytest.mark.parametrize("ruleset", ["ruleset1", "ruleset2"])
class TestSimplifyPreservesEquivalence:
    def test_simplified_rewriting_still_equivalent(self, expression, ruleset,
                                                   document_pool):
        original = parse_xpath(expression)
        rewritten = remove_reverse_axes(original, ruleset=ruleset)
        simplified = simplify(rewritten)
        assert analysis.path_length(simplified) <= analysis.path_length(rewritten)
        report = paths_equivalent_on(original, simplified, document_pool)
        assert report.equivalent, report.describe()
