"""Unit tests for RuleSet2 (repro.rewrite.ruleset2).

The exhaustive per-rule equivalence validation lives in
``tests/property/test_rules_equivalence.py``; the tests here check the
structural properties the paper states for specific rules (which rule fires,
join-freeness, the shapes of the worked examples).
"""

import itertools

import pytest

from repro.rewrite import rare, remove_reverse_axes
from repro.semantics.equivalence import paths_equivalent_on
from repro.xpath import analysis
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


def rules_fired(expression):
    return rare(expression, ruleset="ruleset2", collect_trace=True).trace.rules_applied()


class TestSingleRuleShapes:
    def test_rule_3(self):
        assert to_string(remove_reverse_axes("/child::r/descendant::n/parent::m")) == \
            "/child::r/descendant-or-self::m[child::n]"

    def test_rule_4(self):
        assert to_string(remove_reverse_axes("/child::r/child::n/parent::m")) == \
            "/child::r/self::m[child::n]"

    def test_rule_8_example_3_2(self):
        assert to_string(remove_reverse_axes("/descendant::editor[parent::journal]")) == \
            "/descendant-or-self::journal/child::editor"

    def test_rule_9(self):
        assert to_string(remove_reverse_axes("/child::r/child::n[parent::m]")) == \
            "/child::r/self::m/child::n"

    def test_rule_13a(self):
        assert to_string(remove_reverse_axes("/descendant::n/ancestor::m")) == \
            "/descendant-or-self::m[descendant::n]"

    def test_rule_18a(self):
        assert to_string(remove_reverse_axes("/descendant::n[ancestor::m]")) == \
            "/descendant-or-self::m/descendant::n"

    def test_rule_23(self):
        assert to_string(remove_reverse_axes("/child::r/descendant::n/preceding-sibling::m")) == \
            "/child::r/descendant::m[following-sibling::n]"

    def test_rule_28(self):
        assert to_string(remove_reverse_axes("/child::r/descendant::n[preceding-sibling::m]")) == \
            "/child::r/descendant::m/following-sibling::n"

    def test_rule_33a_example_3_3(self):
        assert to_string(remove_reverse_axes("/descendant::price/preceding::name")) == \
            "/descendant::name[following::price]"

    def test_rule_38a(self):
        assert to_string(remove_reverse_axes("/descendant::n[preceding::m]")) == \
            "/descendant::m/following::n"

    def test_expected_rule_labels(self):
        assert rules_fired("/descendant::editor[parent::journal]") == ["Rule (8)"]
        assert rules_fired("/descendant::price/preceding::name") == ["Rule (33a)"]
        assert rules_fired("/descendant::n/ancestor::m") == ["Rule (13a)"]
        assert rules_fired("/child::r/child::n/parent::m") == ["Rule (4)"]


class TestQualifierCarrying:
    def test_qualifiers_of_both_steps_are_preserved(self, document_pool):
        original = parse_xpath(
            "/child::r/descendant::n[child::x]/parent::m[child::y]")
        rewritten = remove_reverse_axes(original)
        rendered = to_string(rewritten)
        assert "child::x" in rendered and "child::y" in rendered
        report = paths_equivalent_on(original, rewritten, document_pool)
        assert report.equivalent, report.describe()

    def test_other_qualifiers_stay_on_the_carrier(self, document_pool):
        original = parse_xpath(
            "/descendant::n[child::x][parent::m][child::y]")
        rewritten = remove_reverse_axes(original)
        report = paths_equivalent_on(original, rewritten, document_pool)
        assert report.equivalent, report.describe()

    def test_rest_of_path_is_appended(self, document_pool):
        original = parse_xpath("/descendant::n/parent::m/child::k")
        rewritten = remove_reverse_axes(original)
        assert to_string(rewritten).endswith("/child::k")
        report = paths_equivalent_on(original, rewritten, document_pool)
        assert report.equivalent, report.describe()


class TestJoinFreeness:
    @pytest.mark.parametrize("expression", [
        "/descendant::price/preceding::name",
        "/descendant::name/preceding::title[ancestor::journal]",
        "/descendant::a/following::b/parent::c",
        "/descendant::a/following::b[preceding::c]",
        "/descendant::a/ancestor-or-self::b/preceding-sibling::c",
        "/descendant::a[child::b/ancestor::c]",
    ])
    def test_ruleset2_output_contains_no_joins(self, expression):
        rewritten = remove_reverse_axes(expression, ruleset="ruleset2")
        assert analysis.count_joins(rewritten) == 0
        assert analysis.count_reverse_steps(rewritten) == 0


class TestUnions:
    def test_following_interactions_produce_unions(self):
        result = rare("/descendant::a/following::b/parent::c", ruleset="ruleset2")
        assert analysis.union_term_count(result.result) >= 2

    def test_or_self_decomposition_is_traced(self):
        result = rare("/descendant::a/ancestor-or-self::b", ruleset="ruleset2",
                      collect_trace=True)
        assert "Lemma 3.1.6" in result.trace.rules_applied()

    def test_descendant_or_self_predecessor_decomposed(self):
        result = rare("/descendant-or-self::a/parent::b", ruleset="ruleset2",
                      collect_trace=True)
        assert "Lemma 3.1.7" in result.trace.rules_applied()


class TestRootPrefixCases:
    def test_reverse_first_step_is_bottom(self):
        assert to_string(remove_reverse_axes("/parent::a")) == "⊥"
        assert to_string(remove_reverse_axes("/preceding::a/child::b")) == "⊥"

    def test_following_prefix_at_root_is_bottom(self):
        assert to_string(remove_reverse_axes("/following::a/parent::b")) == "⊥"
        assert to_string(remove_reverse_axes("/following-sibling::a[parent::b]")) == "⊥"

    def test_child_ancestor_from_root(self, document_pool):
        original = parse_xpath("/child::a/ancestor::node()")
        rewritten = remove_reverse_axes(original)
        report = paths_equivalent_on(original, rewritten, document_pool)
        assert report.equivalent, report.describe()

    def test_self_only_prefix_collapses(self):
        assert to_string(remove_reverse_axes("/self::node()/parent::a")) == "⊥"


class TestEveryAxisInteraction:
    REVERSE = ("parent", "ancestor", "preceding", "preceding-sibling",
               "ancestor-or-self")
    FORWARD = ("child", "descendant", "descendant-or-self", "self",
               "following", "following-sibling")

    @pytest.mark.parametrize("forward,reverse",
                             list(itertools.product(FORWARD, REVERSE)))
    def test_spine_interaction_rewrites_and_is_forward(self, forward, reverse):
        expression = f"/descendant::c/{forward}::a/{reverse}::b"
        rewritten = remove_reverse_axes(expression, ruleset="ruleset2")
        assert analysis.count_reverse_steps(rewritten) == 0

    @pytest.mark.parametrize("forward,reverse",
                             list(itertools.product(FORWARD, REVERSE)))
    def test_qualifier_interaction_rewrites_and_is_forward(self, forward, reverse):
        expression = f"/descendant::c/{forward}::a[{reverse}::b]"
        rewritten = remove_reverse_axes(expression, ruleset="ruleset2")
        assert analysis.count_reverse_steps(rewritten) == 0
