"""Empirical validation of Lemma 3.1 / Lemma 3.2 and the driver congruences."""

import pytest

from repro.datasets import figure1_document
from repro.rewrite.lemmas import (
    all_equivalences,
    driver_lemma_equivalences,
    lemma_3_1_equivalences,
    lemma_3_2_equivalences,
)
from repro.semantics.equivalence import paths_equivalent_on
from repro.xmlmodel.generator import journal_document, random_document

LEMMA_31 = lemma_3_1_equivalences()
LEMMA_32 = lemma_3_2_equivalences()
DRIVER = driver_lemma_equivalences()


def single_rooted_documents():
    """Documents with a single document element (well-formed XML)."""
    return [
        figure1_document(),
        journal_document(journals=3, articles_per_journal=2, authors_per_article=2),
        random_document(max_depth=4, max_children=3, seed=13),
        random_document(max_depth=3, max_children=4, seed=14),
    ]


@pytest.mark.parametrize("equivalence", LEMMA_31, ids=lambda e: e.name)
def test_lemma_3_1_holds_on_random_documents(equivalence, document_pool):
    report = paths_equivalent_on(equivalence.left, equivalence.right, document_pool)
    assert report.equivalent, report.describe()


@pytest.mark.parametrize("equivalence", LEMMA_32, ids=lambda e: e.name)
def test_lemma_3_2_holds(equivalence, document_pool):
    if equivalence.requires_single_document_element:
        documents = single_rooted_documents()
    else:
        documents = list(document_pool) + single_rooted_documents()
    report = paths_equivalent_on(equivalence.left, equivalence.right, documents)
    assert report.equivalent, report.describe()


@pytest.mark.parametrize("equivalence", DRIVER, ids=lambda e: e.name)
def test_driver_congruences_hold(equivalence, document_pool):
    report = paths_equivalent_on(equivalence.left, equivalence.right, document_pool)
    assert report.equivalent, report.describe()


def test_catalogue_is_complete():
    names = [equivalence.name for equivalence in all_equivalences()]
    assert len(names) == len(set(names))
    assert any("3.1.5" in name for name in names)
    assert any("3.1.8" in name for name in names)
    assert any("Lemma 3.2" in name for name in names)
    assert len(names) >= 30
