"""Unit tests for XML parsing (repro.xmlmodel.parser)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.datasets import FIGURE1_XML
from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlmodel.parser import (
    PushTokenizer,
    iter_events,
    iter_events_sax,
    parse_xml,
)


class TestTokenizer:
    def test_simple_document_events(self):
        events = list(iter_events("<a><b>hi</b></a>"))
        kinds = [type(event).__name__ for event in events]
        assert kinds == ["StartDocument", "StartElement", "StartElement",
                         "Text", "EndElement", "EndElement", "EndDocument"]

    def test_node_ids_are_document_order(self):
        events = list(iter_events("<a><b>hi</b><c/></a>"))
        starts = [e for e in events if isinstance(e, (StartElement, Text))]
        assert [e.node_id for e in starts] == [1, 2, 3, 4]

    def test_self_closing_element(self):
        events = list(iter_events("<a><price /></a>"))
        tags = [e.tag for e in events if isinstance(e, StartElement)]
        assert tags == ["a", "price"]

    def test_whitespace_only_text_dropped_by_default(self):
        events = list(iter_events("<a>\n  <b/>\n</a>"))
        assert not [e for e in events if isinstance(e, Text)]

    def test_whitespace_kept_on_request(self):
        events = list(iter_events("<a> <b/> </a>", keep_whitespace=True))
        assert [e for e in events if isinstance(e, Text)]

    def test_entities_decoded(self):
        events = list(iter_events("<a>x &lt; y &amp; z &#65;</a>"))
        text = [e for e in events if isinstance(e, Text)][0]
        assert text.value == "x < y & z A"

    def test_comments_and_declaration_ignored(self):
        xml = "<?xml version='1.0'?><!-- hi --><a><b/></a>"
        events = list(iter_events(xml))
        tags = [e.tag for e in events if isinstance(e, StartElement)]
        assert tags == ["a", "b"]

    def test_attributes_become_attribute_nodes(self):
        doc = parse_xml('<a id="1"><b name="x"/></a>')
        assert doc.document_element.tag == "a"
        # root, <a>, @id, <b>, @name
        assert len(doc) == 5
        assert doc.document_element.get_attribute("id") == "1"


class TestWellFormedness:
    def test_mismatched_closing_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><b></a></b>"))

    def test_unclosed_element(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><b>"))

    def test_stray_closing_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("</a>"))

    def test_unterminated_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><b"))

    def test_unknown_entity(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a>&nope;</a>"))


class TestPushTokenizer:
    """Unit tests of the incremental front end (the chunk-boundary
    *equivalence* is covered exhaustively by the property suite)."""

    def test_start_document_on_first_feed(self):
        tokenizer = PushTokenizer()
        assert tokenizer.feed("") == [StartDocument(node_id=0)]
        assert tokenizer.feed("<a>") == [StartElement(tag="a", node_id=1)]

    def test_empty_document(self):
        tokenizer = PushTokenizer()
        assert tokenizer.close() == [StartDocument(node_id=0),
                                     EndDocument(node_id=0)]

    def test_events_emitted_as_soon_as_complete(self):
        tokenizer = PushTokenizer()
        assert tokenizer.feed("<a><b>he") == [
            StartDocument(node_id=0),
            StartElement(tag="a", node_id=1),
            StartElement(tag="b", node_id=2),
        ]
        # Text is held until the next tag decides the coalesced run.
        assert tokenizer.feed("llo</b") == []
        assert tokenizer.feed(">") == [Text(value="hello", node_id=3),
                                       EndElement(tag="b", node_id=2)]
        assert tokenizer.feed("</a>") == [EndElement(tag="a", node_id=1)]
        assert tokenizer.close() == [EndDocument(node_id=0)]

    def test_split_inside_entity_reference(self):
        tokenizer = PushTokenizer()
        events = tokenizer.feed("<a>fish &a")
        events += tokenizer.feed("mp; chips</a>")
        events += tokenizer.close()
        assert [e.value for e in events if isinstance(e, Text)] == \
            ["fish & chips"]

    def test_split_inside_cdata_marker(self):
        tokenizer = PushTokenizer()
        events = tokenizer.feed("<a><![CDA")
        events += tokenizer.feed("TA[x <y>]]")
        events += tokenizer.feed("></a>")
        events += tokenizer.close()
        assert [e.value for e in events if isinstance(e, Text)] == ["x <y>"]

    def test_bytes_split_inside_multibyte_sequence(self):
        encoded = "<a>π</a>".encode("utf-8")
        tokenizer = PushTokenizer()
        events = []
        for index in range(len(encoded)):
            events += tokenizer.feed(encoded[index:index + 1])
        events += tokenizer.close()
        assert [e.value for e in events if isinstance(e, Text)] == ["π"]

    def test_mixed_str_and_bytes_chunks(self):
        tokenizer = PushTokenizer()
        events = tokenizer.feed(b"<a>x")
        events += tokenizer.feed("y</a>")
        events += tokenizer.close()
        assert [e.value for e in events if isinstance(e, Text)] == ["xy"]

    def test_str_chunk_inside_split_multibyte_sequence_rejected(self):
        tokenizer = PushTokenizer()
        tokenizer.feed("<a>".encode("utf-8") + "π".encode("utf-8")[:1])
        with pytest.raises(XMLSyntaxError):
            tokenizer.feed("x")

    def test_truncated_utf8_at_close(self):
        tokenizer = PushTokenizer()
        tokenizer.feed("<a>x</a>".encode("utf-8") + "π".encode("utf-8")[:1])
        with pytest.raises(XMLSyntaxError):
            tokenizer.close()

    def test_unterminated_constructs_reported_at_close(self):
        for fragment, message in [
            ("<a><![CDATA[x", "CDATA"),
            ("<a><!-- x", "comment"),
            ("<a><?pi x", "processing instruction"),
            ("<a><b", "unterminated tag"),
            ("<a><b>", "unclosed element"),
        ]:
            tokenizer = PushTokenizer()
            tokenizer.feed(fragment)
            with pytest.raises(XMLSyntaxError, match=message):
                tokenizer.close()

    def test_feed_after_close_rejected(self):
        tokenizer = PushTokenizer()
        tokenizer.feed("<a/>")
        tokenizer.close()
        assert tokenizer.closed
        with pytest.raises(XMLSyntaxError):
            tokenizer.feed("<b/>")
        with pytest.raises(XMLSyntaxError):
            tokenizer.close()

    def test_mismatched_closing_tag_reported_at_feed_time(self):
        tokenizer = PushTokenizer()
        tokenizer.feed("<a><b>")
        with pytest.raises(XMLSyntaxError, match="mismatched"):
            tokenizer.feed("</a>")


class TestParseXML:
    def test_figure1_document_shape(self):
        doc = parse_xml(FIGURE1_XML)
        assert doc.document_element.tag == "journal"
        tags = [node.tag for node in doc.elements()]
        assert tags == ["journal", "title", "editor", "authors", "name", "name", "price"]

    def test_sax_front_end_matches_builtin_tokenizer(self):
        ours = parse_xml(FIGURE1_XML)
        sax = parse_xml(FIGURE1_XML, use_sax=True)
        assert [(n.kind, n.tag, n.value) for n in ours] == \
               [(n.kind, n.tag, n.value) for n in sax]

    def test_sax_event_ids_match_builtin(self):
        ours = [(type(e).__name__, getattr(e, "node_id", None))
                for e in iter_events(FIGURE1_XML)]
        sax = [(type(e).__name__, getattr(e, "node_id", None))
               for e in iter_events_sax(FIGURE1_XML)]
        assert ours == sax
