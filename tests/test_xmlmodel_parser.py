"""Unit tests for XML parsing (repro.xmlmodel.parser)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.datasets import FIGURE1_XML
from repro.xmlmodel.events import EndElement, StartDocument, StartElement, Text
from repro.xmlmodel.parser import iter_events, iter_events_sax, parse_xml


class TestTokenizer:
    def test_simple_document_events(self):
        events = list(iter_events("<a><b>hi</b></a>"))
        kinds = [type(event).__name__ for event in events]
        assert kinds == ["StartDocument", "StartElement", "StartElement",
                         "Text", "EndElement", "EndElement", "EndDocument"]

    def test_node_ids_are_document_order(self):
        events = list(iter_events("<a><b>hi</b><c/></a>"))
        starts = [e for e in events if isinstance(e, (StartElement, Text))]
        assert [e.node_id for e in starts] == [1, 2, 3, 4]

    def test_self_closing_element(self):
        events = list(iter_events("<a><price /></a>"))
        tags = [e.tag for e in events if isinstance(e, StartElement)]
        assert tags == ["a", "price"]

    def test_whitespace_only_text_dropped_by_default(self):
        events = list(iter_events("<a>\n  <b/>\n</a>"))
        assert not [e for e in events if isinstance(e, Text)]

    def test_whitespace_kept_on_request(self):
        events = list(iter_events("<a> <b/> </a>", keep_whitespace=True))
        assert [e for e in events if isinstance(e, Text)]

    def test_entities_decoded(self):
        events = list(iter_events("<a>x &lt; y &amp; z &#65;</a>"))
        text = [e for e in events if isinstance(e, Text)][0]
        assert text.value == "x < y & z A"

    def test_comments_and_declaration_ignored(self):
        xml = "<?xml version='1.0'?><!-- hi --><a><b/></a>"
        events = list(iter_events(xml))
        tags = [e.tag for e in events if isinstance(e, StartElement)]
        assert tags == ["a", "b"]

    def test_attributes_are_dropped(self):
        doc = parse_xml('<a id="1"><b name="x"/></a>')
        assert doc.document_element.tag == "a"
        assert len(doc) == 3


class TestWellFormedness:
    def test_mismatched_closing_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><b></a></b>"))

    def test_unclosed_element(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><b>"))

    def test_stray_closing_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("</a>"))

    def test_unterminated_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><b"))

    def test_unknown_entity(self):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a>&nope;</a>"))


class TestParseXML:
    def test_figure1_document_shape(self):
        doc = parse_xml(FIGURE1_XML)
        assert doc.document_element.tag == "journal"
        tags = [node.tag for node in doc.elements()]
        assert tags == ["journal", "title", "editor", "authors", "name", "name", "price"]

    def test_sax_front_end_matches_builtin_tokenizer(self):
        ours = parse_xml(FIGURE1_XML)
        sax = parse_xml(FIGURE1_XML, use_sax=True)
        assert [(n.kind, n.tag, n.value) for n in ours] == \
               [(n.kind, n.tag, n.value) for n in sax]

    def test_sax_event_ids_match_builtin(self):
        ours = [(type(e).__name__, getattr(e, "node_id", None))
                for e in iter_events(FIGURE1_XML)]
        sax = [(type(e).__name__, getattr(e, "node_id", None))
               for e in iter_events_sax(FIGURE1_XML)]
        assert ours == sax
