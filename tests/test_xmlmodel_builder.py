"""Unit tests for event ⇄ document conversion (repro.xmlmodel.builder)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.datasets import figure1_document
from repro.xmlmodel.builder import build_document, document_events
from repro.xmlmodel.document import element, text, Document
from repro.xmlmodel.events import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
)


class TestBuildDocument:
    def test_round_trip_via_events(self):
        original = figure1_document()
        rebuilt = build_document(document_events(original))
        assert [(n.kind, n.tag, n.value) for n in original] == \
               [(n.kind, n.tag, n.value) for n in rebuilt]

    def test_build_from_hand_written_events(self):
        events = [
            StartDocument(),
            StartElement("a", 1),
            Text("hi", 2),
            EndElement("a", 1),
            EndDocument(),
        ]
        doc = build_document(events)
        assert doc.document_element.tag == "a"
        assert doc.node_at(2).value == "hi"

    def test_mismatched_end_raises(self):
        events = [StartDocument(), StartElement("a", 1), EndElement("b", 1), EndDocument()]
        with pytest.raises(XMLSyntaxError):
            build_document(events)

    def test_unclosed_element_raises(self):
        events = [StartDocument(), StartElement("a", 1), EndDocument()]
        with pytest.raises(XMLSyntaxError):
            build_document(events)

    def test_stray_end_element_raises(self):
        events = [StartDocument(), EndElement("a", 1), EndDocument()]
        with pytest.raises(XMLSyntaxError):
            build_document(events)


class TestDocumentEvents:
    def test_event_node_ids_are_document_positions(self):
        doc = figure1_document()
        starts = [e for e in document_events(doc)
                  if isinstance(e, (StartElement, Text))]
        assert [e.node_id for e in starts] == [n.position for n in doc.nodes[1:]]

    def test_events_nest_properly(self):
        doc = Document.from_tree(element("a", element("b", text("x")), element("c")))
        depth = 0
        for event in document_events(doc):
            if isinstance(event, StartElement):
                depth += 1
            elif isinstance(event, EndElement):
                depth -= 1
                assert depth >= 0
        assert depth == 0

    def test_start_and_end_document_bracket_the_stream(self):
        doc = figure1_document()
        events = list(document_events(doc))
        assert isinstance(events[0], StartDocument)
        assert isinstance(events[-1], EndDocument)
