"""Tests for the DOM and buffering baselines (repro.streaming.*_baseline)."""

from repro.streaming import buffered_evaluate, dom_evaluate, stream_evaluate
from repro.rewrite import remove_reverse_axes
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import journal_document


class TestDOMBaseline:
    def test_supports_reverse_axes(self, figure1):
        result = dom_evaluate("/descendant::price/preceding::name",
                              document_events(figure1))
        assert result.node_ids == [7, 9]

    def test_stores_the_whole_document(self, figure1):
        result = dom_evaluate("/descendant::name", document_events(figure1))
        assert result.stats.nodes_stored == len(figure1)
        assert result.stats.nodes_seen == len(figure1)

    def test_agrees_with_streaming_on_forward_paths(self, catalogue):
        path = "/descendant::article[child::authors/child::name]/child::title"
        stream = stream_evaluate(path, document_events(catalogue))
        dom = dom_evaluate(path, document_events(catalogue))
        assert stream.node_ids == dom.node_ids


class TestBufferedBaseline:
    def test_supports_reverse_axes(self, figure1):
        result = buffered_evaluate("/descendant::price/preceding::name",
                                   document_events(figure1))
        assert result.node_ids == [7, 9]

    def test_prunes_text_when_possible(self, catalogue):
        full = dom_evaluate("/descendant::name/parent::authors",
                            document_events(catalogue))
        pruned = buffered_evaluate("/descendant::name/parent::authors",
                                   document_events(catalogue))
        assert pruned.node_ids == full.node_ids
        assert pruned.stats.nodes_stored < full.stats.nodes_stored

    def test_keeps_text_when_the_query_needs_it(self, figure1):
        result = buffered_evaluate("/descendant::name/child::text()",
                                   document_events(figure1))
        assert result.node_ids == [8, 10]
        assert result.stats.nodes_stored == len(figure1)

    def test_keeps_text_for_value_joins(self, figure1):
        result = buffered_evaluate(
            "/descendant::editor[self::node() = /descendant::name]",
            document_events(figure1))
        assert result.node_ids == [4]


class TestMemoryComparison:
    def test_streaming_uses_less_memory_than_dom_on_large_documents(self):
        document = journal_document(journals=100, articles_per_journal=5,
                                    authors_per_article=3)
        forward = remove_reverse_axes("/descendant::price/preceding::name",
                                      ruleset="ruleset2")
        stream = stream_evaluate(forward, document_events(document))
        dom = dom_evaluate("/descendant::price/preceding::name",
                           document_events(document))
        assert stream.node_ids == dom.node_ids
        assert stream.stats.memory_units < dom.stats.memory_units

    def test_ruleset2_output_streams_cheaper_than_ruleset1(self):
        # Section 4 "Comparison": RuleSet1 output carries joins, RuleSet2's
        # does not; the join sides have to be buffered, so RuleSet2 wins.
        document = journal_document(journals=50, articles_per_journal=4,
                                    authors_per_article=2)
        query = "/descendant::price/preceding::name"
        with_joins = stream_evaluate(
            remove_reverse_axes(query, ruleset="ruleset1"),
            document_events(document))
        join_free = stream_evaluate(
            remove_reverse_axes(query, ruleset="ruleset2"),
            document_events(document))
        assert with_joins.node_ids == join_free.node_ids
        assert join_free.stats.memory_units < with_joins.stats.memory_units
