"""Shared fixtures for the test suite."""

import os

import pytest
from hypothesis import settings

from repro.datasets import figure1_document, two_journal_document
from repro.xmlmodel.generator import RandomDocumentPool, journal_document

# Bounded profile for property tests on CI: no wall-clock deadline (shared
# runners are noisy) and a fixed, moderate example budget so the suite's
# runtime is predictable.  Tests that pin their own ``max_examples`` via
# ``@settings`` keep their explicit budget.  Select with HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", deadline=None, max_examples=40,
                          derandomize=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(params=["expectations", "dfa"])
def backend(request):
    """Both structural dispatch backends of the streaming engine.

    The differential regression suites (engine, broker, attribute
    end-to-end) are parametrized over this fixture so every case pins the
    lazy-DFA automaton against the expectation engine; tests about
    engine-internal counters pin ``backend="expectations"`` explicitly
    instead of using the fixture.
    """
    return request.param


@pytest.fixture
def figure1():
    """The document of Figure 1 of the paper."""
    return figure1_document()


@pytest.fixture
def two_journals():
    """A two-journal catalogue (second journal has no title)."""
    return two_journal_document()


@pytest.fixture
def catalogue():
    """A mid-sized journal catalogue used for evaluation tests."""
    return journal_document(journals=4, articles_per_journal=2, authors_per_article=2)


@pytest.fixture(scope="session")
def document_pool():
    """A pool of random documents used for empirical equivalence checks."""
    return RandomDocumentPool(seeds=range(6), max_depth=4, max_children=3).documents()
