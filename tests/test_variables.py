"""Tests for the variable-based rewriting extension (repro.rewrite.variables)."""

import pytest

from repro.errors import RRJoinError, UnsupportedPathError
from repro.rewrite import rare
from repro.rewrite.variables import (
    ForRewrite,
    VariableReference,
    evaluate_for,
    for_to_string,
    rewrite_with_variables,
)
from repro.semantics.evaluator import evaluate
from repro.xpath import analysis
from repro.xpath.parser import parse_xpath


def assert_for_rewrite_equivalent(expression, documents, contexts=None):
    """The ForRewrite must select the same nodes as the original path."""
    original = parse_xpath(expression)
    rewritten = rewrite_with_variables(expression)
    assert analysis.count_reverse_steps(rewritten.sequence) == 0
    assert analysis.count_reverse_steps(rewritten.body) == 0
    for document in documents:
        nodes = contexts if contexts is not None else document.nodes
        for context in nodes:
            expected = [n.position for n in evaluate(original, document, context)]
            actual = [n.position for n in evaluate_for(rewritten, document, context)]
            assert actual == expected, (
                f"{expression} at {context.label()}: {actual} != {expected}")


class TestRelativePaths:
    def test_relative_reverse_path(self, document_pool):
        assert_for_rewrite_equivalent("parent::a", document_pool[:4])

    def test_relative_mixed_path(self, document_pool):
        assert_for_rewrite_equivalent("child::a/preceding-sibling::b", document_pool[:4])

    def test_relative_path_with_qualifier(self, document_pool):
        assert_for_rewrite_equivalent("ancestor::a[child::b]", document_pool[:4])

    def test_sequence_binds_the_context_node(self):
        rewritten = rewrite_with_variables("parent::a")
        assert for_to_string(rewritten.sequence) == "self::node()"


class TestRRJoins:
    def test_rare_rejects_rr_join_but_variables_handle_it(self, document_pool):
        expression = "/descendant::a[child::b == preceding::b]"
        with pytest.raises(RRJoinError):
            rare(expression)
        assert_for_rewrite_equivalent(expression, document_pool[:4],
                                      contexts=None)

    def test_value_rr_join(self, document_pool):
        expression = "/descendant::a[self::* = preceding::*]"
        assert_for_rewrite_equivalent(expression, document_pool[:4])

    def test_rr_join_with_following_steps(self, document_pool):
        expression = "/descendant::a[child::b == preceding::b]/child::c"
        assert_for_rewrite_equivalent(expression, document_pool[:4])


class TestUniformInterface:
    def test_plain_absolute_path_is_bound_to_root(self, figure1):
        rewritten = rewrite_with_variables("/descendant::price/preceding::name")
        assert isinstance(rewritten, ForRewrite)
        result = [n.position for n in evaluate_for(rewritten, figure1)]
        assert result == [7, 9]

    def test_relative_union_rejected(self):
        with pytest.raises(UnsupportedPathError):
            rewrite_with_variables("parent::a | parent::b")

    def test_rendering_mentions_the_variable(self):
        rewritten = rewrite_with_variables("parent::a")
        rendered = for_to_string(rewritten)
        assert rendered.startswith(f"for ${rewritten.variable} in ")

    def test_unbound_variable_raises(self, figure1):
        stray = VariableReference(absolute=True, steps=(), variable="nope")
        with pytest.raises(UnsupportedPathError):
            evaluate_for(ForRewrite(variable="x", sequence=parse_xpath("/"),
                                    body=stray), figure1)
