"""End-to-end tests of the attribute extension.

The attribute axis is an extension beyond the paper's fragment (Section 2
leaves attributes out), added because real SDI subscription workloads are
dominated by attribute-qualified queries.  This suite pins the extension at
every layer and, crucially, *differentially*: the streaming engine, the DOM
evaluator, the rewrite rule sets and both XML front ends must agree on every
attribute-bearing document and query.
"""

import pytest

from repro.errors import XPathSyntaxError
from repro.rewrite import remove_reverse_axes
from repro.semantics import paths_equivalent_on
from repro.semantics.evaluator import select_positions
from repro.streaming import DocumentBroker, SubscriptionIndex, stream_evaluate
from repro.workloads.queries import attribute_subscription_workload
from repro.xmlmodel.builder import build_document, document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.generator import (
    RandomDocumentPool,
    item_feed_document,
    random_document,
)
from repro.xmlmodel.parser import iter_events, parse_xml
from repro.xmlmodel.serialize import to_xml
from repro.xpath import analysis, parse_xpath, to_string
from repro.xpath.cache import QueryCache


@pytest.fixture(scope="module")
def feed():
    return item_feed_document(items=12, seed=4)


@pytest.fixture(scope="module")
def feed_events(feed):
    return list(document_events(feed))


# ---------------------------------------------------------------------------
# Data model: attribute nodes and document order
# ---------------------------------------------------------------------------

class TestAttributeNodes:
    def test_positions_follow_the_owner(self):
        doc = Document.from_tree(
            element("a", element("b"), attributes={"p": "1", "q": "2"}))
        kinds = [(node.position, node.kind.value, node.tag)
                 for node in doc.nodes]
        assert kinds == [(0, "root", None), (1, "element", "a"),
                         (2, "attribute", "p"), (3, "attribute", "q"),
                         (4, "element", "b")]

    def test_attribute_parent_and_string_value(self):
        doc = parse_xml('<a id="42"/>')
        attribute = doc.node_at(2)
        assert attribute.is_attribute
        assert attribute.parent is doc.document_element
        assert attribute.text_content() == "42"
        # Attribute values do not leak into the element's string value.
        assert doc.document_element.text_content() == ""

    def test_subtree_interval_covers_attributes(self):
        doc = parse_xml('<a id="1"><b/></a>')
        owner = doc.document_element
        attribute = doc.node_at(2)
        assert owner.is_ancestor_of(attribute)
        assert not attribute.is_ancestor_of(owner)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            element("a", attributes=[("x", "1"), ("x", "2")])

    def test_serializer_round_trip(self):
        doc = Document.from_tree(
            element("a",
                    element("b", text("t"), attributes={"q": 'say "hi"'}),
                    attributes={"id": "1", "exp": "2>3 & <4"}))
        reparsed = parse_xml(to_xml(doc, indent=0))
        assert [(n.kind, n.tag, n.value) for n in reparsed] == \
            [(n.kind, n.tag, n.value) for n in doc]

    def test_serializer_preserves_whitespace_in_values(self):
        # Literal tab/newline in a value must come back intact across one
        # serialize/parse cycle (emitted as character references, which
        # attribute-value normalization leaves alone).
        doc = Document.from_tree(element("a", attributes={"x": "p\tq\nr"}))
        reparsed = parse_xml(to_xml(doc, indent=0))
        assert reparsed.document_element.get_attribute("x") == "p\tq\nr"

    def test_document_events_round_trip(self, feed, feed_events):
        rebuilt = build_document(feed_events)
        assert [(n.kind, n.tag, n.value) for n in rebuilt] == \
            [(n.kind, n.tag, n.value) for n in feed]
        # Positions agree 1:1, so streamed node ids mean the same thing in
        # both numberings.
        assert [n.position for n in rebuilt] == [n.position for n in feed]

    def test_generator_emits_attributes(self, feed):
        stats = feed.stats()
        assert stats["attributes"] > 2 * 12  # id + category (+ featured)
        assert feed.stats()["elements"] == 1 + 3 * 12

    def test_random_document_attribute_probability(self):
        with_attrs = random_document(attribute_probability=0.8, seed=3)
        without = random_document(attribute_probability=0.0, seed=3)
        assert with_attrs.stats()["attributes"] > 0
        assert without.stats()["attributes"] == 0


# ---------------------------------------------------------------------------
# Language front end
# ---------------------------------------------------------------------------

class TestAttributeSyntax:
    @pytest.mark.parametrize("abbreviated, explicit", [
        ("//item/@id", "/descendant-or-self::node()/child::item/attribute::id"),
        ("/a/@*", "/child::a/attribute::*"),
        ("/a[@id]", "/child::a[attribute::id]"),
        ('/a[@id="42"]', '/child::a[attribute::id = "42"]'),
    ])
    def test_abbreviations(self, abbreviated, explicit):
        assert to_string(parse_xpath(abbreviated)) == explicit
        assert parse_xpath(abbreviated) == parse_xpath(explicit)

    def test_serializer_round_trip(self):
        for query in ("/descendant::item/attribute::id",
                      '/child::a[attribute::kind = "x" and child::b]',
                      '/child::a["v" = attribute::id]'):
            assert to_string(parse_xpath(to_string(parse_xpath(query)))) == \
                to_string(parse_xpath(query))

    def test_literal_quote_styles(self):
        assert to_string(parse_xpath("/a[@x='it\"s']")) == \
            "/child::a[attribute::x = 'it\"s']"

    def test_node_identity_join_rejects_literals(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath('/a[@x == "v"]')

    def test_analysis_helpers(self):
        path = parse_xpath('//item[@id="42"]/price')
        assert analysis.has_attribute_steps(path)
        assert analysis.count_attribute_steps(path) == 1
        assert analysis.summarize(path)["attribute_steps"] == 1
        plain = parse_xpath("/descendant::price")
        assert not analysis.has_attribute_steps(plain)
        # A literal alone (even without an attribute step) marks the
        # expression as using the extension.
        assert analysis.has_attribute_steps(parse_xpath('/a[. = "v"]'))


# ---------------------------------------------------------------------------
# Streaming == DOM (the differential acceptance bar)
# ---------------------------------------------------------------------------

class TestStreamingEqualsDom:
    def test_attribute_workload(self, feed, feed_events, backend):
        cache = QueryCache()
        for query in attribute_subscription_workload(60, seed=5, item_ids=12):
            compiled = cache.compile(query)
            expected = select_positions(parse_xpath(query), feed)
            got = stream_evaluate(compiled, feed_events,
                                  backend=backend).node_ids
            assert got == expected, (query, got, expected)

    def test_attribute_steps_at_every_position(self, feed, feed_events,
                                               backend):
        for query in ("//item/@id",
                      "/descendant::item/attribute::*",
                      "//item/@id/self::node()",
                      '//item[@id="7"]/@category',
                      "//price[@currency][. = //price/text()]"):
            expected = select_positions(parse_xpath(query), feed)
            assert stream_evaluate(query, feed_events,
                                   backend=backend).node_ids == expected

    def test_subscription_index_and_text_front_end(self, feed, backend):
        # End to end through the *text* front end: serialize, re-tokenize
        # (attributes parsed from the tags), match.
        xml_text = to_xml(feed, indent=0)
        events = list(iter_events(xml_text))
        subscriptions = {
            "by-id": '//item[@id="3"]/price',
            "by-category": '//item[@category="music"]',
            "ids": "//item/@id",
            "reverse": '//price[@currency="EUR"]/parent::item',
        }
        index = SubscriptionIndex(subscriptions)
        result = index.evaluate(iter(events), backend=backend)
        rebuilt = build_document(iter(events))
        for row in result:
            expected = select_positions(parse_xpath(subscriptions[row.key]),
                                        rebuilt)
            assert row.node_ids == expected, row.key

    def test_broker_with_chunked_attribute_documents(self, feed, backend):
        xml_text = to_xml(feed, indent=0)
        chunks = [xml_text[i:i + 17] for i in range(0, len(xml_text), 17)]
        broker = DocumentBroker({
            "books": '//item[@category="books"]',
            "flagged": '//item[@featured="yes"]/title',
        }, backend=backend)
        result = broker.submit("doc-1", chunks)
        assert result["books"].node_ids == \
            select_positions(parse_xpath('//item[@category="books"]'), feed)
        # The reused session leaves nothing behind (attribute expectations
        # expire within their own StartElement event).
        sizes = broker.session.registry_sizes()
        assert all(size == 0 for size in sizes.values()), sizes

    def test_attribute_qualifiers_decide_at_start_element(self, feed_events,
                                                          backend):
        # Verdict-only matching halts as soon as every subscription is
        # decided; an [@a="v"] qualifier is decided AT the StartElement that
        # carries the attribute, so the session never consumes the rest.
        index = SubscriptionIndex({"first": '//item[@id="0"]'})
        matcher = index.matcher(matches_only=True, backend=backend)
        result = matcher.process(feed_events)
        assert result["first"].matched
        assert matcher.halted
        assert matcher.stats.events_skipped > 0

    def test_attributes_seen_counter(self, feed, feed_events, backend):
        result = stream_evaluate("//item/@id", feed_events, backend=backend)
        assert result.stats.attributes_seen == feed.stats()["attributes"]


# ---------------------------------------------------------------------------
# Rewriting: reverse axes around attribute steps
# ---------------------------------------------------------------------------

ATTRIBUTE_REVERSE_QUERIES = [
    "//item/@id/parent::item",
    "/descendant::a/@id/ancestor::b",
    "/descendant::a/@id/ancestor-or-self::node()",
    "//a/@kind/preceding::b",
    "//a/@kind/preceding-sibling::*",
    "/descendant::a/@id[parent::b]",
    "/descendant::a/@id[ancestor::b]",
    "/descendant::a/@kind[ancestor-or-self::node()]",
    "/descendant::a/@kind[preceding::b]",
    "/descendant::a/@id[parent::b or ancestor::a]",
    "/descendant::a/@id[parent::b and parent::a]",
    "/descendant::a/@id[self::node()/parent::b]",
    "/descendant::a/@id[child::b/parent::c]",
    '/descendant::a/@id[parent::b = "x"]',
    "/a/@id/parent::a/@kind",
    "/attribute::a/parent::node()",
]


@pytest.fixture(scope="module")
def attribute_pool():
    pool = RandomDocumentPool(seeds=range(5),
                              attribute_probability=0.6).documents()
    pool.append(item_feed_document(items=4, seed=6))
    return pool


class TestAttributeRewriteLemmas:
    @pytest.mark.parametrize("ruleset", ["ruleset1", "ruleset2"])
    @pytest.mark.parametrize("query", ATTRIBUTE_REVERSE_QUERIES)
    def test_equivalent_and_reverse_free(self, query, ruleset, attribute_pool):
        path = parse_xpath(query)
        rewritten = remove_reverse_axes(path, ruleset=ruleset)
        assert not analysis.has_reverse_steps(rewritten)
        report = paths_equivalent_on(path, rewritten, attribute_pool)
        assert report.equivalent, report.describe()

    def test_rewritten_queries_stream(self, attribute_pool):
        # The full pipeline: rewrite away a reverse step that *leaves* an
        # attribute node, then answer it in one streaming pass.
        document = attribute_pool[-1]
        events = list(document_events(document))
        original = parse_xpath("//item/@id/parent::item/title")
        rewritten = remove_reverse_axes(original)
        assert stream_evaluate(rewritten, events).node_ids == \
            select_positions(original, document)
