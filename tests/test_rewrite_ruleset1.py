"""Unit tests for RuleSet1 (repro.rewrite.ruleset1)."""

import pytest

from repro.errors import RewriteError
from repro.rewrite import rare, remove_reverse_axes
from repro.rewrite.ruleset1 import RuleSet1, _anchor_axis
from repro.semantics.equivalence import paths_equivalent_on
from repro.xpath import analysis
from repro.xpath.ast import NodeTest
from repro.xpath.axes import Axis
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


def rewrite(expression):
    return rare(expression, ruleset="ruleset1")


class TestRule2:
    def test_spine_reverse_step_becomes_join(self):
        result = rewrite("/descendant::price/preceding::name")
        assert to_string(result.result) == \
            "/descendant::name[following::price == /descendant::price]"
        assert result.trace is None
        assert result.applications == 1

    def test_rule_2a_label_for_single_step_prefix(self):
        result = rare("/descendant::price/preceding::name", ruleset="ruleset1",
                      collect_trace=True)
        assert result.trace.rules_applied() == ["Rule (2a)"]

    def test_rule_2_label_for_longer_prefix(self):
        result = rare("/descendant::journal/child::price/preceding::name",
                      ruleset="ruleset1", collect_trace=True)
        assert "Rule (2)" in result.trace.rules_applied()

    def test_join_context_path_repeats_prefix_with_qualifiers(self):
        result = rewrite(
            "/descendant::journal[child::title]/descendant::price/preceding::name")
        assert to_string(result.result) == (
            "/descendant::name[following::price == "
            "/descendant::journal[child::title]/descendant::price]")

    def test_symmetric_axis_is_used(self):
        result = rewrite("/descendant::name/ancestor::journal")
        rendered = to_string(result.result)
        assert "descendant::name" in rendered
        assert "ancestor" not in rendered

    def test_output_has_one_join_per_reverse_step(self):
        result = rewrite("/descendant::a/parent::b/preceding::c")
        assert analysis.count_joins(result.result) == 2
        assert analysis.count_reverse_steps(result.result) == 0


class TestRule1:
    def test_qualifier_reverse_head_becomes_join_on_self(self):
        result = rewrite("/descendant::editor[parent::journal]")
        assert to_string(result.result) == \
            "/descendant::editor[/descendant::journal/child::node() == self::node()]"

    def test_trailing_steps_become_nested_qualifier(self):
        result = rewrite("/descendant::a[parent::b/child::c]")
        rendered = to_string(result.result)
        assert "/descendant::b[child::c]/child::node() == self::node()" in rendered

    def test_figure_3_output(self):
        result = rewrite("/descendant::name/preceding::title[ancestor::journal]")
        assert to_string(result.result) == (
            "/descendant::title"
            "[/descendant::journal/descendant::node() == self::node()]"
            "[following::name == /descendant::name]")


class TestRootAnchorRefinement:
    def test_anchor_widened_when_root_can_match(self):
        assert _anchor_axis(Axis.PARENT, NodeTest.node()) is Axis.DESCENDANT_OR_SELF
        assert _anchor_axis(Axis.ANCESTOR, NodeTest.node()) is Axis.DESCENDANT_OR_SELF

    def test_anchor_not_widened_for_named_tests(self):
        assert _anchor_axis(Axis.PARENT, NodeTest.tag("a")) is Axis.DESCENDANT
        assert _anchor_axis(Axis.PRECEDING, NodeTest.node()) is Axis.DESCENDANT

    def test_parent_node_test_selects_root_correctly(self, document_pool):
        original = parse_xpath("/descendant::a/parent::node()")
        rewritten = remove_reverse_axes(original, ruleset="ruleset1")
        report = paths_equivalent_on(original, rewritten, document_pool)
        assert report.equivalent, report.describe()

    def test_ancestor_or_self_handled_without_decomposition(self, document_pool):
        original = parse_xpath("/descendant::a/ancestor-or-self::node()")
        result = rare(original, ruleset="ruleset1", collect_trace=True)
        assert "Lemma 3.1.6" not in result.trace.rules_applied()
        report = paths_equivalent_on(original, result.result, document_pool)
        assert report.equivalent, report.describe()


class TestLinearBehaviour:
    def test_output_length_linear_in_reverse_chain(self):
        lengths = []
        for size in (1, 2, 3, 4, 5):
            path = "/descendant::a" + "/parent::b" * size
            result = rewrite(path)
            lengths.append(analysis.path_length(result.result))
            assert result.applications == size
        differences = [b - a for a, b in zip(lengths, lengths[1:])]
        assert len(set(differences)) == 1  # constant growth per step

    def test_no_union_terms_are_produced(self):
        result = rewrite("/descendant::a/parent::b/ancestor::c/preceding::d")
        assert analysis.union_term_count(result.result) == 1


class TestGuards:
    def test_spine_rule_requires_absolute_path(self):
        ruleset = RuleSet1()
        with pytest.raises(RewriteError):
            ruleset.spine_rule(parse_xpath("child::a/parent::b"), 1)

    def test_local_rule_requires_reverse_head(self):
        ruleset = RuleSet1()
        with pytest.raises(RewriteError):
            ruleset.local_qualifier_rule(parse_xpath("child::a/parent::b"))

    def test_qualifier_head_rule_not_used(self):
        ruleset = RuleSet1()
        with pytest.raises(RewriteError):
            ruleset.qualifier_head_rule(parse_xpath("/descendant::a[parent::b]"), 0, 0)
