"""Unit tests of the pruned-buffer baseline (repro.streaming.buffered)."""

from dataclasses import dataclass

from repro.streaming import buffered_evaluate, dom_evaluate
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.events import StartElement


def _events(tree):
    return list(document_events(Document.from_tree(tree)))


class TestPruning:
    def test_text_is_dropped_when_the_path_cannot_observe_it(self):
        events = _events(element("a", element("b", text("hello")),
                                 element("b", text("world"))))
        result = buffered_evaluate("/descendant::b", events)
        # Both text nodes are pruned from the buffer but still counted as seen.
        assert result.stats.nodes_stored == result.stats.nodes_seen - 2
        assert len(result.node_ids) == 2

    def test_text_is_kept_for_text_node_tests(self):
        events = _events(element("a", element("b", text("hello"))))
        result = buffered_evaluate("/descendant::text()", events)
        assert result.stats.nodes_stored == result.stats.nodes_seen
        assert len(result.node_ids) == 1

    def test_text_is_kept_for_value_joins(self):
        events = _events(element("a", element("b", text("x")),
                                 element("c", text("x"))))
        result = buffered_evaluate(
            "/descendant::b[self::node() = /descendant::c]", events)
        assert result.stats.nodes_stored == result.stats.nodes_seen
        assert len(result.node_ids) == 1

    def test_pruned_results_use_original_node_ids(self):
        # Text nodes shift element positions; the pruned buffer must map its
        # positions back to the original stream's ids.
        tree = element("a", text("pad"), element("b"), text("pad"),
                       element("b"))
        events = _events(tree)
        pruned = buffered_evaluate("/descendant::b", events)
        dom = dom_evaluate("/descendant::b", events)
        assert pruned.node_ids == dom.node_ids


class TestBufferAccounting:
    def test_nodes_stored_is_the_buffer_high_water_mark(self):
        events = _events(element("a", element("b"), element("c")))
        result = buffered_evaluate("/descendant::*", events)
        # Structural nodes are all kept: root + 3 elements.
        assert result.stats.nodes_stored == 4
        assert result.stats.memory_units >= result.stats.nodes_stored

    def test_reverse_axes_are_supported(self):
        events = _events(element("a", element("b", element("c"))))
        result = buffered_evaluate("/descendant::c/ancestor::b", events)
        dom = dom_evaluate("/descendant::c/ancestor::b", events)
        assert result.node_ids == dom.node_ids != []

    def test_events_counter(self):
        events = _events(element("a", element("b", text("t"))))
        result = buffered_evaluate("/descendant::b", events)
        assert result.stats.events == len(events)


class TestEdgeCases:
    def test_single_element_document(self):
        events = _events(element("a"))
        result = buffered_evaluate("/child::a", events)
        assert result.node_ids == [1]
        assert result.stats.nodes_stored == 2   # root + the element
        assert result.stats.results == 1

    def test_single_element_no_match(self):
        events = _events(element("a"))
        result = buffered_evaluate("/child::b", events)
        assert result.node_ids == []
        assert not result.matched

    def test_root_only_query(self):
        events = _events(element("a"))
        result = buffered_evaluate("/", events)
        assert result.node_ids == [0]


@dataclass(frozen=True)
class EndowedStartElement(StartElement):
    """A StartElement subclass whose class name starts with ``End``.

    Regression guard: event classification used to rely on
    ``hasattr(event, "tag")`` plus ``__class__.__name__.startswith("End")``,
    which misclassified an event like this one as a closing tag and silently
    corrupted the pruned-buffer id mapping.  The ``isinstance`` checks must
    classify by type, not by name.
    """


class TestEventClassification:
    def test_start_element_subclasses_classified_by_type_not_name(self):
        events = _events(element("a", text("pad"), element("b"), element("b")))
        renamed = [
            EndowedStartElement(tag=event.tag, node_id=event.node_id)
            if type(event) is StartElement else event
            for event in events
        ]
        plain = buffered_evaluate("/descendant::b", events)
        subclassed = buffered_evaluate("/descendant::b", renamed)
        assert subclassed.node_ids == plain.node_ids != []
