"""Unit tests for XML serialization (repro.xmlmodel.serialize)."""

from repro.datasets import figure1_document
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import escape_text, to_xml


class TestEscaping:
    def test_escape_special_characters(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_plain_text_unchanged(self):
        assert escape_text("hello") == "hello"


class TestToXML:
    def test_empty_element_self_closes(self):
        doc = Document.from_tree(element("price"))
        assert to_xml(doc) == "<price />"

    def test_text_only_element_inlines_content(self):
        doc = Document.from_tree(element("title", text("databases")))
        assert to_xml(doc) == "<title>databases</title>"

    def test_round_trip_figure1(self):
        doc = figure1_document()
        reparsed = parse_xml(to_xml(doc))
        assert [(n.kind, n.tag, n.value) for n in doc] == \
               [(n.kind, n.tag, n.value) for n in reparsed]

    def test_special_characters_round_trip(self):
        doc = Document.from_tree(element("a", text("x < y & z")))
        reparsed = parse_xml(to_xml(doc))
        assert reparsed.node_at(2).value == "x < y & z"

    def test_compact_mode(self):
        doc = figure1_document()
        compact = to_xml(doc, indent=0)
        assert "\n" not in compact
        assert parse_xml(compact).document_element.tag == "journal"


def _mixed_content_document(pad: str = ""):
    # Text interleaved with elements at several depths, including an
    # element child *between* two text runs and a nested mixed region.
    # ``pad`` adds edge whitespace to the text nodes; the default parser
    # strips it (a parser policy), so only the unpadded document can
    # round-trip through a default parse.
    return Document.from_tree(element(
        "article",
        text("intro" + pad),
        element("em", text("emphasized")),
        text(pad + "middle" + pad),
        element("section",
                text("lead" + pad),
                element("code", text("x<y&z")),
                text(pad + "tail")),
        element("empty"),
        text(pad + "outro")))


class TestMixedContentFidelity:
    """Mixed content must serialize children inline, in document order —
    pretty-printing padding would change the character data on re-parse."""

    def test_compact_round_trip_event_stream_identical(self):
        doc = _mixed_content_document()
        reparsed = parse_xml(to_xml(doc, indent=0))
        assert list(document_events(reparsed)) == list(document_events(doc))

    def test_pretty_mode_renders_mixed_subtrees_inline(self):
        doc = _mixed_content_document()
        pretty = to_xml(doc, indent=2)
        # The whole article is a mixed region: one inline line, no padding
        # injected anywhere inside it.
        assert "\n" not in pretty
        reparsed = parse_xml(pretty)
        assert list(document_events(reparsed)) == list(document_events(doc))

    def test_pretty_mode_still_indents_element_only_content(self):
        doc = Document.from_tree(element(
            "journal",
            element("title", text("xml")),
            element("price")))
        assert to_xml(doc, indent=2) == (
            "<journal>\n  <title>xml</title>\n  <price />\n</journal>")

    def test_mixed_content_order_preserved_around_element(self):
        doc = Document.from_tree(element(
            "p", text("before"), element("b", text("bold")), text("after")))
        assert to_xml(doc, indent=0) == "<p>before<b>bold</b>after</p>"

    def test_padded_text_round_trips_with_keep_whitespace(self):
        # Leading/trailing whitespace inside text is a *parser* policy
        # (stripped by default); with keep_whitespace the serialization is
        # faithful to the original stream, padding included.
        doc = _mixed_content_document(pad=" ")
        reparsed = parse_xml(to_xml(doc, indent=0), keep_whitespace=True)
        assert list(document_events(reparsed)) == list(document_events(doc))
