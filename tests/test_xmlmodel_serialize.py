"""Unit tests for XML serialization (repro.xmlmodel.serialize)."""

from repro.datasets import figure1_document
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import escape_text, to_xml


class TestEscaping:
    def test_escape_special_characters(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_plain_text_unchanged(self):
        assert escape_text("hello") == "hello"


class TestToXML:
    def test_empty_element_self_closes(self):
        doc = Document.from_tree(element("price"))
        assert to_xml(doc) == "<price />"

    def test_text_only_element_inlines_content(self):
        doc = Document.from_tree(element("title", text("databases")))
        assert to_xml(doc) == "<title>databases</title>"

    def test_round_trip_figure1(self):
        doc = figure1_document()
        reparsed = parse_xml(to_xml(doc))
        assert [(n.kind, n.tag, n.value) for n in doc] == \
               [(n.kind, n.tag, n.value) for n in reparsed]

    def test_special_characters_round_trip(self):
        doc = Document.from_tree(element("a", text("x < y & z")))
        reparsed = parse_xml(to_xml(doc))
        assert reparsed.node_at(2).value == "x < y & z"

    def test_compact_mode(self):
        doc = figure1_document()
        compact = to_xml(doc, indent=0)
        assert "\n" not in compact
        assert parse_xml(compact).document_element.tag == "journal"
