"""Unit tests for the rewriting driver itself (repro.rewrite.rewriter).

The driver is exercised indirectly by every rare test; these tests pin down
the behaviours that are easy to get wrong in isolation: which lemma fires for
which structural situation, single-step application semantics
(Definition 4.1), and the error paths.
"""

import pytest

from repro.errors import RewriteError, RRJoinError
from repro.rewrite import RuleSet1, RuleSet2, apply_once
from repro.rewrite.rules import RuleApplication, rule_label
from repro.semantics.equivalence import paths_equivalent_on
from repro.xpath import analysis
from repro.xpath.ast import Bottom
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


def apply(expression, ruleset):
    return apply_once(parse_xpath(expression), ruleset)


class TestSingleApplications:
    def test_no_reverse_step_returns_none(self):
        assert apply("/descendant::a/child::b", RuleSet2()) is None
        assert apply("⊥", RuleSet1()) is None

    def test_each_application_is_an_equivalence(self, document_pool):
        expression = "/descendant::a/following::b/parent::c"
        path = parse_xpath(expression)
        for ruleset in (RuleSet1(), RuleSet2()):
            application = apply_once(path, ruleset)
            assert isinstance(application, RuleApplication)
            report = paths_equivalent_on(path, application.result, document_pool)
            assert report.equivalent, f"{ruleset.name}: {report.describe()}"

    def test_application_targets_the_first_reverse_step(self):
        application = apply("/descendant::a/parent::b/preceding::c", RuleSet2())
        # The parent step is removed first; the preceding step survives.
        assert analysis.count_reverse_steps(application.result) == 1
        assert "preceding::c" in to_string(application.result)

    def test_union_members_are_rewritten_left_to_right(self):
        application = apply("/descendant::a/parent::b | /descendant::c/parent::d",
                            RuleSet2())
        rendered = to_string(application.result)
        assert "parent::b" not in rendered
        assert "parent::d" in rendered


class TestLemmaSelection:
    def test_root_reverse_step_collapses(self):
        application = apply("/ancestor::a", RuleSet1())
        assert isinstance(application.result, Bottom)
        assert application.rule == "Lemma 3.2"

    def test_ancestor_or_self_at_root_decomposes(self):
        application = apply("/ancestor-or-self::node()", RuleSet1())
        assert application.rule == "Lemma 3.1.6"

    def test_and_qualifier_split_for_ruleset2(self):
        application = apply("/descendant::a[child::b and parent::c]", RuleSet2())
        assert application.rule == "Lemma (complex qualifiers)"
        assert "and" not in to_string(application.result)

    def test_and_qualifier_descended_for_ruleset1(self):
        application = apply("/descendant::a[child::b and parent::c]", RuleSet1())
        assert application.rule == "Rule (1)"
        assert " and " in to_string(application.result)

    def test_or_qualifier_split_into_union_for_ruleset2(self):
        application = apply("/descendant::a[parent::b or child::c]/child::d",
                            RuleSet2())
        assert analysis.union_term_count(application.result) == 2

    def test_union_qualifier_normalized(self):
        application = apply("/descendant::a[child::b | parent::c]", RuleSet2())
        assert application.rule == "Lemma (complex qualifiers)"
        assert " or " in to_string(application.result)

    def test_join_with_absolute_operand_pushed_inside(self):
        application = apply("/descendant::a[parent::b = /descendant::c]", RuleSet2())
        assert application.rule == "Lemma 3.1.8"

    def test_reverse_step_inside_absolute_join_operand_descended(self):
        application = apply(
            "/descendant::a[child::b == /descendant::c/parent::d]", RuleSet2())
        assert application.rule.startswith("Rule")
        assert analysis.count_reverse_steps(application.result) == 0

    def test_self_headed_qualifier_hoisted_for_ruleset2(self):
        application = apply("/descendant::a[self::a/parent::b]", RuleSet2())
        assert application.rule == "Lemma (complex qualifiers)"

    def test_qualifier_flattening_for_ruleset1(self):
        application = apply("/descendant::a[child::b/parent::c]", RuleSet1())
        assert application.rule == "Lemma 3.1.5"

    def test_trailing_steps_folded_for_ruleset2_qualifier(self):
        application = apply("/descendant::a[parent::b/child::c]", RuleSet2())
        assert application.rule == "Lemma 3.1.5"


class TestErrorPaths:
    def test_rr_join_raises(self):
        with pytest.raises(RRJoinError):
            apply("/descendant::a[child::b == preceding::c]", RuleSet2())

    def test_relative_reverse_head_raises(self):
        with pytest.raises(RewriteError):
            apply_once(parse_xpath("parent::a/child::b"), RuleSet2())

    def test_rule_label_helper(self):
        assert rule_label(8) == "Rule (8)"
        assert rule_label("2a") == "Rule (2a)"
