"""Unit tests for event-stream re-serialization
(repro.xmlmodel.stream_serialize)."""

import pytest

from repro.datasets import figure1_document
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.events import EndElement, StartElement, Text
from repro.xmlmodel.generator import journal_document
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.stream_serialize import (
    StreamSerializer,
    iter_serialized,
    serialize_events,
)


class TestSerializeEvents:
    def test_agrees_with_compact_to_xml(self):
        for doc in (figure1_document(),
                    journal_document(journals=2, seed=5, with_attributes=True)):
            events = document_events(doc)
            assert serialize_events(events) == to_xml(doc, indent=0).encode()

    def test_empty_element_self_closes(self):
        events = [StartElement("price", 1), EndElement("price", 1)]
        assert serialize_events(events) == b"<price />"

    def test_attributes_rendered_and_escaped(self):
        events = [StartElement("item", 1, (("id", "4"), ("note", 'a"<b'))),
                  EndElement("item", 1)]
        assert (serialize_events(events)
                == b'<item id="4" note="a&quot;&lt;b" />')

    def test_text_escaped(self):
        events = [StartElement("a", 1), Text("x<y&z", 2), EndElement("a", 1)]
        assert serialize_events(events) == b"<a>x&lt;y&amp;z</a>"

    def test_interior_fragment_is_legal(self):
        # A lone text event serializes to its escaped character data — the
        # payload of a text- or attribute-node match.
        assert serialize_events([Text("a < b", 7)]) == b"a &lt; b"

    def test_round_trips_through_parser(self):
        doc = journal_document(journals=3, seed=9, with_attributes=True)
        events = list(document_events(doc))
        reparsed = parse_xml(serialize_events(events).decode())
        assert list(document_events(reparsed)) == events

    def test_mixed_content_document_order(self):
        doc = Document.from_tree(element(
            "p", text("before"), element("b", text("bold")), text("after")))
        assert (serialize_events(document_events(doc))
                == b"<p>before<b>bold</b>after</p>")


class TestStreamSerializer:
    def test_fragments_concatenate_to_full_serialization(self):
        events = list(document_events(figure1_document()))
        serializer = StreamSerializer()
        parts = [serializer.feed(event) for event in events]
        parts.append(serializer.close())
        assert "".join(parts).encode() == serialize_events(events)

    def test_close_flushes_truncated_fragment(self):
        serializer = StreamSerializer()
        out = serializer.feed(StartElement("a", 1))
        assert out == ""
        assert serializer.close() == "<a>"
        # Idempotent once flushed.
        assert serializer.close() == ""

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            StreamSerializer().feed("not an event")


class TestIterSerialized:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_chunks_concatenate_identically(self, chunk_size):
        events = list(document_events(
            journal_document(journals=2, seed=3, with_attributes=True)))
        chunks = list(iter_serialized(events, chunk_size=chunk_size))
        assert b"".join(chunks) == serialize_events(events)
        if chunk_size == 10_000:
            assert len(chunks) == 1

    def test_chunk_boundaries_never_split_utf8(self):
        events = [StartElement("a", 1), Text("héllo wörld" * 10, 2),
                  EndElement("a", 1)]
        for chunk in iter_serialized(events, chunk_size=3):
            chunk.decode("utf-8")  # every chunk is valid UTF-8 on its own

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_serialized([], chunk_size=0))
