"""Integration: rewrite with rare, evaluate on a stream, compare with DOM.

This is the full pipeline the paper proposes: a query with reverse axes is
made reverse-axis free (Section 4) and then answered progressively over a
SAX stream (Section 1's motivation), producing exactly the nodes the
original query selects.
"""

import pytest

from repro.rewrite import remove_reverse_axes
from repro.semantics.evaluator import select_positions
from repro.streaming import stream_evaluate
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import journal_document, random_document
from repro.xpath.parser import parse_xpath

QUERIES = [
    "/descendant::price/preceding::name",
    "/descendant::editor[parent::journal]",
    "/descendant::name/preceding::title[ancestor::journal]",
    "/descendant::journal[child::title]/descendant::price/preceding::name",
    "/descendant::name/ancestor::journal/child::editor",
    "/descendant::price/preceding-sibling::editor",
    "/descendant::name[preceding::editor]",
    "/descendant::article/child::title[ancestor::journal[child::price]]",
    "/descendant::authors/following-sibling::price/preceding::name",
    "//name/../preceding-sibling::editor",
]

DOCUMENTS = [
    journal_document(journals=3, articles_per_journal=2, authors_per_article=2),
    journal_document(journals=6, articles_per_journal=1, authors_per_article=1,
                     with_price=False, seed=3),
    random_document(max_depth=4, max_children=3,
                    tags=("journal", "title", "editor", "authors", "name", "price"),
                    seed=21),
]


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("ruleset", ["ruleset1", "ruleset2"])
def test_rewrite_then_stream_equals_dom_on_original(query, ruleset):
    forward = remove_reverse_axes(query, ruleset=ruleset)
    for document in DOCUMENTS:
        expected = select_positions(parse_xpath(query), document)
        streamed = stream_evaluate(forward, document_events(document))
        assert streamed.node_ids == expected, (
            f"{ruleset}: {query} mismatch on {document!r}")


def test_union_queries_stream_correctly():
    query = "/descendant::title/parent::journal | /descendant::price/preceding::name"
    forward = remove_reverse_axes(query, ruleset="ruleset2")
    for document in DOCUMENTS:
        expected = select_positions(parse_xpath(query), document)
        streamed = stream_evaluate(forward, document_events(document))
        assert streamed.node_ids == expected


def test_streaming_is_single_pass():
    """The engine must consume each event exactly once (no rewind)."""
    document = journal_document(journals=2)
    events = list(document_events(document))
    consumed = []

    def once():
        for event in events:
            consumed.append(event)
            yield event

    forward = remove_reverse_axes("/descendant::price/preceding::name")
    stream_evaluate(forward, once())
    assert len(consumed) == len(events)
