"""Unit tests for the synthetic document generators (repro.xmlmodel.generator)."""

from repro.xmlmodel.generator import (
    DocumentSpec,
    RandomDocumentPool,
    deep_chain_document,
    journal_document,
    random_document,
    wide_document,
)


class TestJournalDocument:
    def test_default_spec_shape(self):
        doc = journal_document()
        assert doc.document_element.tag == "catalogue"
        journals = list(doc.elements("journal"))
        assert len(journals) == DocumentSpec().journals

    def test_overrides(self):
        doc = journal_document(journals=3, articles_per_journal=1,
                               authors_per_article=1, with_price=False)
        assert len(list(doc.elements("journal"))) == 3
        assert len(list(doc.elements("price"))) == 0
        assert len(list(doc.elements("article"))) == 3

    def test_prices_present_by_default(self):
        doc = journal_document(journals=2)
        assert len(list(doc.elements("price"))) == 2

    def test_deterministic_for_same_seed(self):
        one = journal_document(journals=3, seed=5)
        two = journal_document(journals=3, seed=5)
        assert [(n.kind, n.tag, n.value) for n in one] == \
               [(n.kind, n.tag, n.value) for n in two]

    def test_different_seeds_differ(self):
        one = journal_document(journals=3, seed=5)
        two = journal_document(journals=3, seed=6)
        assert [(n.tag, n.value) for n in one] != [(n.tag, n.value) for n in two]


class TestOtherGenerators:
    def test_random_document_is_deterministic(self):
        one = random_document(seed=3)
        two = random_document(seed=3)
        assert [(n.kind, n.tag, n.value) for n in one] == \
               [(n.kind, n.tag, n.value) for n in two]

    def test_random_document_respects_depth(self):
        doc = random_document(max_depth=2, max_children=3, seed=1)
        assert doc.stats()["max_depth"] <= 4

    def test_deep_chain_document_depth(self):
        doc = deep_chain_document(depth=10)
        assert doc.stats()["max_depth"] == 11  # 10 elements + the text leaf

    def test_wide_document_width(self):
        doc = wide_document(width=25)
        assert len(list(doc.elements("item"))) == 25

    def test_pool_contains_varied_shapes(self):
        pool = RandomDocumentPool(seeds=(0, 1)).documents()
        assert len(pool) == 4  # two random + chain + wide
        assert all(len(doc) > 1 for doc in pool)
