"""Tests for the workload generators and benchmark reporting helpers."""

import pytest

from repro.bench.reporting import Table, format_table, growth_ratios, linear_fit
from repro.workloads.documents import STREAMING_DOCUMENTS, streaming_documents
from repro.workloads.queries import (
    PAPER_QUERIES,
    ancestor_chain,
    extraction_workload,
    following_reverse_chain,
    mixed_reverse_path,
    parent_chain,
    preceding_chain,
    random_reverse_path,
    reverse_chain,
)
from repro.xpath import analysis
from repro.xpath.parser import parse_xpath


class TestQueryWorkloads:
    def test_paper_queries_parse(self):
        for query in PAPER_QUERIES:
            path = parse_xpath(query.xpath)
            assert analysis.is_absolute(path)
            if query.expected_ruleset1:
                parse_xpath(query.expected_ruleset1)
            if query.expected_ruleset2:
                parse_xpath(query.expected_ruleset2)

    @pytest.mark.parametrize("factory", [parent_chain, ancestor_chain,
                                         preceding_chain])
    def test_reverse_chains_have_requested_reverse_steps(self, factory):
        for length in (1, 3, 6):
            path = parse_xpath(factory(length))
            assert analysis.count_reverse_steps(path) == length

    def test_reverse_chain_rejects_zero_length(self):
        with pytest.raises(ValueError):
            reverse_chain(0)

    def test_following_reverse_chain_shape(self):
        path = parse_xpath(following_reverse_chain(3))
        assert analysis.count_reverse_steps(path) == 3
        assert analysis.spine_length(path) == 7

    def test_mixed_reverse_path_deterministic(self):
        assert mixed_reverse_path(5) == mixed_reverse_path(5)
        assert parse_xpath(mixed_reverse_path(5))

    def test_random_reverse_paths_are_absolute_and_parse(self):
        for seed in range(20):
            path = parse_xpath(random_reverse_path(seed))
            assert analysis.is_absolute(path)

    def test_extraction_workload_parses_and_is_deterministic(self):
        subscriptions = extraction_workload(50, seed=11)
        assert subscriptions == extraction_workload(50, seed=11)
        for query in subscriptions:
            path = parse_xpath(query)
            assert analysis.is_absolute(path)
            assert analysis.count_reverse_steps(path) == 0

    def test_extraction_workload_mixes_regions_and_leaves(self):
        # With the default nested_probability both shapes must appear:
        # whole-section subscriptions (one step — the containing regions)
        # and leaf-ish two-step subscriptions nesting inside them.
        subscriptions = extraction_workload(100, seed=11)
        step_counts = {query.count("/") for query in subscriptions}
        assert step_counts == {1, 2}

    def test_extraction_workload_rejects_empty(self):
        with pytest.raises(ValueError):
            extraction_workload(0)


class TestDocumentWorkloads:
    def test_scale_ladder_is_increasing(self):
        sizes = [len(workload.build()) for workload in streaming_documents()]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_names_are_unique(self):
        names = [workload.name for workload in STREAMING_DOCUMENTS]
        assert len(names) == len(set(names))


class TestReporting:
    def test_table_rendering(self):
        table = Table("demo", ["a", "bb"])
        table.add_row(1, "x")
        table.add_row(22, "yyy")
        rendered = table.render()
        assert "demo" in rendered
        assert rendered.count("\n") >= 4

    def test_table_rejects_wrong_arity(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_table_alignment(self):
        rendered = format_table("t", ["col"], [["value"]])
        assert "col" in rendered and "value" in rendered

    def test_linear_fit_recovers_slope(self):
        xs = [1, 2, 3, 4, 5]
        ys = [2 * x + 1 for x in xs]
        slope, intercept, r_squared = linear_fit(xs, ys)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r_squared == pytest.approx(1.0)

    def test_linear_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_growth_ratios(self):
        assert growth_ratios([1, 2, 4, 8]) == [2.0, 2.0, 2.0]
        assert growth_ratios([0, 5])[0] == float("inf")
