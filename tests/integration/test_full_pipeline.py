"""Full-pipeline integration tests: XML text → events → rewrite → answers.

These tests exercise the complete public workflow a downstream user follows:
parse real XML text, parse queries written in abbreviated XPath, rewrite them
with both rule sets, evaluate in-memory and over the stream, and cross-check
all answers against each other.
"""

import pytest

from repro import (
    buffered_evaluate,
    dom_evaluate,
    evaluate,
    iter_events,
    parse_xml,
    parse_xpath,
    rare,
    remove_reverse_axes,
    stream_evaluate,
    to_xml,
)
from repro.semantics.evaluator import select_positions
from repro.xmlmodel.generator import journal_document
from repro.xpath import analysis

QUERIES = [
    # abbreviated syntax, reverse axes, qualifiers, joins
    "//price/preceding::name",
    "//name/../preceding-sibling::editor",
    "//journal[title]/descendant::name[preceding::editor]",
    "//article/title[ancestor::journal[child::price]]",
    "/descendant::name[following::price == /descendant::price]",
]


@pytest.fixture(scope="module")
def catalogue_xml():
    document = journal_document(journals=8, articles_per_journal=3,
                                authors_per_article=2, seed=42)
    return to_xml(document)


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("ruleset", ["ruleset1", "ruleset2"])
def test_xml_text_pipeline(catalogue_xml, query, ruleset):
    document = parse_xml(catalogue_xml)
    original = parse_xpath(query)
    expected = select_positions(original, document)

    result = rare(original, ruleset=ruleset)
    assert analysis.count_reverse_steps(result.result) == 0

    streamed = stream_evaluate(result.result, iter_events(catalogue_xml))
    assert streamed.node_ids == expected

    dom = dom_evaluate(original, iter_events(catalogue_xml))
    assert dom.node_ids == expected

    buffered = buffered_evaluate(original, iter_events(catalogue_xml))
    assert buffered.node_ids == expected


def test_answers_are_stable_across_serialization(catalogue_xml):
    document = parse_xml(catalogue_xml)
    reparsed = parse_xml(to_xml(document))
    query = parse_xpath("//journal[title]/editor")
    assert select_positions(query, document) == select_positions(query, reparsed)


def test_rewrite_is_idempotent_on_forward_output():
    for query in QUERIES:
        forward = remove_reverse_axes(query, ruleset="ruleset2")
        again = remove_reverse_axes(forward, ruleset="ruleset2")
        assert again == forward


def test_large_document_pipeline_smoke():
    document = journal_document(journals=150, articles_per_journal=4,
                                authors_per_article=2)
    forward = remove_reverse_axes("//price/preceding::name", ruleset="ruleset2")
    from repro import document_events
    streamed = stream_evaluate(forward, document_events(document))
    in_memory = evaluate(parse_xpath("//price/preceding::name"), document)
    assert streamed.node_ids == [node.position for node in in_memory]
    assert streamed.stats.nodes_stored == 0
