"""Unit tests for the node model (repro.xmlmodel.node)."""

import pytest

from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.node import NodeKind, XMLNode


def build_sample():
    return Document.from_tree(
        element("a", element("b", text("one")), element("c"), text("two"))
    )


class TestNodeConstruction:
    def test_element_requires_tag(self):
        with pytest.raises(ValueError):
            XMLNode(NodeKind.ELEMENT)

    def test_text_requires_value(self):
        with pytest.raises(ValueError):
            XMLNode(NodeKind.TEXT)

    def test_root_carries_no_tag_or_value(self):
        with pytest.raises(ValueError):
            XMLNode(NodeKind.ROOT, tag="a")
        with pytest.raises(ValueError):
            XMLNode(NodeKind.ROOT, value="x")

    def test_text_nodes_cannot_have_children(self):
        node = text("leaf")
        with pytest.raises(ValueError):
            node.append_child(element("a"))


class TestNodeKinds:
    def test_kind_predicates(self):
        doc = build_sample()
        root = doc.root
        assert root.is_root and not root.is_element and not root.is_text
        a = doc.document_element
        assert a.is_element and a.tag == "a"
        leaf = a.children[0].children[0]
        assert leaf.is_text and leaf.value == "one"

    def test_is_leaf(self):
        doc = build_sample()
        a = doc.document_element
        assert not a.is_leaf
        c = a.children[1]
        assert c.is_leaf  # empty element
        assert a.children[2].is_leaf  # text node


class TestDocumentOrder:
    def test_positions_are_preorder(self):
        doc = build_sample()
        labels = [(node.kind, node.position) for node in doc.nodes]
        assert [position for _, position in labels] == list(range(len(doc)))
        # root, a, b, "one", c, "two"
        assert doc.node_at(0).is_root
        assert doc.node_at(1).tag == "a"
        assert doc.node_at(2).tag == "b"
        assert doc.node_at(3).value == "one"
        assert doc.node_at(4).tag == "c"
        assert doc.node_at(5).value == "two"

    def test_precedes(self):
        doc = build_sample()
        assert doc.node_at(2).precedes(doc.node_at(4))
        assert not doc.node_at(4).precedes(doc.node_at(2))

    def test_ancestor_descendant_checks(self):
        doc = build_sample()
        root, a, b = doc.node_at(0), doc.node_at(1), doc.node_at(2)
        one = doc.node_at(3)
        assert root.is_ancestor_of(one)
        assert a.is_ancestor_of(b)
        assert b.is_ancestor_of(one)
        assert one.is_descendant_of(root)
        assert not b.is_ancestor_of(doc.node_at(4))
        assert not a.is_ancestor_of(a)


class TestTraversal:
    def test_iter_descendants_in_document_order(self):
        doc = build_sample()
        a = doc.document_element
        positions = [node.position for node in a.iter_descendants()]
        assert positions == [2, 3, 4, 5]

    def test_iter_descendants_or_self(self):
        doc = build_sample()
        a = doc.document_element
        positions = [node.position for node in a.iter_descendants_or_self()]
        assert positions == [1, 2, 3, 4, 5]

    def test_iter_ancestors(self):
        doc = build_sample()
        one = doc.node_at(3)
        assert [node.position for node in one.iter_ancestors()] == [2, 1, 0]

    def test_sibling_iterators(self):
        doc = build_sample()
        b = doc.node_at(2)
        assert [n.position for n in b.iter_following_siblings()] == [4, 5]
        c = doc.node_at(4)
        assert [n.position for n in c.iter_preceding_siblings()] == [2]

    def test_root_has_no_siblings(self):
        doc = build_sample()
        assert list(doc.root.iter_following_siblings()) == []
        assert list(doc.root.iter_preceding_siblings()) == []


class TestTextContent:
    def test_text_content_concatenates_subtree(self):
        doc = build_sample()
        assert doc.document_element.text_content() == "onetwo"
        assert doc.node_at(2).text_content() == "one"
        assert doc.node_at(3).text_content() == "one"

    def test_label_rendering(self):
        doc = build_sample()
        assert doc.root.label() == "#root"
        assert doc.node_at(1).label().startswith("<a>")
        assert "one" in doc.node_at(3).label()
