"""Property: live subscription churn is invisible to the results.

For random documents, random query pools, and a random interleaving of
``add_subscription`` / ``remove_subscription`` / ``evaluate`` operations on
one long-lived :class:`SubscriptionIndex`, the final evaluation must equal
a *fresh-compiled* index over the surviving subscription set — three-way,
on both streaming backends and against the DOM reference.  Churn (shared
automaton mutation, targeted DFA invalidation, ordinal retirement, deferred
vacuum) is a pure optimization: it may never change an answer.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.semantics.evaluator import select_positions
from repro.streaming import DocumentBroker, SubscriptionIndex
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.serialize import to_xml

from tests.property.strategies import documents, forward_absolute_paths

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.filter_too_much])

#: One churn script: which pool queries start registered, then a sequence
#: of (op, pool position) steps over a pool of candidate queries.
churn_scripts = st.lists(
    st.tuples(st.sampled_from(["add", "remove", "evaluate"]),
              st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=12)


def _apply_script(index, script, pool, events):
    """Drive one churn script; keys are the pool positions."""
    for op, position in script:
        key = position % len(pool)
        if op == "add":
            if key not in {s.key for s in index.subscriptions}:
                index.add_subscription(key, pool[key])
        elif op == "remove":
            try:
                index.remove_subscription(key)
            except KeyError:
                pass
        else:
            # Evaluations between churn steps are what ties the live
            # structures to real matcher state (warm automaton, sessions).
            index.evaluate(events)


@given(document=documents(),
       pool=st.lists(forward_absolute_paths(), min_size=1, max_size=8),
       initial=st.integers(min_value=0, max_value=7),
       script=churn_scripts)
@settings(max_examples=60, **SETTINGS)
def test_churned_index_equals_fresh_index_over_survivors(
        document, pool, initial, script):
    events = list(document_events(document))
    index = SubscriptionIndex(
        {key: pool[key] for key in range(initial % (len(pool) + 1))})
    _apply_script(index, script, pool, events)

    survivors = {s.key: pool[s.key] for s in index.subscriptions}
    fresh = SubscriptionIndex(survivors)
    for backend in ("dfa", "expectations"):
        churned_result = index.evaluate(events, backend=backend)
        fresh_result = fresh.evaluate(events, backend=backend)
        assert sorted(churned_result.matching_keys) \
            == sorted(fresh_result.matching_keys), backend
        for key in survivors:
            assert churned_result[key].node_ids \
                == fresh_result[key].node_ids, (backend, key)
            # The DOM reference closes the three-way loop.
            compiled = next(s.path for s in index.subscriptions
                            if s.key == key)
            assert churned_result[key].node_ids == select_positions(
                compiled, document), (backend, key)


@given(document=documents(),
       pool=st.lists(forward_absolute_paths(), min_size=2, max_size=6),
       script=churn_scripts)
@settings(max_examples=30, **SETTINGS)
def test_broker_churn_equals_fresh_broker(document, pool, script):
    """The same invariant one layer up: a churned broker session (sync /
    retirement / rebuild-on-vacuum) answers like a fresh broker."""
    xml = to_xml(document, indent=0)
    broker = DocumentBroker({0: pool[0]})
    broker.submit("warmup", xml)
    for op, position in script:
        key = position % len(pool)
        if op == "add":
            if key not in {s.key for s in broker.subscriptions}:
                broker.subscribe(key, pool[key])
        elif op == "remove":
            try:
                broker.unsubscribe(key)
            except KeyError:
                pass
        else:
            broker.submit("interleaved", xml)

    survivors = {s.key: pool[s.key] for s in broker.subscriptions}
    churned = broker.submit("final", xml)
    fresh = DocumentBroker(survivors).submit("final", xml)
    assert sorted(churned.matching_keys) == sorted(fresh.matching_keys)
    for key in survivors:
        assert churned[key].node_ids == fresh[key].node_ids, key


@given(document=documents(), query=forward_absolute_paths(),
       replacement=forward_absolute_paths())
@settings(max_examples=40, **SETTINGS)
def test_remove_then_readd_same_key(document, query, replacement):
    """Deterministic churn corner: a key freed by removal is immediately
    reusable, and the re-registration answers for its *new* query with a
    fresh ordinal (no delivery leakage from the retired one)."""
    events = list(document_events(document))
    index = SubscriptionIndex({"k": query, "other": query})
    index.evaluate(events)
    index.remove_subscription("k")
    index.add_subscription("k", replacement)
    result = index.evaluate(events)
    reference = SubscriptionIndex({"k": replacement}).evaluate(events)
    assert result["k"].node_ids == reference["k"].node_ids
    assert result["k"].matched == reference["k"].matched
    assert result["k"].node_ids == select_positions(
        next(s.path for s in index.subscriptions if s.key == "k"), document)
