"""Three-way differential property: lazy DFA == expectations == DOM.

The lazy-DFA backend (:mod:`repro.streaming.automaton`) must be a pure
optimization: for *every* document and *every* subscription pool, its match
sets and per-subscription verdicts have to coincide with the expectation
engine's — and both with the DOM baseline, which evaluates the same compiled
path on the materialized tree.  This suite drives all three over

* hypothesis-generated documents and query batches (attribute-free and
  attribute-bearing),
* the deterministic :func:`repro.workloads.queries.differential_query_pool`
  (structurally decided spines, qualifier gates, ``following`` fallbacks,
  attribute tests and value comparisons, absolute-path joins, unions) over
  ``random_document``/``item_feed_document`` pools — 300+ query cases
  independent of the hypothesis profile,

and additionally pins the session-reuse contract of the DFA backend: a
broker session leaves every engine registry empty between documents and the
shared automaton's DFA state count stays stable across ``reset()`` once the
transition table is warm.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.streaming import DocumentBroker, SubscriptionIndex
from repro.streaming.dom_baseline import dom_evaluate
from repro.workloads.queries import (
    attribute_subscription_workload,
    differential_query_pool,
)
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import item_feed_document, random_document
from repro.xmlmodel.parser import iter_events
from repro.xmlmodel.serialize import to_xml
from repro.xpath.cache import QueryCache

from tests.property.strategies import documents, forward_absolute_paths

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.filter_too_much])

#: One compile cache for the whole suite: the pools repeat queries, and
#: compilation (parse + rewrite) is not what this suite tests.
COMPILE_CACHE = QueryCache(maxsize=4096)

#: Deterministic pools covering every dispatch regime (see module docstring).
MIXED_POOL = differential_query_pool(120, seed=3)
ATTRIBUTE_POOL = attribute_subscription_workload(60, seed=5, item_ids=12)

query_batches = st.lists(
    st.one_of(forward_absolute_paths(),
              st.sampled_from(MIXED_POOL),
              st.sampled_from(ATTRIBUTE_POOL)),
    min_size=1, max_size=4)

attribute_documents = st.builds(
    lambda seed, probability: random_document(
        attribute_probability=probability, text_probability=0.3, seed=seed),
    st.integers(min_value=0, max_value=200),
    st.sampled_from([0.0, 0.4, 0.8]))

feed_documents = st.builds(
    lambda items, seed: item_feed_document(items=items, seed=seed),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=50))


def assert_three_way(document, queries):
    """DFA == expectations == DOM, match sets and verdicts alike."""
    events = list(document_events(document))
    index = SubscriptionIndex(cache=COMPILE_CACHE)
    for position, query in enumerate(queries):
        index.add(query, key=position)
    dfa = index.evaluate(events, backend="dfa")
    expectations = index.evaluate(events, backend="expectations")
    for position, query in enumerate(queries):
        dom = dom_evaluate(index.subscriptions[position].path, events)
        assert dfa[position].node_ids == expectations[position].node_ids \
            == dom.node_ids, query
        assert dfa[position].matched == expectations[position].matched \
            == dom.matched, query
    dfa_verdicts = index.evaluate(events, matches_only=True, backend="dfa")
    exp_verdicts = index.evaluate(events, matches_only=True,
                                  backend="expectations")
    for position, query in enumerate(queries):
        assert dfa_verdicts[position].matched \
            == exp_verdicts[position].matched \
            == dfa[position].matched, query


@given(document=documents(), queries=query_batches)
@settings(max_examples=100, **SETTINGS)
def test_three_way_equivalence_on_random_documents(document, queries):
    assert_three_way(document, queries)


@given(document=attribute_documents, queries=query_batches)
@settings(max_examples=100, **SETTINGS)
def test_three_way_equivalence_on_attribute_documents(document, queries):
    assert_three_way(document, queries)


@given(document=feed_documents,
       queries=st.lists(st.sampled_from(ATTRIBUTE_POOL + MIXED_POOL),
                        min_size=1, max_size=4))
@settings(max_examples=60, **SETTINGS)
def test_three_way_equivalence_on_item_feeds(document, queries):
    assert_three_way(document, queries)


def test_three_way_equivalence_deterministic_pool():
    """300+ generated query cases, independent of the hypothesis profile.

    Every query of the mixed pool (plus a slice of the attribute workload)
    is checked on two document shapes — query by query, so a failure names
    the exact case.
    """
    pool = differential_query_pool(120, seed=9) + ATTRIBUTE_POOL[:30]
    docs = [random_document(attribute_probability=0.5, text_probability=0.3,
                            max_depth=4, seed=17),
            item_feed_document(items=10, seed=23)]
    cases = 0
    for document in docs:
        events = list(document_events(document))
        index = SubscriptionIndex(cache=COMPILE_CACHE)
        for position, query in enumerate(pool):
            index.add(query, key=position)
        dfa = index.evaluate(events, backend="dfa")
        expectations = index.evaluate(events, backend="expectations")
        for position, query in enumerate(pool):
            dom = dom_evaluate(index.subscriptions[position].path, events)
            assert dfa[position].node_ids == expectations[position].node_ids \
                == dom.node_ids, (query, document is docs[0])
            cases += 1
    assert cases == 2 * len(pool) >= 300


class TestBrokerSessionReuse:
    """Registry emptiness and DFA state stability across reset()."""

    QUERIES = differential_query_pool(40, seed=11)

    def _documents(self):
        return [random_document(attribute_probability=0.5,
                                text_probability=0.3, seed=seed)
                for seed in range(4)]

    def test_registries_empty_and_state_count_stable(self):
        index = SubscriptionIndex(dict(enumerate(self.QUERIES)),
                                  cache=COMPILE_CACHE)
        broker = DocumentBroker(index, backend="dfa")
        docs = self._documents()
        counts = []
        for round_index, document in enumerate(docs + docs):
            text = to_xml(document, indent=0)
            result = broker.submit(f"doc-{round_index}", text)
            fresh = index.evaluate(list(iter_events(text)), backend="dfa")
            for position in range(len(self.QUERIES)):
                assert result[position].node_ids == fresh[position].node_ids
            sizes = broker.session.registry_sizes()
            assert all(size == 0 for size in sizes.values()), sizes
            counts.append(broker.session.dfa_state_count())
        # The first pass may materialize states; the second pass re-serves
        # the same documents through the reused session and must not — the
        # automaton is warm, reset() keeps it.
        warm = counts[len(docs) - 1]
        assert counts[len(docs):] == [warm] * len(docs)

    def test_warm_session_runs_entirely_from_the_transition_cache(self):
        index = SubscriptionIndex(dict(enumerate(self.QUERIES)),
                                  cache=COMPILE_CACHE)
        broker = DocumentBroker(index, backend="dfa")
        text = to_xml(self._documents()[0], indent=0)
        broker.submit("cold", text)
        warm = broker.submit("warm", text)
        stats = warm.stats
        assert stats.dfa_states_materialized == 0
        assert stats.transition_cache_hits == stats.transition_cache_lookups
        assert stats.transition_cache_lookups > 0
