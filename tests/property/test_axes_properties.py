"""Properties of the axis implementations and of document construction.

These are the structural invariants the rewrite rules silently rely on:
axis symmetry (``y ∈ axis(x)`` iff ``x ∈ symmetric(axis)(y)``), the
partition of a document into self/ancestors/descendants/preceding/following,
and stability of the event-stream round trip.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.semantics.axes_impl import axis_nodes
from repro.xmlmodel.builder import build_document, document_events
from repro.xpath.axes import Axis

from tests.property.strategies import documents

SETTINGS = dict(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@given(document=documents(), axis=st.sampled_from(list(Axis)))
@settings(**SETTINGS)
def test_axis_symmetry(document, axis):
    """Section 2.1: the axes of each pair are symmetrical of each other."""
    for x in document.nodes:
        for y in axis_nodes(x, axis):
            assert x in axis_nodes(y, axis.symmetric), (
                f"{axis.xpath_name} not symmetric to "
                f"{axis.symmetric.xpath_name} for {x.label()} / {y.label()}")


@given(document=documents())
@settings(**SETTINGS)
def test_axes_partition_the_document(document):
    everything = set(range(len(document)))
    for node in document.nodes:
        parts = [
            {n.position for n in axis_nodes(node, Axis.PRECEDING)},
            {n.position for n in axis_nodes(node, Axis.FOLLOWING)},
            {n.position for n in axis_nodes(node, Axis.ANCESTOR)},
            {n.position for n in axis_nodes(node, Axis.DESCENDANT)},
            {node.position},
        ]
        union = set().union(*parts)
        assert union == everything
        total = sum(len(part) for part in parts)
        assert total == len(everything), "axes must be pairwise disjoint"


@given(document=documents())
@settings(**SETTINGS)
def test_axis_results_are_in_document_order(document):
    for node in document.nodes:
        for axis in Axis:
            positions = [n.position for n in axis_nodes(node, axis)]
            assert positions == sorted(positions)


@given(document=documents())
@settings(**SETTINGS)
def test_event_round_trip_preserves_structure(document):
    rebuilt = build_document(document_events(document))
    assert [(n.kind, n.tag, n.value) for n in document] == \
           [(n.kind, n.tag, n.value) for n in rebuilt]
    assert [n.position for n in document] == [n.position for n in rebuilt]
