"""Property: the streaming evaluator agrees with the reference evaluator.

For random forward-only paths and random documents, the single-pass
streaming engine must select exactly the nodes the DOM-based reference
semantics selects — and it must do so without materializing any document
nodes.  Together with ``test_rules_equivalence`` this closes the loop of the
paper: rewrite, then stream, and you get the answer of the original query.
"""

from hypothesis import HealthCheck, given, settings

from repro.rewrite import remove_reverse_axes
from repro.errors import RRJoinError
from repro.semantics.evaluator import select_positions
from repro.streaming import stream_evaluate
from repro.xmlmodel.builder import document_events
from repro.xpath.parser import parse_xpath

from tests.property.strategies import (
    documents,
    forward_absolute_paths,
    reverse_absolute_paths,
)

SETTINGS = dict(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@given(expression=forward_absolute_paths(), document=documents())
@settings(**SETTINGS)
def test_streaming_matches_reference_semantics(expression, document):
    path = parse_xpath(expression)
    expected = select_positions(path, document)
    result = stream_evaluate(path, document_events(document))
    assert result.node_ids == expected
    assert result.stats.nodes_stored == 0


@given(expression=reverse_absolute_paths(), document=documents())
@settings(**SETTINGS)
def test_rewrite_then_stream_matches_original(expression, document):
    original = parse_xpath(expression)
    try:
        forward = remove_reverse_axes(original, ruleset="ruleset2")
    except RRJoinError:
        return
    expected = select_positions(original, document)
    result = stream_evaluate(forward, document_events(document))
    assert result.node_ids == expected
