"""Properties of the driver's congruence lemmas and of the simplifier.

The lemmas the driver applies on demand (and-splitting, or-splitting, union
qualifiers, self-hoisting, Lemma 3.1.5/3.1.8) are schematic; the unit tests
in ``tests/test_lemmas.py`` validate fixed instances, while these properties
validate them with randomly generated sub-paths plugged into the schema.
"""

from hypothesis import HealthCheck, given, settings

from repro.rewrite.simplify import simplify
from repro.semantics.evaluator import evaluate
from repro.xpath.parser import parse_xpath

from tests.property.strategies import documents, relative_paths, FORWARD_AXIS_NAMES

SETTINGS = dict(max_examples=50, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def assert_equivalent_on(document, left, right):
    left_path, right_path = parse_xpath(left), parse_xpath(right)
    for context in document.nodes:
        left_result = [n.position for n in evaluate(left_path, document, context)]
        right_result = [n.position for n in evaluate(right_path, document, context)]
        assert left_result == right_result, f"{left}  vs  {right}"


@given(document=documents(), q1=relative_paths(FORWARD_AXIS_NAMES, max_steps=2),
       q2=relative_paths(FORWARD_AXIS_NAMES, max_steps=2))
@settings(**SETTINGS)
def test_and_split(document, q1, q2):
    assert_equivalent_on(document,
                         f"/descendant::a[{q1} and {q2}]",
                         f"/descendant::a[{q1}][{q2}]")


@given(document=documents(), q1=relative_paths(FORWARD_AXIS_NAMES, max_steps=2),
       q2=relative_paths(FORWARD_AXIS_NAMES, max_steps=2))
@settings(**SETTINGS)
def test_or_split(document, q1, q2):
    assert_equivalent_on(
        document,
        f"/descendant::a/child::b[{q1} or {q2}]/child::c",
        f"/descendant::a/child::b[{q1}]/child::c"
        f" | /descendant::a/child::b[{q2}]/child::c")


@given(document=documents(), q1=relative_paths(FORWARD_AXIS_NAMES, max_steps=2),
       q2=relative_paths(FORWARD_AXIS_NAMES, max_steps=2))
@settings(**SETTINGS)
def test_union_qualifier_is_disjunction(document, q1, q2):
    assert_equivalent_on(document,
                         f"/descendant::a[{q1} | {q2}]",
                         f"/descendant::a[{q1} or {q2}]")


@given(document=documents(), inner=relative_paths(FORWARD_AXIS_NAMES, max_steps=2),
       rest=relative_paths(FORWARD_AXIS_NAMES, max_steps=2))
@settings(**SETTINGS)
def test_self_headed_qualifier_hoisting(document, inner, rest):
    assert_equivalent_on(document,
                         f"/descendant::a[self::a[{inner}]/{rest}]",
                         f"/descendant::a[self::a][{inner}][{rest}]")


@given(document=documents(), p1=relative_paths(FORWARD_AXIS_NAMES, max_steps=2),
       p2=relative_paths(FORWARD_AXIS_NAMES, max_steps=2))
@settings(**SETTINGS)
def test_qualifier_flattening(document, p1, p2):
    assert_equivalent_on(document,
                         f"/descendant::a[{p1}/{p2}]",
                         f"/descendant::a[{p1}[{p2}]]")


@given(document=documents(), p1=relative_paths(FORWARD_AXIS_NAMES, max_steps=2),
       p2=relative_paths(FORWARD_AXIS_NAMES, max_steps=2))
@settings(**SETTINGS)
def test_lemma_3_1_8_join_pushdown(document, p1, p2):
    assert_equivalent_on(
        document,
        f"/descendant::a[{p1} == /{p2}]",
        f"/descendant::a[{p1}[self::node() == /{p2}]]")


@given(document=documents(), expression=relative_paths(FORWARD_AXIS_NAMES, max_steps=3))
@settings(**SETTINGS)
def test_simplify_preserves_meaning(document, expression):
    path = parse_xpath("/" + expression)
    simplified = simplify(path)
    for context in document.nodes:
        assert [n.position for n in evaluate(path, document, context)] == \
               [n.position for n in evaluate(simplified, document, context)]
