"""Hypothesis strategies shared by the property-based tests.

Two generators drive everything:

* random documents over a small tag alphabet (shapes vary from flat to deep),
* random xPath expressions — both forward-only ones (for the streaming
  comparison) and ones with reverse axes (for the rewriting equivalence).

The strategies deliberately use the same small tag alphabet for documents and
queries so that node tests actually match and both branches of every
qualifier are exercised.
"""

from hypothesis import strategies as st

from repro.xmlmodel.document import Document, element, text
from repro.xpath.axes import FORWARD_AXES, REVERSE_AXES

TAGS = ("a", "b", "c", "d")
TEXTS = ("x", "y", "z")


# ---------------------------------------------------------------------------
# Documents
# ---------------------------------------------------------------------------

def _tree(depth):
    if depth == 0:
        return st.builds(element, st.sampled_from(TAGS))
    child = st.deferred(lambda: _tree(depth - 1))
    children = st.lists(
        st.one_of(child, st.builds(text, st.sampled_from(TEXTS))),
        min_size=0, max_size=3)
    return st.builds(lambda tag, kids: element(tag, *kids),
                     st.sampled_from(TAGS), children)


@st.composite
def documents(draw, max_depth=3):
    """A random document with a single document element."""
    return Document.from_tree(draw(_tree(max_depth)))


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------

NODE_TESTS = TAGS + ("*", "node()", "text()")
ELEMENT_TESTS = TAGS + ("*", "node()")


@st.composite
def steps(draw, axes, allow_qualifier=True, qualifier_depth=1):
    axis = draw(st.sampled_from(axes))
    test = draw(st.sampled_from(NODE_TESTS))
    rendered = f"{axis}::{test}"
    if allow_qualifier and qualifier_depth > 0 and draw(st.booleans()):
        inner = draw(relative_paths(axes, max_steps=2,
                                    qualifier_depth=qualifier_depth - 1))
        rendered += f"[{inner}]"
    return rendered


@st.composite
def relative_paths(draw, axes, max_steps=3, qualifier_depth=1):
    count = draw(st.integers(min_value=1, max_value=max_steps))
    parts = [draw(steps(axes, qualifier_depth=qualifier_depth))
             for _ in range(count)]
    return "/".join(parts)


FORWARD_AXIS_NAMES = tuple(axis.xpath_name for axis in FORWARD_AXES)
ALL_AXIS_NAMES = FORWARD_AXIS_NAMES + tuple(axis.xpath_name for axis in REVERSE_AXES)


@st.composite
def forward_absolute_paths(draw):
    """Absolute forward-only paths (streamable without rewriting)."""
    body = draw(relative_paths(FORWARD_AXIS_NAMES, max_steps=3, qualifier_depth=1))
    return "/" + body


@st.composite
def reverse_absolute_paths(draw):
    """Absolute paths that are guaranteed to contain at least one reverse step."""
    prefix = draw(relative_paths(FORWARD_AXIS_NAMES, max_steps=2, qualifier_depth=0))
    reverse_axis = draw(st.sampled_from([axis.xpath_name for axis in REVERSE_AXES]))
    reverse_test = draw(st.sampled_from(ELEMENT_TESTS))
    tail = draw(st.one_of(
        st.just(""),
        relative_paths(ALL_AXIS_NAMES, max_steps=2, qualifier_depth=1).map(lambda p: "/" + p),
    ))
    inside_qualifier = draw(st.booleans())
    if inside_qualifier:
        return f"/{prefix}[{reverse_axis}::{reverse_test}]{tail}"
    return f"/{prefix}/{reverse_axis}::{reverse_test}{tail}"
