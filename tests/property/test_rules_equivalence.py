"""Property: every rewriting produced by ``rare`` is equivalent to its input.

This is the central correctness property of the paper (Lemma 4.1.3 /
Theorems 4.1 and 4.2): for random absolute paths with reverse axes, the
output of ``rare`` with either rule set selects exactly the same nodes as the
input, for every document and every context node — checked here on randomized
documents.  The output must also be reverse-axis free.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import RRJoinError
from repro.rewrite import rare
from repro.semantics.evaluator import evaluate
from repro.xpath import analysis
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string

from tests.property.strategies import documents, reverse_absolute_paths

SETTINGS = dict(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def assert_rewrite_equivalent(expression, document, ruleset):
    original = parse_xpath(expression)
    try:
        result = rare(original, ruleset=ruleset)
    except RRJoinError:
        pytest.skip("randomly generated path contains an RR join")
    rewritten = result.result
    assert analysis.count_reverse_steps(rewritten) == 0, to_string(rewritten)
    for context in document.nodes:
        expected = [n.position for n in evaluate(original, document, context)]
        actual = [n.position for n in evaluate(rewritten, document, context)]
        assert actual == expected, (
            f"{ruleset}: {expression}\n  rewritten: {to_string(rewritten)}\n"
            f"  context {context.label()}: {actual} != {expected}")


@given(expression=reverse_absolute_paths(), document=documents())
@settings(**SETTINGS)
def test_ruleset1_rewriting_is_equivalent(expression, document):
    assert_rewrite_equivalent(expression, document, "ruleset1")


@given(expression=reverse_absolute_paths(), document=documents())
@settings(**SETTINGS)
def test_ruleset2_rewriting_is_equivalent(expression, document):
    assert_rewrite_equivalent(expression, document, "ruleset2")


@given(expression=reverse_absolute_paths())
@settings(**SETTINGS)
def test_ruleset1_output_is_linear_and_join_counting(expression):
    """Theorem 4.1's size bound: one join per reverse step, no unions."""
    original = parse_xpath(expression)
    try:
        result = rare(original, ruleset="ruleset1")
    except RRJoinError:
        pytest.skip("randomly generated path contains an RR join")
    reverse_steps = analysis.count_reverse_steps(original)
    # At most one join is introduced per removed reverse step (exactly one
    # unless a Lemma 3.2 root simplification collapses part of the path to ⊥
    # before Rule (1)/(2) has to fire).
    assert analysis.count_joins(result.result) \
        <= analysis.count_joins(original) + reverse_steps
    assert analysis.union_term_count(result.result) <= max(
        1, analysis.union_term_count(original))
    # The linear size bound of Theorem 4.1: each application adds at most two
    # forward steps, so the output length is linearly bounded by the input.
    assert analysis.path_length(result.result) <= 3 * analysis.path_length(original)


@given(expression=reverse_absolute_paths())
@settings(**SETTINGS)
def test_ruleset2_output_is_join_free(expression):
    """Section 4: RuleSet2 never introduces joins."""
    original = parse_xpath(expression)
    try:
        result = rare(original, ruleset="ruleset2")
    except RRJoinError:
        pytest.skip("randomly generated path contains an RR join")
    assert analysis.count_joins(result.result) == analysis.count_joins(original)
