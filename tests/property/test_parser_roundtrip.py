"""Property: parsing and serialization are mutually inverse."""

from hypothesis import given, settings

from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string

from tests.property.strategies import forward_absolute_paths, reverse_absolute_paths


@given(expression=forward_absolute_paths())
@settings(max_examples=150, deadline=None)
def test_forward_paths_round_trip(expression):
    parsed = parse_xpath(expression)
    rendered = to_string(parsed)
    assert parse_xpath(rendered) == parsed
    # Unabbreviated output is a fixed point of parse∘serialize.
    assert to_string(parse_xpath(rendered)) == rendered


@given(expression=reverse_absolute_paths())
@settings(max_examples=150, deadline=None)
def test_reverse_paths_round_trip(expression):
    parsed = parse_xpath(expression)
    rendered = to_string(parsed)
    assert parse_xpath(rendered) == parsed
