"""Property: PushTokenizer is invariant under chunk boundaries.

Feeding a document to :class:`repro.xmlmodel.parser.PushTokenizer` split at
*every* 1-character boundary, at every 1-**byte** boundary (UTF-8, so splits
land inside multi-byte sequences), and at random multi-character boundaries
must produce exactly the event stream of :func:`iter_events` on the whole
string — including when the splits fall inside tags, attribute names,
quoted attribute values (with entity references, ``>`` characters and
multi-byte text inside), entity references in character data, comments,
processing instructions and CDATA sections.
"""

from hypothesis import given, settings, strategies as st

from repro.xmlmodel.parser import PushTokenizer, iter_events

# Character data with entity references (splittable mid-reference) and
# non-ASCII characters (splittable mid-UTF-8-sequence in bytes mode).
TEXT_RUNS = (
    "x", "y z", " padded ", "fish &amp; chips", "a &lt;&gt; b",
    "&#65;&#x42;", "&quot;q&apos;", "café 漢字",
)
#: Markup that the tokenizer drops or treats verbatim; every item contains
#: characters that look like terminators of *other* constructs.
DROPPED_MARKUP = (
    "<!-- plain -->", "<!---->", "<!-- > ]]> ?> -->",
    "<?pi?>", "<?target some > data?>",
    "<!DOCTYPE doc>",
)
CDATA_SECTIONS = (
    "<![CDATA[verbatim <&> text]]>", "<![CDATA[]]>", "<![CDATA[a]b]]c]]>",
)
TAGS = ("a", "b", "list-item", "n1")
#: Attribute payloads of start tags; chunk splits land inside the names,
#: inside quoted values (either quote style), inside entity and character
#: references within values, inside multi-byte value text, and right at a
#: ``>`` that sits *inside* a quoted value.
ATTRIBUTE_PAYLOADS = (
    "",
    ' id="1"',
    " id='1'",
    ' long-name="x &amp; y"',
    ' a="1" b-c="2>3"',
    ' x="café 漢字"',
    ' refs="&#65;&#x42;&quot;"',
    ' mixed=\'say "hi"\'',
    '  spaced  =  "v"  flag=""',
    ' ws="a\tb\nc"',
)


@st.composite
def _content(draw, depth):
    pieces = draw(st.lists(st.one_of(
        st.sampled_from(TEXT_RUNS),
        st.sampled_from(DROPPED_MARKUP),
        st.sampled_from(CDATA_SECTIONS),
        _element(depth - 1) if depth > 0 else st.sampled_from(("<e/>", "<e />")),
    ), min_size=0, max_size=4))
    return "".join(pieces)


@st.composite
def _element(draw, depth):
    tag = draw(st.sampled_from(TAGS))
    attributes = draw(st.sampled_from(ATTRIBUTE_PAYLOADS))
    if depth <= 0 and draw(st.booleans()):
        return f"<{tag}{attributes}/>"
    body = draw(_content(depth))
    return f"<{tag}{attributes}>{body}</{tag}>"


@st.composite
def xml_documents(draw):
    """A well-formed document, optionally with prolog/trailing markup."""
    prolog = draw(st.sampled_from(("", "<?xml version='1.0'?>", "<!-- head -->")))
    trailer = draw(st.sampled_from(("", "<!-- tail -->")))
    return prolog + draw(_element(2)) + trailer


def _reference(text):
    return list(iter_events(text))


def _feed_all(chunks, keep_whitespace=False):
    tokenizer = PushTokenizer(keep_whitespace=keep_whitespace)
    events = []
    for chunk in chunks:
        events.extend(tokenizer.feed(chunk))
    events.extend(tokenizer.close())
    return events


@given(document=xml_documents())
@settings(deadline=None)
def test_every_one_character_split(document):
    assert _feed_all(document) == _reference(document)


@given(document=xml_documents())
@settings(deadline=None)
def test_every_one_byte_split(document):
    encoded = document.encode("utf-8")
    chunks = [encoded[index:index + 1] for index in range(len(encoded))]
    assert _feed_all(chunks) == _reference(document)


@given(document=xml_documents(), data=st.data())
@settings(deadline=None)
def test_random_multi_byte_splits(document, data):
    cuts = sorted(data.draw(st.lists(
        st.integers(min_value=0, max_value=len(document)), max_size=8)))
    bounds = [0] + cuts + [len(document)]
    chunks = [document[start:end] for start, end in zip(bounds, bounds[1:])]
    assert _feed_all(chunks) == _reference(document)


@given(document=xml_documents(), data=st.data())
@settings(deadline=None)
def test_random_splits_of_utf8_bytes(document, data):
    encoded = document.encode("utf-8")
    cuts = sorted(data.draw(st.lists(
        st.integers(min_value=0, max_value=len(encoded)), max_size=8)))
    bounds = [0] + cuts + [len(encoded)]
    chunks = [encoded[start:end] for start, end in zip(bounds, bounds[1:])]
    assert _feed_all(chunks) == _reference(document)


@given(document=xml_documents())
@settings(deadline=None)
def test_one_character_split_keep_whitespace(document):
    tokenizer_events = _feed_all(document, keep_whitespace=True)
    assert tokenizer_events == list(iter_events(document, keep_whitespace=True))
