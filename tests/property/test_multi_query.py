"""Property: the multi-subscription engine equals independent evaluation.

For random documents and random query batches, every subscription's result
from :class:`SubscriptionIndex`/:class:`MultiMatcher` must be identical to
an independent :func:`stream_evaluate` run of the same (compiled) query —
node ids and match verdicts alike.  This is the contract that makes the
shared-trie engine a pure optimization.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.streaming import SubscriptionIndex, stream_evaluate, stream_matches
from repro.xmlmodel.builder import document_events
from repro.xpath.cache import QueryCache

from tests.property.strategies import (
    documents,
    forward_absolute_paths,
    reverse_absolute_paths,
)

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.filter_too_much])

forward_batches = st.lists(forward_absolute_paths(), min_size=1, max_size=5)
reverse_batches = st.lists(reverse_absolute_paths(), min_size=1, max_size=3)


@given(document=documents(), queries=forward_batches)
@settings(max_examples=200, **SETTINGS)
def test_multi_matcher_equals_independent_runs(document, queries):
    events = list(document_events(document))
    index = SubscriptionIndex(cache=QueryCache())
    for position, query in enumerate(queries):
        index.add(query, key=position)
    result = index.evaluate(events)
    assert len(result) == len(queries)
    for position, query in enumerate(queries):
        independent = stream_evaluate(
            index.subscriptions[position].path, events)
        assert result[position].node_ids == independent.node_ids, query
        assert result[position].matched == independent.matched, query


@given(document=documents(), queries=reverse_batches)
@settings(max_examples=50, **SETTINGS)
def test_multi_matcher_equals_independent_runs_after_rewriting(document, queries):
    """Reverse-axis subscriptions are rewritten on entry; results still agree."""
    events = list(document_events(document))
    index = SubscriptionIndex(cache=QueryCache())
    for position, query in enumerate(queries):
        index.add(query, key=position)
    result = index.evaluate(events)
    for position, query in enumerate(queries):
        compiled = index.subscriptions[position].path
        independent = stream_evaluate(compiled, events)
        assert result[position].node_ids == independent.node_ids, query


@given(document=documents(), queries=forward_batches)
@settings(max_examples=50, **SETTINGS)
def test_matches_only_verdicts_equal_stream_matches(document, queries):
    """The SDI fast path decides exactly the same verdicts."""
    events = list(document_events(document))
    index = SubscriptionIndex(cache=QueryCache())
    for position, query in enumerate(queries):
        index.add(query, key=position)
    verdicts = index.evaluate(events, matches_only=True)
    for position, query in enumerate(queries):
        expected = stream_matches(index.subscriptions[position].path, events)
        assert verdicts[position].matched == expected, query
