"""Property: substream payloads equal the DOM evaluator's answer subtrees.

For random documents and random subscription batches, the substream
delivery mode must hand every subscription exactly the bytes you would get
by evaluating its query on the fully built DOM and re-serializing each
answer subtree in document order — regardless of the structural backend
(lazy DFA vs expectation engine) and regardless of how the document's XML
text is chunked on its way into the broker (the tee operates on the event
stream, after tokenization).

The documents are serialized and re-parsed first and the oracle runs on
the *re-parsed* event stream: the generator may produce adjacent text
siblings, which any parse legally merges, so node ids are only comparable
on the canonical stream the broker itself will see.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.streaming import (
    DocumentBroker,
    SubscriptionIndex,
    SubstreamDelivery,
)
from repro.streaming.dom_baseline import dom_evaluate
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.document import Document, element, text
from repro.xmlmodel.events import EndElement, StartElement, Text
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import escape_text, to_xml
from repro.xmlmodel.stream_serialize import serialize_events
from repro.xpath.cache import QueryCache

from tests.property.strategies import (
    documents,
    forward_absolute_paths,
    reverse_absolute_paths,
)

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.filter_too_much])

BACKENDS = ("dfa", "expectations")
CHUNK_SIZES = (1, 7, 64, 10_000)

forward_batches = st.lists(forward_absolute_paths(), min_size=1, max_size=3)
reverse_batches = st.lists(reverse_absolute_paths(), min_size=1, max_size=2)


def _answer_bytes(events, node_id):
    """Serialize one DOM answer node straight from the event stream:
    an element's payload is its whole subtree, a text node's the escaped
    character data, an attribute's the escaped value."""
    if node_id == 0:
        return serialize_events(events)
    for position, event in enumerate(events):
        if isinstance(event, Text) and event.node_id == node_id:
            return escape_text(event.value).encode()
        if not isinstance(event, StartElement):
            continue
        if event.node_id == node_id:
            depth = 0
            for offset in range(position, len(events)):
                follower = events[offset]
                if isinstance(follower, StartElement):
                    depth += 1
                elif isinstance(follower, EndElement):
                    depth -= 1
                    if depth == 0:
                        return serialize_events(events[position:offset + 1])
        elif (event.attributes
              and event.node_id < node_id
              <= event.node_id + len(event.attributes)):
            value = event.attributes[node_id - event.node_id - 1][1]
            return escape_text(value).encode()
    raise AssertionError(f"no node {node_id} in the stream")


def _oracle(events, node_ids):
    return b"".join(_answer_bytes(events, nid) for nid in sorted(node_ids))


def _chunked(xml_text, size):
    return [xml_text[start:start + size]
            for start in range(0, len(xml_text), size)]


def _assert_substream_equals_dom(document, queries):
    xml_text = to_xml(document, indent=0)
    canonical = list(document_events(parse_xml(xml_text)))
    index = SubscriptionIndex(cache=QueryCache())
    for position, query in enumerate(queries):
        index.add(query, key=position)
    expected = {
        position: _oracle(canonical,
                          dom_evaluate(index.subscriptions[position].path,
                                       canonical).node_ids)
        for position in range(len(queries))
    }
    for backend in BACKENDS:
        for chunk_size in CHUNK_SIZES:
            broker = DocumentBroker(index, backend=backend,
                                    delivery=SubstreamDelivery())
            result = broker.submit("doc", _chunked(xml_text, chunk_size))
            for position, query in enumerate(queries):
                assert result[position].payload == expected[position], (
                    backend, chunk_size, query)
            session = broker.session
            assert session.registry_sizes()["open_capture_windows"] == 0


@given(document=documents(), queries=forward_batches)
@settings(max_examples=30, **SETTINGS)
def test_substream_equals_dom_answer_subtrees(document, queries):
    _assert_substream_equals_dom(document, queries)


@given(document=documents(), queries=reverse_batches)
@settings(max_examples=15, **SETTINGS)
def test_substream_equals_dom_after_reverse_axis_rewriting(document, queries):
    """Reverse-axis subscriptions are rewritten on entry; the payloads must
    still be the rewritten query's DOM answers, byte for byte."""
    _assert_substream_equals_dom(document, queries)


def test_overlapping_and_nested_matches_share_one_tee_buffer():
    """Deterministic companion to the property: descendant-recursive
    matches (a inside a inside a) plus sibling overlap, all captured in
    one pass, every payload independently correct, tee fully disengaged
    afterwards."""
    document = Document.from_tree(element(
        "a",
        element("a", element("b", text("x")), element("a", text("y"))),
        element("b", element("a", text("z"))),
        attributes={"id": "r"}))
    queries = ["//a", "//b", "//a/a", "/a/@id", "/descendant::text()"]
    _assert_substream_equals_dom(document, queries)
    # The nested payloads are literally substrings of the outermost match.
    events = list(document_events(document))
    index = SubscriptionIndex()
    for position, query in enumerate(queries):
        index.add(query, key=position)
    result = index.evaluate(events, delivery=SubstreamDelivery())
    outer = _answer_bytes(events, result[0].node_ids[0])
    for node_id in result[2].node_ids:  # every //a/a sits inside the root a
        assert _answer_bytes(events, node_id) in outer
