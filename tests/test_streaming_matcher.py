"""Unit tests for the single-pass streaming matcher (repro.streaming.matcher)."""

import pytest

from repro.errors import ReverseAxisStreamingError, StreamingError
from repro.streaming import stream_evaluate, stream_matches
from repro.streaming.matcher import StreamingMatcher
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.parser import iter_events
from repro.datasets import FIGURE1_XML
from repro.xpath.parser import parse_xpath


def run(expression, document):
    return stream_evaluate(expression, document_events(document)).node_ids


class TestBasicMatching:
    def test_descendant(self, figure1):
        assert run("/descendant::name", figure1) == [7, 9]

    def test_child_chain(self, figure1):
        assert run("/child::journal/child::authors/child::name", figure1) == [7, 9]

    def test_descendant_or_self_expansion(self, figure1):
        assert run("//name", figure1) == [7, 9]

    def test_self_step(self, figure1):
        assert run("/child::journal/self::journal", figure1) == [1]
        assert run("/child::journal/self::title", figure1) == []

    def test_text_selection(self, figure1):
        assert run("/descendant::name/child::text()", figure1) == [8, 10]

    def test_root_path(self, figure1):
        assert run("/", figure1) == [0]

    def test_wildcard(self, figure1):
        assert run("/child::journal/child::*", figure1) == [2, 4, 6, 11]


class TestSiblingAndFollowingAxes:
    def test_following_sibling(self, figure1):
        assert run("/descendant::title/following-sibling::price", figure1) == [11]
        assert run("/descendant::price/following-sibling::*", figure1) == []

    def test_following(self, figure1):
        assert run("/descendant::authors/following::price", figure1) == [11]
        assert run("/descendant::price/following::node()", figure1) == []

    def test_following_excludes_descendants(self, figure1):
        assert run("/descendant::authors/following::name", figure1) == []

    def test_following_from_text_anchor(self, figure1):
        assert run("/descendant::editor/child::text()/following::price",
                   figure1) == [11]


class TestQualifiers:
    def test_existence_qualifier(self, figure1):
        assert run("/descendant::journal[child::price]/child::title", figure1) == [2]
        assert run("/descendant::journal[child::missing]/child::title", figure1) == []

    def test_qualifier_resolved_after_candidate(self, figure1):
        # names are seen before the price: candidates must wait.
        assert run("/descendant::name[following::price]", figure1) == [7, 9]

    def test_nested_qualifier(self, figure1):
        assert run("/descendant::journal[child::authors[child::name]]/child::editor",
                   figure1) == [4]

    def test_and_or_qualifiers(self, figure1):
        assert run("/descendant::journal[child::title and child::price]", figure1) == [1]
        assert run("/descendant::journal[child::missing or child::price]", figure1) == [1]
        assert run("/descendant::journal[child::missing and child::price]", figure1) == []

    def test_identity_join_with_absolute_path(self, figure1):
        assert run("/descendant::name[following::price == /descendant::price]",
                   figure1) == [7, 9]

    def test_identity_join_absolute_seen_before_candidate(self, figure1):
        # The absolute operand (/child::journal/child::title) matches a node
        # that occurs *before* the candidate names; the shared sink spawned at
        # the start of the document must have recorded it already.
        assert run("/descendant::name[following::price == /child::journal/child::price]",
                   figure1) == [7, 9]
        assert run("/descendant::authors[child::name == /descendant::authors/child::name]",
                   figure1) == [6]

    def test_value_join(self, figure1):
        assert run("/descendant::editor[self::node() = /descendant::name]",
                   figure1) == [4]
        assert run("/descendant::title[self::node() = /descendant::name]",
                   figure1) == []

    def test_root_string_value_in_value_joins(self):
        # Regression: the streaming engine used to give the document root an
        # empty string value in value joins; like any node, its value is the
        # concatenation of all descendant text (finalized at end of stream),
        # matching the DOM baseline.
        from repro.streaming.dom_baseline import dom_evaluate
        from repro.xmlmodel.document import Document, element, text
        doc = Document.from_tree(element("a", element("b", text("x"))))
        events = list(document_events(doc))
        query = '/descendant-or-self::node()[self::node() = "x"]'
        dom = dom_evaluate(query, events).node_ids
        assert dom == [0, 1, 2, 3]  # the root itself matches
        for backend in ("expectations", "dfa"):
            got = stream_evaluate(query, events, backend=backend).node_ids
            assert got == dom, backend
        # "/" as a join operand likewise contributes the whole document text.
        operand = "//b[self::node() = /]"
        assert dom_evaluate(operand, events).node_ids == [2]
        for backend in ("expectations", "dfa"):
            assert stream_evaluate(operand, events,
                                   backend=backend).node_ids == [2], backend


class TestInputsAndErrors:
    def test_reverse_axes_rejected(self, figure1):
        with pytest.raises(ReverseAxisStreamingError):
            stream_evaluate("/descendant::price/preceding::name",
                            document_events(figure1))

    def test_relative_path_rejected(self, figure1):
        with pytest.raises(StreamingError):
            stream_evaluate("child::a", document_events(figure1))

    def test_results_before_end_of_stream_rejected(self, figure1):
        matcher = StreamingMatcher(parse_xpath("/descendant::name"))
        events = list(document_events(figure1))
        for event in events[:-1]:
            matcher.feed(event)
        with pytest.raises(StreamingError):
            matcher.results()

    def test_events_from_xml_text(self):
        result = stream_evaluate("/descendant::name", iter_events(FIGURE1_XML))
        assert len(result) == 2

    def test_stream_matches_boolean(self, figure1):
        assert stream_matches("/descendant::price", document_events(figure1))
        assert not stream_matches("/descendant::missing", document_events(figure1))


class TestDispatchIndex:
    """The tag-indexed expectation dispatch is a pure optimization."""

    QUERIES = (
        "/descendant::name",
        "/child::journal/child::authors/child::name",
        "//name",
        "/descendant::title/following-sibling::price",
        "/descendant::journal[child::price]/child::title",
        "/descendant::name[following::price == /descendant::price]",
        "/descendant::name/child::text()",
        "/child::journal/child::*",
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_linear_scan_reference_agrees(self, figure1, query):
        events = list(document_events(figure1))
        indexed = StreamingMatcher(parse_xpath(query))
        linear = StreamingMatcher(parse_xpath(query), indexed=False)
        assert indexed.process(events) == linear.process(events)

    def test_index_checks_no_more_than_a_linear_scan(self, catalogue):
        events = list(document_events(catalogue))
        matcher = StreamingMatcher(
            parse_xpath("/descendant::journal/child::editor"),
            backend="expectations")
        matcher.process(events)
        stats = matcher.stats
        assert 0 < stats.expectations_checked <= stats.linear_scan_checks

    def test_named_tests_skip_unrelated_tags(self, catalogue):
        # A single named-test step is only ever checked against elements of
        # that tag: one check per matching start-element.
        events = list(document_events(catalogue))
        matcher = StreamingMatcher(parse_xpath("/descendant::price"),
                                   backend="expectations")
        result = matcher.process(events)
        assert matcher.stats.expectations_checked == len(result)

    def test_child_expectations_expire_with_their_anchor(self, figure1):
        # /child::journal/child::authors/child::name: once </authors> is
        # seen, the child::name expectation anchored at it must be gone even
        # though the stream continues.
        matcher = StreamingMatcher(
            parse_xpath("/child::journal/child::authors/child::name"))
        events = list(document_events(figure1))
        from repro.xmlmodel.events import EndElement
        authors_end = next(index for index, event in enumerate(events)
                           if isinstance(event, EndElement)
                           and event.tag == "authors")
        for event in events[:authors_end + 1]:
            matcher.feed(event)
        names = [expectation for expectation in matcher.live_expectations()
                 if expectation.step.node_test.name == "name"]
        assert names == []

    def test_satisfied_existence_sink_unlinks_its_expectations(self, figure1):
        # [descendant::name] resolves at the first name; its expectation is
        # unlinked the moment the sink satisfies, not at some later event.
        matcher = StreamingMatcher(
            parse_xpath("/child::journal[descendant::name]"))
        events = list(document_events(figure1))
        from repro.xmlmodel.events import StartElement
        first_name = next(index for index, event in enumerate(events)
                          if isinstance(event, StartElement)
                          and event.tag == "name")
        for event in events[:first_name + 1]:
            matcher.feed(event)
        qualifier_expectations = [
            expectation for expectation in matcher.live_expectations()
            if expectation.step.node_test.name == "name"]
        assert qualifier_expectations == []
        assert matcher.process(events[first_name + 1:]) == [1]

    def test_following_sibling_window_pops_with_the_parent(self, figure1):
        # title/following-sibling::price is anchored under journal; when
        # </journal> arrives the sibling window must be dropped.
        matcher = StreamingMatcher(
            parse_xpath("/descendant::title/following-sibling::price"))
        events = list(document_events(figure1))
        from repro.xmlmodel.events import EndElement
        journal_end = next(index for index, event in enumerate(events)
                           if isinstance(event, EndElement)
                           and event.tag == "journal")
        for event in events[:journal_end + 1]:
            matcher.feed(event)
        siblings = [expectation for expectation in matcher.live_expectations()
                    if expectation.step.node_test.name == "price"]
        assert siblings == []


class TestStatistics:
    def test_stats_are_populated(self, figure1):
        result = stream_evaluate("/descendant::name[following::price]",
                                 document_events(figure1))
        stats = result.stats
        assert stats.events == len(list(document_events(figure1)))
        assert stats.nodes_seen == len(figure1)
        assert stats.max_depth == 3
        assert stats.results == 2
        assert stats.candidates_buffered >= 2
        assert stats.memory_units > 0

    def test_no_document_nodes_are_stored(self, figure1):
        result = stream_evaluate("/descendant::name", document_events(figure1))
        assert result.stats.nodes_stored == 0

    def test_existence_conditions_resolve_eagerly(self):
        # On a wide document, [child::value] conditions resolve as soon as the
        # first value child is seen; buffering must stay small.
        from repro.xmlmodel.generator import wide_document
        doc = wide_document(width=300)
        result = stream_evaluate("/child::collection/child::item[child::value]",
                                 document_events(doc))
        assert len(result) == 300
        assert result.stats.max_live_expectations < 20
