"""Unit tests for the CI benchmark regression gate (repro.bench.regression)."""

import json

import pytest

from repro.bench.regression import (
    ADVISORY_GATES,
    DEFAULT_TOLERANCE,
    GATES,
    RegressionGateError,
    check_advisory_gates,
    check_all_gates,
    check_regression,
    extract_events_per_sec,
    main,
)


def artifact(events_per_sec, subscriptions=1000, extra_scales=(),
             dfa_events_per_sec=None, substream_events_per_sec=None):
    scales = [{"subscriptions": 10, "events_per_sec_indexed": 99999}]
    scales.extend(extra_scales)
    scales.append({"subscriptions": subscriptions,
                   "events_per_sec_indexed": events_per_sec})
    if dfa_events_per_sec is None:
        dfa_events_per_sec = events_per_sec
    data = {"multi_query_sdi": {"scales": scales},
            "automaton_sdi": {"scales": [
                {"subscriptions": subscriptions,
                 "events_per_sec_dfa": dfa_events_per_sec}]}}
    if substream_events_per_sec is not None:
        data["substream_extraction"] = {"scales": [
            {"subscriptions": subscriptions,
             "events_per_sec_substream": substream_events_per_sec}]}
    return data


class TestExtract:
    def test_picks_the_gated_scale(self):
        assert extract_events_per_sec(artifact(2500)) == 2500

    def test_missing_section_fails_loudly(self):
        with pytest.raises(RegressionGateError):
            extract_events_per_sec({"other_section": {}})

    def test_missing_scale_fails_loudly(self):
        data = {"multi_query_sdi": {"scales": [
            {"subscriptions": 10, "events_per_sec_indexed": 1}]}}
        with pytest.raises(RegressionGateError):
            extract_events_per_sec(data)

    def test_missing_metric_fails_loudly(self):
        data = {"multi_query_sdi": {"scales": [{"subscriptions": 1000}]}}
        with pytest.raises(RegressionGateError):
            extract_events_per_sec(data)


class TestCheckRegression:
    def test_unchanged_throughput_passes(self):
        report = check_regression(artifact(2000), artifact(2000))
        assert report.ok
        assert report.ratio == 1.0

    def test_improvement_passes(self):
        assert check_regression(artifact(2000), artifact(3000)).ok

    def test_drop_within_tolerance_passes(self):
        # 25% tolerance: 1500/2000 = 75% is exactly at the edge and passes.
        assert check_regression(artifact(2000), artifact(1500)).ok

    def test_drop_beyond_tolerance_fails(self):
        report = check_regression(artifact(2000), artifact(1499))
        assert not report.ok
        assert "REGRESSION" in report.describe()

    def test_custom_tolerance(self):
        assert not check_regression(artifact(2000), artifact(1900),
                                    tolerance=0.01).ok
        assert check_regression(artifact(2000), artifact(1900),
                                tolerance=0.10).ok

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            check_regression(artifact(1), artifact(1), tolerance=1.5)

    def test_default_tolerance_is_25_percent(self):
        assert DEFAULT_TOLERANCE == 0.25


class TestMultiGate:
    def test_gates_cover_both_backends(self):
        assert ("multi_query_sdi", "events_per_sec_indexed") in GATES
        assert ("automaton_sdi", "events_per_sec_dfa") in GATES

    def test_check_all_gates_reports_per_gate(self):
        reports = check_all_gates(artifact(2000, dfa_events_per_sec=400000),
                                  artifact(2000, dfa_events_per_sec=400000))
        assert len(reports) == len(GATES)
        assert all(report.ok for report in reports)

    def test_dfa_regression_fails_even_when_indexed_holds(self):
        reports = check_all_gates(artifact(2000, dfa_events_per_sec=400000),
                                  artifact(2000, dfa_events_per_sec=100000))
        by_section = {report.section: report for report in reports}
        assert by_section["multi_query_sdi"].ok
        assert not by_section["automaton_sdi"].ok
        assert "automaton_sdi" in by_section["automaton_sdi"].describe()

    def test_missing_dfa_section_fails_loudly(self):
        with pytest.raises(RegressionGateError):
            check_all_gates({"multi_query_sdi": {"scales": [
                {"subscriptions": 1000, "events_per_sec_indexed": 1}]}},
                artifact(1))


class TestAdvisoryGates:
    def test_substream_gate_is_advisory_not_blocking(self):
        gate = ("substream_extraction", "events_per_sec_substream")
        assert gate in ADVISORY_GATES
        assert gate not in GATES

    def test_missing_section_is_skipped_not_an_error(self):
        # Baselines committed before the section existed must not break
        # the pipeline: no substream section on either side -> no reports.
        assert check_advisory_gates(artifact(2000), artifact(2000)) == []
        # ...nor when only the fresh artifact has it.
        assert check_advisory_gates(
            artifact(2000),
            artifact(2000, substream_events_per_sec=70000)) == []

    def test_present_sections_are_compared(self):
        reports = check_advisory_gates(
            artifact(2000, substream_events_per_sec=80000),
            artifact(2000, substream_events_per_sec=20000))
        assert len(reports) == 1
        assert reports[0].section == "substream_extraction"
        assert not reports[0].ok


class TestMain:
    def write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data), encoding="utf-8")
        return str(path)

    def test_ok_exit_code(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", artifact(2000))
        fresh = self.write(tmp_path, "fresh.json", artifact(2100))
        assert main([base, fresh]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exit_code(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", artifact(2000))
        fresh = self.write(tmp_path, "fresh.json", artifact(100))
        assert main([base, fresh]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_dfa_regression_alone_fails_the_gate(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json",
                          artifact(2000, dfa_events_per_sec=400000))
        fresh = self.write(tmp_path, "fresh.json",
                           artifact(2000, dfa_events_per_sec=100000))
        assert main([base, fresh]) == 1
        out = capsys.readouterr().out
        assert "OK" in out and "REGRESSION" in out

    def test_advisory_regression_never_fails_the_build(self, tmp_path,
                                                       capsys):
        base = self.write(tmp_path, "base.json",
                          artifact(2000, substream_events_per_sec=80000))
        fresh = self.write(tmp_path, "fresh.json",
                           artifact(2000, substream_events_per_sec=20000))
        assert main([base, fresh]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "(advisory)" in out

    def test_broken_artifact_exit_code(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", {"nope": 1})
        fresh = self.write(tmp_path, "fresh.json", artifact(2000))
        assert main([base, fresh]) == 2
        assert "regression gate" in capsys.readouterr().err

    def test_missing_file_exit_code(self, tmp_path):
        fresh = self.write(tmp_path, "fresh.json", artifact(2000))
        assert main([str(tmp_path / "absent.json"), fresh]) == 2

    def test_gate_accepts_the_committed_artifact(self):
        # The artifact committed at the repository root must always satisfy
        # every gate's schema, or CI would fail on every build.
        from repro.bench.reporting import (
            MULTI_QUERY_SDI_ARTIFACT,
            artifact_path,
        )
        with open(artifact_path(MULTI_QUERY_SDI_ARTIFACT),
                  encoding="utf-8") as handle:
            committed = json.load(handle)
        assert extract_events_per_sec(committed) > 0
        for section, metric in GATES + ADVISORY_GATES:
            assert extract_events_per_sec(committed, section=section,
                                          metric=metric) > 0
