"""Deterministic tests of live subscription churn (the acceptance contract).

The churn API's performance promise is structural, so these tests assert it
structurally: below the documented thresholds an ``add_subscription`` costs
one *targeted* DFA invalidation (the automaton object, its materialized
states, and the warmed transitions of untouched states all survive), a
``remove_subscription`` costs no recompilation at all, and only crossing
``vacuum_ratio`` triggers the deferred rebuild.  The new
:class:`~repro.streaming.stats.ChurnStats` counters are the witness.

Tests that assert automaton internals (targeted flushes, warm transition
caches, ``describe()``) pin ``backend="dfa"`` explicitly so the suite also
passes under ``REPRO_STREAMING_BACKEND=expectations`` — the expectation
engine has no cache to flush, so churn there is just a version bump.
"""

import pytest

from repro.errors import StreamingError
from repro.streaming import DocumentBroker, SubscriptionIndex
from repro.xmlmodel.parser import iter_events

N = 80  # large enough that one add touches well under TARGETED_FLUSH_RATIO


def _index(**kwargs):
    return SubscriptionIndex({f"s{i}": f"//t{i}" for i in range(N)}, **kwargs)


def _document():
    xml = ("<root>" + "".join(f"<t{i}>x</t{i}>" for i in range(N)) + "</root>")
    return list(iter_events(xml))


class TestIncrementalAdd:
    def test_add_triggers_targeted_not_full_invalidation(self):
        index = _index()
        events = _document()
        index.evaluate(events, backend="dfa")  # warm the automaton
        automaton = index._automaton_parts[0]
        for i in range(5):
            index.add_subscription(f"extra{i}", f"//t{i}/inner")
        churn = index.churn
        assert churn.subscriptions_added == 5
        assert churn.targeted_flushes == 5
        assert churn.full_flushes == 0
        assert churn.vacuum_runs == 0
        # The world was not recompiled: same automaton object, no parts drop.
        assert index._automaton_parts[0] is automaton

    def test_warm_transitions_of_untouched_states_survive(self):
        index = _index()
        events = _document()
        index.evaluate(events, backend="dfa")
        warm = index.evaluate(events, backend="dfa")
        assert warm.stats.transition_cache_hits == \
            warm.stats.transition_cache_lookups
        index.add_subscription("extra", "//t0/inner")
        after = index.evaluate(events, backend="dfa")
        # Only the touched fragment's states recompute; the bulk of the
        # table stays warm (strictly more hits than cold, near-warm total).
        assert after.stats.transition_cache_hits \
            > after.stats.transition_cache_lookups // 2

    def test_add_before_first_build_is_not_an_invalidation(self):
        index = _index()
        index.add_subscription("extra", "//late")
        assert index.churn.subscriptions_added == 1
        assert index.churn.targeted_flushes == 0
        assert index.churn.full_flushes == 0

    def test_duplicate_key_rejected_and_uncounted(self):
        index = _index()
        with pytest.raises(ValueError):
            index.add_subscription("s0", "//dup")
        assert index.churn.subscriptions_added == 0

    def test_results_after_add_include_the_new_subscription(self):
        index = _index()
        events = _document()
        index.evaluate(events)
        index.add_subscription("t5again", "//t5")
        result = index.evaluate(events)
        assert result["t5again"].matched
        assert result["t5again"].node_ids == result["s5"].node_ids


class TestRetirementAndVacuum:
    def test_remove_below_ratio_does_not_recompile(self):
        index = _index()
        events = _document()
        index.evaluate(events, backend="dfa")
        automaton = index._automaton_parts[0]
        removed = int(N * index._vacuum_ratio) - 1
        for i in range(removed):
            index.remove_subscription(f"s{i}")
        assert index.churn.vacuum_runs == 0
        assert index._automaton_parts[0] is automaton
        assert len(index) == N - removed
        assert index.retired_count == removed
        result = index.evaluate(events)
        assert "s0" not in result.by_key
        assert result[f"s{removed}"].matched

    def test_crossing_the_ratio_vacuums(self):
        index = _index()
        index.evaluate(_document())
        goal = int(N * index._vacuum_ratio) + 1
        for i in range(goal):
            index.remove_subscription(f"s{i}")
        assert index.churn.vacuum_runs == 1
        assert index.retired_count == 0  # reclaimed
        assert len(index) == N - goal
        # Ordinals were remapped densely.
        assert [s.ordinal for s in index.subscriptions] \
            == list(range(N - goal))

    def test_explicit_vacuum_reports_reclaimed(self):
        index = _index(vacuum_ratio=1.0)  # never automatic
        index.remove_subscription("s0")
        index.remove_subscription("s1")
        assert index.churn.vacuum_runs == 0
        assert index.vacuum() == 2
        assert index.churn.vacuum_runs == 1
        assert index.vacuum() == 0  # idempotent on a clean index

    def test_unknown_key_raises_keyerror(self):
        index = _index()
        with pytest.raises(KeyError):
            index.remove_subscription("nope")

    def test_vacuumed_matcher_must_be_rebuilt(self):
        index = _index(vacuum_ratio=0.0)  # vacuum on every remove
        events = _document()
        matcher = index.matcher()
        matcher.process(events)
        index.remove_subscription("s0")
        assert index.churn.vacuum_runs == 1
        with pytest.raises(StreamingError, match="vacuumed"):
            matcher.reset()
        with pytest.raises(StreamingError, match="vacuumed"):
            matcher.sync()
        # A fresh matcher serves the compacted index.
        result = index.matcher().process(events)
        assert len(result) == N - 1


class TestLiveSessions:
    def test_removal_takes_effect_mid_document(self):
        index = _index()
        events = _document()
        matcher = index.matcher()
        half = len(events) // 2
        for event in events[:half]:
            matcher.feed(event)
        index.remove_subscription(f"s{N - 1}")  # matches late in the doc
        for event in events[half:]:
            matcher.feed(event)
        result = matcher.results()
        assert not any(sub.key == f"s{N - 1}" for sub in result)

    def test_mid_document_add_takes_effect_next_document(self):
        index = _index()
        events = _document()
        matcher = index.matcher()
        half = len(events) // 2
        for event in events[:half]:
            matcher.feed(event)
        index.add_subscription("late", "//t1")
        for event in events[half:]:
            matcher.feed(event)
        result = matcher.results()
        # This document: the session predates the add and does not carry it.
        assert not any(sub.key == "late" for sub in result)
        # Next document, after a sync: delivered.
        matcher.sync()
        matcher.reset()
        follow_up = matcher.process(events)
        assert follow_up["late"].matched

    @pytest.mark.parametrize("backend", ["dfa", "expectations"])
    def test_matches_only_sessions_follow_churn(self, backend):
        index = _index()
        events = _document()
        matcher = index.matcher(matches_only=True, backend=backend)
        matcher.process(events)
        index.add_subscription("late", "//t2")
        index.remove_subscription("s3")
        matcher.sync()
        matcher.reset()
        result = matcher.process(events)
        assert result["late"].matched
        assert "s3" not in result.by_key
        assert result["s4"].matched


class TestChurnStatsPlumbing:
    def test_as_row_round_trips(self):
        index = _index()
        index.evaluate(_document())
        index.add_subscription("extra", "//t0/inner")
        index.remove_subscription("s1")
        row = index.churn.as_row()
        assert row["subscriptions_added"] == 1
        assert row["subscriptions_removed"] == 1
        assert row["targeted_flushes"] == index.churn.targeted_flushes
        assert set(row) == {"subscriptions_added", "subscriptions_removed",
                            "targeted_flushes", "full_flushes",
                            "vacuum_runs"}

    def test_describe_reports_invalidations(self):
        index = _index()
        index.evaluate(_document(), backend="dfa")
        index.add_subscription("extra", "//t0/inner")
        description = index._automaton_parts[0].describe()
        assert description["targeted_invalidations"] == 1
        assert description["full_invalidations"] == 0


class TestBrokerSessionAmortization:
    def test_session_survives_a_whole_churn_storm(self):
        broker = DocumentBroker({f"s{i}": f"//t{i}" for i in range(N)})
        xml = "<root>" + "".join(f"<t{i}/>" for i in range(N)) + "</root>"
        broker.submit("warmup", xml)
        session = broker.session
        for i in range(5):
            broker.subscribe(f"extra{i}", f"//t{i}/inner")
        broker.submit("mid", xml)
        assert broker.session is session  # synced, not rebuilt
        broker.unsubscribe("s0")
        result = broker.submit("final", xml)
        assert broker.session is session  # retirement needs no rebuild
        assert "s0" not in result.by_key
        assert result["s1"].matched
