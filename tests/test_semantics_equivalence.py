"""Unit tests for empirical equivalence checking (repro.semantics.equivalence)."""

from repro.semantics.equivalence import counterexample, paths_equivalent_on
from repro.xpath.parser import parse_xpath


class TestEquivalenceChecking:
    def test_equivalent_paths_report_success(self, document_pool):
        report = paths_equivalent_on(
            parse_xpath("/descendant-or-self::a"),
            parse_xpath("/descendant::a | /self::a"),
            document_pool)
        assert report.equivalent
        assert report.checks > 0
        assert "≡" in report.describe()

    def test_non_equivalent_paths_yield_counterexample(self, document_pool):
        report = paths_equivalent_on(
            parse_xpath("/descendant::a"),
            parse_xpath("/descendant::b"),
            document_pool)
        assert not report.equivalent
        assert report.document is not None
        assert report.context is not None
        assert "NOT equivalent" in report.describe()

    def test_counterexample_none_for_true_equivalence(self):
        assert counterexample(
            parse_xpath("/child::a/parent::node()"),
            parse_xpath("/self::node()[child::a]")) is None

    def test_counterexample_found_for_false_equivalence(self):
        report = counterexample(
            parse_xpath("/descendant::a/parent::node()"),
            parse_xpath("/descendant::a"))
        assert report is not None
        assert report.left_result != report.right_result

    def test_contexts_can_be_restricted(self, figure1):
        report = paths_equivalent_on(
            parse_xpath("child::name"),
            parse_xpath("child::node()[self::name]"),
            [figure1],
            contexts=[figure1.node_at(6)])
        assert report.equivalent
        assert report.checks == 1
