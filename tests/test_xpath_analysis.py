"""Unit tests for path analysis (repro.xpath.analysis)."""

from repro.xpath import analysis
from repro.xpath.parser import parse_xpath


class TestLength:
    def test_counts_steps_inside_and_outside_qualifiers(self):
        # Section 2.1: the length is the number of location steps outside
        # and inside qualifiers.
        path = parse_xpath("/descendant::a[child::b/child::c]/child::d")
        assert analysis.path_length(path) == 4

    def test_union_lengths_sum(self):
        path = parse_xpath("/descendant::a | /descendant::b/child::c")
        assert analysis.path_length(path) == 3

    def test_spine_length(self):
        path = parse_xpath("/descendant::a[child::b]/child::c")
        assert analysis.spine_length(path) == 2

    def test_bottom_has_length_zero(self):
        assert analysis.path_length(parse_xpath("⊥")) == 0


class TestReverseSteps:
    def test_counts_reverse_steps_everywhere(self):
        path = parse_xpath("/descendant::a[preceding::b]/parent::c/child::d")
        assert analysis.count_reverse_steps(path) == 2
        assert analysis.count_forward_steps(path) == 2

    def test_has_reverse_steps(self):
        assert analysis.has_reverse_steps(parse_xpath("/a/.."))
        assert not analysis.has_reverse_steps(parse_xpath("/a/b"))

    def test_reverse_step_inside_join_detected(self):
        path = parse_xpath("/descendant::a[child::b == /descendant::c/parent::d]")
        assert analysis.has_reverse_steps(path)


class TestJoins:
    def test_count_joins(self):
        path = parse_xpath(
            "/descendant::a[child::b == /c][child::d = /e]/child::f")
        assert analysis.count_joins(path) == 2

    def test_nested_join_counted(self):
        path = parse_xpath("/a[child::b[child::c == /d]]")
        assert analysis.count_joins(path) == 1

    def test_forward_only_path_has_no_joins(self):
        assert analysis.count_joins(parse_xpath("/descendant::a/child::b")) == 0


class TestAbsoluteAndRRJoins:
    def test_absolute_detection(self):
        assert analysis.is_absolute(parse_xpath("/a/b"))
        assert not analysis.is_absolute(parse_xpath("a/b"))
        assert analysis.is_absolute(parse_xpath("/a | /b"))
        assert not analysis.is_absolute(parse_xpath("/a | b"))
        assert analysis.is_absolute(parse_xpath("⊥"))

    def test_rr_join_definition(self):
        # Both operands relative, one with a reverse step -> RR join.
        path = parse_xpath("/descendant::a[self::* = preceding::*]")
        assert analysis.has_rr_joins(path)

    def test_join_with_absolute_operand_is_not_rr(self):
        path = parse_xpath("/descendant::a[preceding::b == /descendant::b]")
        assert not analysis.has_rr_joins(path)

    def test_forward_relative_join_is_not_rr(self):
        path = parse_xpath("/descendant::a[child::b == descendant::c]")
        assert not analysis.has_rr_joins(path)

    def test_is_rare_input(self):
        ok, reason = analysis.is_rare_input(parse_xpath("/descendant::a/parent::b"))
        assert ok and reason is None
        ok, reason = analysis.is_rare_input(parse_xpath("descendant::a"))
        assert not ok and "absolute" in reason
        ok, reason = analysis.is_rare_input(
            parse_xpath("/descendant::a[self::* = preceding::*]"))
        assert not ok and "RR join" in reason


class TestSummary:
    def test_summarize_keys(self):
        summary = analysis.summarize(parse_xpath("/descendant::a[preceding::b]"))
        assert summary["length"] == 2
        assert summary["reverse_steps"] == 1
        assert summary["absolute"] is True
        assert summary["union_terms"] == 1


class TestStructuralPrefixes:
    def test_spine_sequences_of_a_plain_path(self):
        path = parse_xpath("/descendant::a[child::b]/child::c")
        sequences = analysis.spine_sequences(path)
        assert len(sequences) == 1
        assert [step.node_test.name for step in sequences[0]] == ["a", "c"]

    def test_spine_sequences_of_a_union(self):
        path = parse_xpath("/descendant::a | /child::b/child::c | ⊥")
        sequences = analysis.spine_sequences(path)
        assert [len(sequence) for sequence in sequences] == [1, 2]

    def test_common_spine_prefix(self):
        paths = [parse_xpath("/descendant::a/child::b/child::c"),
                 parse_xpath("/descendant::a/child::b/child::d"),
                 parse_xpath("/descendant::a/child::b")]
        prefix = analysis.common_spine_prefix(paths)
        assert [step.node_test.name for step in prefix] == ["a", "b"]

    def test_common_spine_prefix_requires_equal_qualifiers(self):
        paths = [parse_xpath("/descendant::a[child::b]/child::c"),
                 parse_xpath("/descendant::a/child::c")]
        assert analysis.common_spine_prefix(paths) == ()

    def test_common_spine_prefix_of_nothing(self):
        assert analysis.common_spine_prefix([]) == ()
        assert analysis.common_spine_prefix([parse_xpath("⊥")]) == ()

    def test_prefix_sharing_summary(self):
        paths = [parse_xpath("/descendant::a/child::b"),
                 parse_xpath("/descendant::a/child::c"),
                 parse_xpath("/descendant::a/child::b")]
        summary = analysis.prefix_sharing_summary(paths)
        assert summary["paths"] == 3
        assert summary["spine_steps"] == 6
        # Distinct prefixes: (a), (a,b), (a,c).
        assert summary["trie_nodes"] == 3
        assert summary["shared_steps"] == 3
        assert summary["sharing_ratio"] == 0.5

    def test_prefix_sharing_summary_empty(self):
        summary = analysis.prefix_sharing_summary([])
        assert summary["spine_steps"] == 0
        assert summary["sharing_ratio"] == 0.0
