"""Pytest bootstrap: make the in-tree package importable without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package); this shim additionally lets ``pytest`` and the benchmark suite run
straight from a source checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
