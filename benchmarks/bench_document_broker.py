"""E12 — push-mode document broker: session reuse over a feed of documents.

The SDI service the paper motivates is long-lived: thousands of standing
subscriptions, a continuous feed of (mostly small) incoming documents.  The
per-document cost then has two parts — *matching* the events, and *setting
up* a matcher for the document (per-subscription sinks, absolute sub-path
registration, verdict-mode trie countdowns).  For small documents at large N
the setup dominates, and it is exactly what
:class:`repro.streaming.broker.DocumentBroker` amortizes by resetting one
resumable :class:`MultiMatcher` session instead of constructing a fresh one
per document.

This benchmark pushes M chunked documents through one broker and compares
against building a fresh matcher per document over the same token streams
(both sides tokenize the same text and both run verdict-only with early
termination, so the gap is session reuse alone).  The workload is the
selective-subscription regime where a feed of small documents is realistic:
``low_overlap_workload`` subscriptions rooted across a wide tag vocabulary,
matched against small ``tagged_sections_document`` messages — each document
instantiates only the trie slice its tags reach, so the per-document
matcher *setup* is a substantial share of the work and reusing the session
pays.  The smoke test asserts the acceptance bar — >= 1.5x aggregate
events/sec at N=1000, M=100 — and writes the figures into
``BENCH_multi_query_sdi.json``.
"""

import time

import pytest

from repro.bench.reporting import (
    MULTI_QUERY_SDI_ARTIFACT,
    Table,
    artifact_path,
    update_bench_artifact,
)
from repro.streaming import DocumentBroker, SubscriptionIndex
from repro.workloads.queries import low_overlap_workload
from repro.xmlmodel.generator import tagged_sections_document
from repro.xmlmodel.parser import iter_events
from repro.xmlmodel.serialize import to_xml

SUBSCRIPTION_COUNTS = (100, 1000)
DOCUMENT_COUNT = 100
CHUNK_SIZE = 256

ARTIFACT_PATH = artifact_path(MULTI_QUERY_SDI_ARTIFACT)


def _documents():
    """M small documents, serialized and pre-chunked (the feed itself is not
    what is being measured)."""
    feed = []
    for seed in range(DOCUMENT_COUNT):
        document = tagged_sections_document(sections=4,
                                            children_per_section=2,
                                            depth=1, seed=seed)
        text = to_xml(document, indent=0)
        chunks = [text[start:start + CHUNK_SIZE]
                  for start in range(0, len(text), CHUNK_SIZE)]
        feed.append((f"doc-{seed}", text, chunks))
    return feed


def _build_index(count):
    index = SubscriptionIndex()
    for position, query in enumerate(low_overlap_workload(count, seed=11)):
        index.add(query, key=position)
    index.matcher()  # force the one-time trie build out of the timed region
    return index


def _broker_run(index, feed):
    broker = DocumentBroker(index, matches_only=True)
    start = time.perf_counter()
    verdicts = [broker.submit(document_id, chunks).matching_keys
                for document_id, _, chunks in feed]
    elapsed = time.perf_counter() - start
    return verdicts, broker.stats, elapsed


def _fresh_matcher_run(index, feed):
    start = time.perf_counter()
    verdicts = []
    for _, text, _ in feed:
        matcher = index.matcher(matches_only=True)
        verdicts.append(matcher.process(list(iter_events(text))).matching_keys)
    elapsed = time.perf_counter() - start
    return verdicts, elapsed


def _bench(count, report):
    index = _build_index(count)
    feed = _documents()
    total_events = sum(len(list(iter_events(text))) for _, text, _ in feed)

    broker_verdicts, broker_stats, broker_time = _broker_run(index, feed)
    fresh_verdicts, fresh_time = _fresh_matcher_run(index, feed)

    # Identical routing, document by document.
    assert broker_verdicts == fresh_verdicts

    broker_eps = total_events / broker_time
    fresh_eps = total_events / fresh_time
    table = Table(
        f"DocumentBroker (one reused session) vs fresh matcher per document "
        f"(N={count} subscriptions, M={len(feed)} documents, "
        f"{total_events} events total)",
        ["engine", "wall ms", "events/sec", "ms/document"],
    )
    table.add_row("broker, session reuse", f"{broker_time * 1e3:.1f}",
                  f"{broker_eps:,.0f}", f"{broker_time / len(feed) * 1e3:.3f}")
    table.add_row("fresh matcher per doc", f"{fresh_time * 1e3:.1f}",
                  f"{fresh_eps:,.0f}", f"{fresh_time / len(feed) * 1e3:.3f}")
    report(table.render())

    return {
        "subscriptions": count,
        "documents": len(feed),
        "total_events": total_events,
        "chunk_size": CHUNK_SIZE,
        "wall_ms_broker": round(broker_time * 1e3, 3),
        "wall_ms_fresh_matcher": round(fresh_time * 1e3, 3),
        "events_per_sec_broker": round(broker_eps),
        "events_per_sec_fresh_matcher": round(fresh_eps),
        "speedup": round(fresh_time / broker_time, 3),
        "events_processed": broker_stats.events,
        "events_skipped": broker_stats.events_skipped,
        "chunks_skipped": broker_stats.chunks_skipped,
        "documents_matched": broker_stats.documents_matched,
    }


@pytest.mark.parametrize("count", SUBSCRIPTION_COUNTS,
                         ids=[f"subs{n}" for n in SUBSCRIPTION_COUNTS])
def test_document_broker_amortization(report, count):
    row = _bench(count, report)
    assert row["documents_matched"] > 0
    if count >= 1000:
        # The acceptance bar: serving M small documents through one broker
        # session beats constructing a matcher per document by >= 1.5x.
        assert row["speedup"] >= 1.5


def test_document_broker_smoke(report):
    """CI smoke: runs every scale and records the broker trajectory in
    ``BENCH_multi_query_sdi.json``."""
    rows = [_bench(count, report) for count in SUBSCRIPTION_COUNTS]
    at_1000 = rows[-1]
    assert at_1000["subscriptions"] == 1000
    # No wall-clock assertion here: shared CI runners are too noisy for a
    # timed ratio, so the smoke only checks correctness and records the
    # trajectory.  The >= 1.5x acceptance bar is asserted by the full
    # parametrized benchmark above (locally measured ~1.6-1.7x).
    assert at_1000["documents_matched"] > 0
    update_bench_artifact(ARTIFACT_PATH, "document_broker", {
        "document_count": DOCUMENT_COUNT,
        "scales": rows,
    })
