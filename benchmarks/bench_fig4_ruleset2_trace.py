"""E5 — Figure 4: the step-by-step ``rare`` run with RuleSet2.

Same query as Figure 3; the paper applies Rule (33a) and then Rule (18a) and
obtains ``/descendant-or-self::journal/descendant::title[following::name]``.
"""

from repro.rewrite import rare
from repro.xpath import analysis

QUERY = "/descendant::name/preceding::title[ancestor::journal]"
PAPER_OUTPUT = "/descendant-or-self::journal/descendant::title[following::name]"


def test_figure4_ruleset2_trace(benchmark, report):
    result = benchmark(lambda: rare(QUERY, ruleset="ruleset2", collect_trace=True))

    assert str(result) == PAPER_OUTPUT
    assert result.trace.rules_applied() == ["Rule (33a)", "Rule (18a)"]
    assert analysis.count_joins(result.result) == 0

    lines = ["Figure 4 — example run of rare with RuleSet2",
             f"input: {QUERY}"]
    lines.extend(f"Step {index}: {entry.describe()}"
                 for index, entry in enumerate(result.trace.entries, start=1))
    lines.append(f"paper output  : {PAPER_OUTPUT}")
    lines.append(f"our output    : {result}")
    lines.append(f"rule sequence : {', '.join(result.trace.rules_applied())} "
                 "(paper: Rule (33a), Rule (18a))")
    report("\n".join(lines))
