"""E9 — streaming evaluation of rewritten queries vs. the DOM baseline.

The motivation of the paper (Section 1): once reverse axes are removed, an
XPath query can be answered in a single pass over the SAX stream without
materializing the document.  For the journal-catalogue scale ladder this
benchmark evaluates the paper's flagship query ``//price/preceding::name``

* with the DOM baseline (whole document in memory, original query),
* with the pruned-buffer baseline (structural copy, original query),
* with the streaming evaluator on the RuleSet2 rewriting,

and reports the "things held in memory" figure of each.  Timings come from
pytest-benchmark (one benchmark per document scale for the streaming path).
"""

import pytest

from repro.bench.reporting import Table
from repro.rewrite import remove_reverse_axes
from repro.streaming import buffered_evaluate, dom_evaluate, stream_evaluate
from repro.workloads.documents import streaming_documents
from repro.xmlmodel.builder import document_events

QUERY = "/descendant::price/preceding::name"
FORWARD = remove_reverse_axes(QUERY, ruleset="ruleset2")
WORKLOADS = {workload.name: workload for workload in streaming_documents()}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_streaming_vs_dom(benchmark, report, name):
    workload = WORKLOADS[name]
    document = workload.build()
    events = list(document_events(document))

    streamed = benchmark(lambda: stream_evaluate(FORWARD, events))
    dom = dom_evaluate(QUERY, events)
    buffered = buffered_evaluate(QUERY, events)

    assert streamed.node_ids == dom.node_ids == buffered.node_ids
    assert streamed.stats.memory_units < dom.stats.memory_units

    table = Table(
        f"Streaming vs in-memory evaluation — {name} "
        f"({dom.stats.nodes_stored} nodes, query {QUERY})",
        ["evaluator", "query form", "results", "nodes stored",
         "candidates buffered", "memory units"],
    )
    table.add_row("DOM baseline", "original (reverse axes)", len(dom.node_ids),
                  dom.stats.nodes_stored, 0, dom.stats.memory_units)
    table.add_row("pruned buffer", "original (reverse axes)", len(buffered.node_ids),
                  buffered.stats.nodes_stored, 0, buffered.stats.memory_units)
    table.add_row("streaming", "RuleSet2 rewriting", len(streamed.node_ids),
                  streamed.stats.nodes_stored, streamed.stats.candidates_buffered,
                  streamed.stats.memory_units)
    report(table.render())
