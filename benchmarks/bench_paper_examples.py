"""E2/E3 — the worked examples of the paper (Examples 3.1, 3.2, 3.3).

Regenerates, for every location path the paper discusses, the rewriting under
both rule sets together with the size/join metrics, and checks the outputs
the paper prints verbatim.  The timing measures a complete ``rare`` run per
query (both rule sets).
"""

from repro.bench.reporting import Table
from repro.rewrite import rare
from repro.workloads.queries import PAPER_QUERIES
from repro.xpath import analysis
from repro.xpath.parser import parse_xpath
from repro.xpath.serializer import to_string


def _rewrite_all():
    return {
        (query.label, ruleset): rare(query.xpath, ruleset=ruleset)
        for query in PAPER_QUERIES
        for ruleset in ("ruleset1", "ruleset2")
    }


def test_paper_examples_rewriting(benchmark, report):
    results = benchmark(_rewrite_all)

    table = Table(
        "Examples 3.1-3.3 and Figure 3/4 query: rewriting under both rule sets",
        ["query", "rule set", "output", "len", "joins"],
    )
    for query in PAPER_QUERIES:
        original = parse_xpath(query.xpath)
        for ruleset in ("ruleset1", "ruleset2"):
            result = results[(query.label, ruleset)]
            assert analysis.count_reverse_steps(result.result) == 0
            expected = (query.expected_ruleset1 if ruleset == "ruleset1"
                        else query.expected_ruleset2)
            if expected is not None:
                assert to_string(result.result) == expected
            table.add_row(query.label, result.ruleset, to_string(result.result),
                          analysis.path_length(result.result),
                          analysis.count_joins(result.result))
        table.add_row(query.label, "input", query.xpath,
                      analysis.path_length(original),
                      analysis.count_joins(original))
    report(table.render())
