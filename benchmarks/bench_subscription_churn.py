"""E14 — live subscription churn vs warm throughput.

A production SDI router gains and loses subscribers *while the feed is
flowing*.  This benchmark measures what that churn costs on a standing
index served by the lazy-DFA backend: ``add_subscription`` merges new NFA
fragments into the shared automaton and drops only the cached transitions
whose NFA-state sets intersect the touched fragments (a *targeted*
invalidation), ``remove_subscription`` retires the subscription's ordinal
in place — so the alternative, recompiling the world per churn event, is
measured alongside as the counterfactual.

The workload reuses the anti-trie SDI regime of the automaton benchmark
(``low_overlap_workload`` over a wide tag vocabulary, verdict-only matching
of a ``tagged_sections_document``).  Per scale (N ∈ {1000, 10000} standing
subscriptions) the feed is replayed at increasing churn rates — R
add/remove pairs between consecutive documents, drawn from the same
workload family — and the steady-state matching throughput is recorded
against the churn-free warm baseline, together with the per-operation
churn latency and the fresh-recompile counterfactual.

The smoke test records a ``subscription_churn`` section into
``BENCH_multi_query_sdi.json`` (``events_per_sec_churned`` at the
canonical rate of 10 ops/document is the advisory-gated metric, at
N=1000); correctness is pinned per rate by comparing the final routing
against a fresh-compiled index over the surviving subscription set.
"""

import time

import pytest

from repro.bench.reporting import (
    MULTI_QUERY_SDI_ARTIFACT,
    Table,
    artifact_path,
    update_bench_artifact,
)
from repro.streaming import SubscriptionIndex
from repro.workloads.queries import low_overlap_workload
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import tagged_sections_document

SCALES = (1000, 10000)
#: Add/remove pairs performed between consecutive documents.
CHURN_RATES = (1, 10, 100)
#: The advisory-gated rate: one order of magnitude above trickle churn,
#: still far below the vacuum threshold over a whole sweep.
CANONICAL_RATE = 10
#: Documents matched per churn rate (few but warm: rate 0 is the baseline).
DOCUMENTS_PER_RATE = 2

DOCUMENT = tagged_sections_document(sections=160, children_per_section=3,
                                    depth=2, seed=3)
EVENTS = list(document_events(DOCUMENT))

ARTIFACT_PATH = artifact_path(MULTI_QUERY_SDI_ARTIFACT)


def _pool(count):
    """The standing workload plus enough spare queries to churn from."""
    spare = max(CHURN_RATES) * DOCUMENTS_PER_RATE
    return low_overlap_workload(count + spare, seed=11)


def _build_index(count, pool):
    index = SubscriptionIndex({position: pool[position]
                               for position in range(count)})
    # Compile and warm outside any timed region: churn is measured against
    # the *steady state* of a long-lived index, not against cold start.
    index.matcher(matches_only=True).process(EVENTS)
    return index


def _warm_pass_time(index):
    best = float("inf")
    for _ in range(DOCUMENTS_PER_RATE + 1):
        matcher = index.matcher(matches_only=True)
        start = time.perf_counter()
        matcher.process(EVENTS)
        best = min(best, time.perf_counter() - start)
    return best


def _churned_feed(count, pool, rate):
    """Replay the feed with ``rate`` add/remove pairs between documents.

    Returns (matching seconds total, churn seconds total, ops, index).
    The same index churns on across documents — removals retire ordinals,
    additions reuse the shared automaton — exactly like a long-lived
    router.
    """
    index = _build_index(count, pool)
    next_spare = count      # next pool query to register
    next_victim = 0         # oldest standing subscription to drop
    matching = churning = 0.0
    ops = 0
    for _ in range(DOCUMENTS_PER_RATE):
        start = time.perf_counter()
        for _ in range(rate):
            index.add_subscription(f"sub-{next_spare}", pool[next_spare])
            index.remove_subscription(next_victim
                                      if next_victim < count
                                      else f"sub-{next_victim}")
            next_spare += 1
            next_victim += 1
            ops += 2
        churning += time.perf_counter() - start
        matcher = index.matcher(matches_only=True)
        start = time.perf_counter()
        matcher.process(EVENTS)
        matching += time.perf_counter() - start
    return matching, churning, ops, index


def _verify_against_fresh(index):
    """The churned index answers exactly like a fresh compile of its
    surviving subscription set — churn must be invisible to routing."""
    survivors = {subscription.key: subscription.source
                 for subscription in index.subscriptions}
    fresh = SubscriptionIndex(survivors)
    churned = index.evaluate(EVENTS, matches_only=True)
    reference = fresh.evaluate(EVENTS, matches_only=True)
    assert sorted(churned.matching_keys, key=str) \
        == sorted(reference.matching_keys, key=str)


def _bench(count, report):
    pool = _pool(count)
    events = len(EVENTS)

    baseline = _build_index(count, pool)
    warm_time = _warm_pass_time(baseline)

    # The counterfactual: what one churn event costs when it recompiles
    # the world (fresh trie + NFA + first-document DFA materialization).
    start = time.perf_counter()
    recompiled = SubscriptionIndex({position: pool[position]
                                    for position in range(count)})
    recompiled.matcher(matches_only=True).process(EVENTS)
    recompile_seconds = time.perf_counter() - start

    table = Table(
        f"Live churn vs warm throughput (N={count} standing subscriptions, "
        f"{events} events/document, {DOCUMENTS_PER_RATE} documents/rate)",
        ["churn ops/doc", "events/sec", "vs warm", "churn us/op",
         "targeted", "full", "vacuums"],
    )
    warm_eps = events / warm_time
    table.add_row("0 (warm)", f"{warm_eps:,.0f}", "100%", "-", "-", "-", "-")

    sweep = []
    gated_eps = None
    for rate in CHURN_RATES:
        matching, churning, ops, index = _churned_feed(count, pool, rate)
        _verify_against_fresh(index)
        churn = index.churn
        eps = events * DOCUMENTS_PER_RATE / matching
        per_op_us = churning / ops * 1e6
        sweep.append({
            "ops_per_document": rate,
            "events_per_sec": round(eps),
            "relative_to_warm": round(eps / warm_eps, 3),
            "churn_op_us": round(per_op_us, 1),
            "targeted_flushes": churn.targeted_flushes,
            "full_flushes": churn.full_flushes,
            "vacuum_runs": churn.vacuum_runs,
        })
        if rate == CANONICAL_RATE:
            gated_eps = eps
            canonical = churn
            canonical_op_us = per_op_us
        table.add_row(str(rate), f"{eps:,.0f}", f"{eps / warm_eps:.0%}",
                      f"{per_op_us:.0f}", churn.targeted_flushes,
                      churn.full_flushes, churn.vacuum_runs)
    report(table.render())

    return {
        "subscriptions": count,
        "events": events,
        "events_per_sec_warm": round(warm_eps),
        "events_per_sec_churned": round(gated_eps),
        "churn_ops_per_document": CANONICAL_RATE,
        "churn_op_us": round(canonical_op_us, 1),
        "full_recompile_ms": round(recompile_seconds * 1e3, 1),
        "targeted_flushes": canonical.targeted_flushes,
        "full_flushes": canonical.full_flushes,
        "vacuum_runs": canonical.vacuum_runs,
        "churn_rates": sweep,
    }


@pytest.mark.parametrize("count", SCALES, ids=[f"subs{n}" for n in SCALES])
def test_subscription_churn(report, count):
    row = _bench(count, report)
    # The acceptance contract: below the documented thresholds, churn never
    # recompiles the world — adds cost targeted invalidations and removals
    # cost no vacuum at all.
    assert row["targeted_flushes"] > 0
    assert row["vacuum_runs"] == 0
    # One incremental churn operation is orders of magnitude cheaper than
    # the recompile-the-world counterfactual (assert a loose 20x so runner
    # noise cannot flake; locally it is ~1000x).
    assert row["churn_op_us"] * 20 < row["full_recompile_ms"] * 1e3
    # Churned throughput stays in the warm regime, not the cold one.
    assert row["events_per_sec_churned"] > 0.2 * row["events_per_sec_warm"]


def test_subscription_churn_smoke(report):
    """CI smoke: correctness at every scale plus the ``subscription_churn``
    trajectory section of ``BENCH_multi_query_sdi.json``.  No wall-clock
    ratio assertions here — shared runners are too noisy; the structural
    counters are asserted either way."""
    rows = [_bench(count, report) for count in SCALES]
    for row in rows:
        assert row["targeted_flushes"] > 0
        assert row["vacuum_runs"] == 0
    assert rows[0]["subscriptions"] == 1000   # the advisory-gated row
    assert rows[-1]["subscriptions"] == 10000  # the headline scale
    update_bench_artifact(ARTIFACT_PATH, "subscription_churn", {
        "document_events": len(EVENTS),
        "documents_per_rate": DOCUMENTS_PER_RATE,
        "scales": rows,
    })
