"""E4 — Figure 3: the step-by-step ``rare`` run with RuleSet1.

Query: ``/descendant::name/preceding::title[ancestor::journal]`` — "all
titles that appear before a name and are inside journals".  The benchmark
times the traced run and reprints the trace in the format of Figure 3; the
rule sequence (Rule (2), then Rule (1)) and the final output are asserted to
match the paper.
"""

from repro.rewrite import rare

QUERY = "/descendant::name/preceding::title[ancestor::journal]"
PAPER_OUTPUT = (
    "/descendant::title"
    "[/descendant::journal/descendant::node() == self::node()]"
    "[following::name == /descendant::name]")


def test_figure3_ruleset1_trace(benchmark, report):
    result = benchmark(lambda: rare(QUERY, ruleset="ruleset1", collect_trace=True))

    assert str(result) == PAPER_OUTPUT
    assert result.trace.rules_applied() == ["Rule (2a)", "Rule (1)"]

    lines = ["Figure 3 — example run of rare with RuleSet1",
             f"input: {QUERY}"]
    lines.extend(f"Step {index}: {entry.describe()}"
                 for index, entry in enumerate(result.trace.entries, start=1))
    lines.append(f"paper output  : {PAPER_OUTPUT}")
    lines.append(f"our output    : {result}")
    lines.append(f"rule sequence : {', '.join(result.trace.rules_applied())} "
                 "(paper: Rule (2), Rule (1))")
    report("\n".join(lines))
