"""E12 — tag-indexed dispatch across document shapes and overlap regimes.

The dispatch index of :class:`repro.streaming.matcher.MatcherCore` buckets
live expectations by node-test tag so that a node event only touches the
expectations that could match it.  How much that saves depends on the
workload: with the *low-overlap* subscription population (every subscription
rooted at a different tag of a wide vocabulary — the anti-trie workload) a
start-element is relevant to only a handful of subscriptions, so the linear
scan wastes almost all of its checks.  Deep chains and wide flat documents
probe the other half of the refactor: anchor-keyed expiry means an
``EndElement`` pops only the affected expectations instead of filtering the
whole live set.

Every configuration is run with the indexed engine and with the
``indexed=False`` linear-scan reference over the same trie, asserting
identical per-subscription results; the rows land in the
``document_shapes`` section of ``BENCH_multi_query_sdi.json``.
"""

import time

import pytest

from repro.bench.reporting import (
    MULTI_QUERY_SDI_ARTIFACT,
    Table,
    artifact_path,
    update_bench_artifact,
)
from repro.streaming import SubscriptionIndex
from repro.workloads.queries import (
    low_overlap_tags,
    low_overlap_workload,
    subscription_workload,
)
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import (
    deep_chain_document,
    tagged_sections_document,
    wide_document,
)

ARTIFACT_PATH = artifact_path(MULTI_QUERY_SDI_ARTIFACT)

#: (configuration id, document factory, subscription factory)
CONFIGURATIONS = (
    (
        # The document generator and the workload are handed the same tag
        # vocabulary explicitly: the subscriptions must name tags that occur
        # in the document for the configuration to mean anything.
        "low-overlap-1000",
        lambda: tagged_sections_document(sections=120, seed=3,
                                         tags=low_overlap_tags()),
        lambda: low_overlap_workload(1000, seed=11, tags=low_overlap_tags()),
    ),
    (
        "deep-chain-300",
        lambda: deep_chain_document(depth=60,
                                    tag_cycle=low_overlap_tags(12)),
        lambda: low_overlap_workload(300, seed=5,
                                     tags=low_overlap_tags(12)),
    ),
    (
        # Kept deliberately modest: sibling-axis tails over a flat fan-out
        # are quadratic in width x subscriptions for *any* engine; this
        # configuration measures dispatch overhead under heavy overlap, not
        # raw scale.
        "wide-flat-80",
        lambda: wide_document(width=150),
        lambda: subscription_workload(
            80, seed=9,
            prefixes=("/descendant::item", "/child::collection/child::item",
                      "/descendant::value"),
            tags=("item", "value", "collection")),
    ),
)


def _run(index, events, indexed, repeats=3):
    # Pinned to the expectation engine: this benchmark compares its
    # tag-indexed dispatch against the linear scan, which the "dfa"
    # default would bypass entirely.
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        matcher = index.matcher(indexed=indexed, backend="expectations")
        result = matcher.process(events)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, result.stats, best


def _bench_configuration(config_id, document_factory, workload_factory,
                         report, repeats=3):
    events = list(document_events(document_factory()))
    index = SubscriptionIndex()
    for position, query in enumerate(workload_factory()):
        index.add(query, key=position)

    indexed_result, indexed_stats, indexed_time = \
        _run(index, events, indexed=True, repeats=repeats)
    linear_result, linear_stats, linear_time = \
        _run(index, events, indexed=False, repeats=repeats)

    # The dispatch index is a pure optimization: identical answers.
    for indexed_row, linear_row in zip(indexed_result, linear_result):
        assert indexed_row.node_ids == linear_row.node_ids
        assert indexed_row.matched == linear_row.matched

    count = len(events)
    table = Table(
        f"{config_id}: indexed dispatch vs linear scan "
        f"({count} events, {len(index)} subscriptions)",
        ["engine", "checked/event", "wall ms", "us/event", "speedup"],
    )
    table.add_row("indexed dispatch",
                  f"{indexed_stats.expectations_checked / count:.2f}",
                  f"{indexed_time * 1e3:.2f}",
                  f"{indexed_time / count * 1e6:.2f}",
                  f"{linear_time / indexed_time:.2f}x")
    table.add_row("linear scan",
                  f"{linear_stats.expectations_checked / count:.2f}",
                  f"{linear_time * 1e3:.2f}",
                  f"{linear_time / count * 1e6:.2f}",
                  "1.00x")
    report(table.render())

    return {
        "configuration": config_id,
        "events": count,
        "subscriptions": len(index),
        "matched_subscriptions":
            sum(1 for row in indexed_result if row.matched),
        "events_per_sec_indexed": round(count / indexed_time),
        "events_per_sec_linear": round(count / linear_time),
        "wall_ms_indexed": round(indexed_time * 1e3, 3),
        "wall_ms_linear": round(linear_time * 1e3, 3),
        "speedup": round(linear_time / indexed_time, 3),
        "expectations_checked_per_event":
            round(indexed_stats.expectations_checked / count, 3),
        "linear_scan_checks_per_event":
            round(indexed_stats.linear_scan_checks / count, 3),
        "check_reduction_ratio":
            round(indexed_stats.linear_scan_checks
                  / max(1, indexed_stats.expectations_checked), 2),
    }


@pytest.mark.parametrize(
    "config_id,document_factory,workload_factory", CONFIGURATIONS,
    ids=[config[0] for config in CONFIGURATIONS])
def test_dispatch_document_shapes(report, config_id, document_factory,
                                  workload_factory):
    row = _bench_configuration(config_id, document_factory, workload_factory,
                               report)
    # Everywhere: the index consults no more expectations than the scan did.
    assert row["expectations_checked_per_event"] <= \
        row["linear_scan_checks_per_event"]
    if config_id.startswith("low-overlap"):
        # The acceptance workload: almost nothing overlaps, so indexed
        # dispatch must beat the linear scan on wall time, comfortably.
        assert row["check_reduction_ratio"] >= 5
        assert row["wall_ms_indexed"] < row["wall_ms_linear"]


def test_dispatch_shapes_smoke(report):
    """Fast CI smoke: every shape once, trajectory rows into the artifact."""
    rows = [
        _bench_configuration(config_id, document_factory, workload_factory,
                             report, repeats=1)
        for config_id, document_factory, workload_factory in CONFIGURATIONS
    ]
    low_overlap = rows[0]
    assert low_overlap["check_reduction_ratio"] >= 5
    assert low_overlap["wall_ms_indexed"] < low_overlap["wall_ms_linear"]
    update_bench_artifact(ARTIFACT_PATH, "document_shapes", rows)
