"""E8 — the Section 4 "Comparison" paragraph: RuleSet1 vs RuleSet2 in practice.

The paper argues that although RuleSet2 is exponential in the worst case,
practical location paths have fewer than ten steps, where its join-free
output is usually preferable to RuleSet1's join-carrying output.  This
benchmark rewrites a mix of practical paths (the paper's queries plus random
reverse paths of length ≤ 8) with both rule sets and reports output length,
join count and union terms side by side, including where the size crossover
between the two rule sets falls.
"""

from repro.bench.reporting import Table
from repro.rewrite import rare
from repro.workloads.queries import (
    PAPER_QUERIES,
    following_reverse_chain,
    mixed_reverse_path,
    random_reverse_path,
)
from repro.xpath import analysis
from repro.xpath.parser import parse_xpath


def _practical_queries():
    queries = [(query.label, query.xpath) for query in PAPER_QUERIES]
    queries += [(f"mixed-{size}", mixed_reverse_path(size)) for size in (3, 4, 5, 6)]
    queries += [(f"random-{seed}", random_reverse_path(seed)) for seed in range(6)]
    queries += [(f"interaction-{size}", following_reverse_chain(size))
                for size in (1, 2, 3)]
    return queries


def _rewrite_everything(queries):
    return {
        (label, ruleset): rare(xpath, ruleset=ruleset, max_applications=200_000)
        for label, xpath in queries
        for ruleset in ("ruleset1", "ruleset2")
    }


def test_ruleset_comparison(benchmark, report):
    queries = _practical_queries()
    results = benchmark(lambda: _rewrite_everything(queries))

    table = Table(
        "Section 4 comparison — RuleSet1 (joins) vs RuleSet2 (unions) on practical paths",
        ["query", "input len", "rs1 len", "rs1 joins", "rs2 len", "rs2 terms",
         "smaller"],
    )
    crossover = 0
    for label, xpath in queries:
        original = parse_xpath(xpath)
        rs1 = results[(label, "ruleset1")]
        rs2 = results[(label, "ruleset2")]
        rs1_length = analysis.path_length(rs1.result)
        rs2_length = analysis.path_length(rs2.result)
        assert analysis.count_joins(rs2.result) == 0
        winner = "RuleSet2" if rs2_length <= rs1_length else "RuleSet1"
        if winner == "RuleSet1":
            crossover += 1
        table.add_row(label, analysis.path_length(original), rs1_length,
                      analysis.count_joins(rs1.result), rs2_length,
                      analysis.union_term_count(rs2.result), winner)
    table.add_row("summary", "-", "-", "-", "-", "-",
                  f"RuleSet1 smaller on {crossover}/{len(queries)} queries")
    report(table.render())
